//! LiDAR scanline subsampling layouts.
//!
//! Evaluating the sensor model for every beam of a 1000-beam scan on every
//! particle is wasteful; MCL implementations subsample a few dozen beams.
//! The paper adopts the TUM PF's **boxed layout**: beams are chosen so their
//! intersections with a corridor-shaped box around the sensor are uniformly
//! spaced, which concentrates beams down-track where racetrack geometry
//! lives (paper §II), instead of spending half the budget on the nearby side
//! walls as uniform angular spacing does.

use raceloc_core::sensor_data::LaserScan;

/// A beam-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanLayout {
    /// Every k-th beam such that ~`count` beams are used, uniformly in angle.
    Uniform {
        /// Number of beams to keep.
        count: usize,
    },
    /// The TUM boxed layout: beams whose wall intersections with a corridor
    /// box of the given aspect ratio are uniformly spaced along the box
    /// perimeter.
    Boxed {
        /// Number of beams to keep.
        count: usize,
        /// Box length-to-width aspect ratio (≫1 = long corridor look-ahead).
        aspect: f64,
    },
}

impl ScanLayout {
    /// Selects beam indices from a scan according to the layout.
    ///
    /// Indices are strictly increasing and deduplicated; the result is empty
    /// only when the scan is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_core::sensor_data::LaserScan;
    /// use raceloc_pf::ScanLayout;
    ///
    /// let scan = LaserScan::new(-2.35, 4.7 / 1080.0, vec![5.0; 1081], 10.0);
    /// let picked = ScanLayout::Boxed { count: 60, aspect: 3.0 }.select(&scan);
    /// // Some box-perimeter points fall behind the 270° FOV and are dropped.
    /// assert!(picked.len() >= 30 && picked.len() <= 60);
    /// ```
    pub fn select(&self, scan: &LaserScan) -> Vec<usize> {
        if scan.is_empty() {
            return Vec::new();
        }
        match *self {
            ScanLayout::Uniform { count } => {
                let count = count.clamp(1, scan.len());
                if count == 1 {
                    return vec![scan.len() / 2];
                }
                (0..count)
                    .map(|i| i * (scan.len() - 1) / (count - 1))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect()
            }
            ScanLayout::Boxed { count, aspect } => {
                let picked: Vec<usize> = boxed_angles(count, aspect)
                    .into_iter()
                    .filter_map(|angle| beam_index_for(scan, angle))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                if picked.is_empty() {
                    // Degenerate FOV/box combination (every perimeter point
                    // behind the sensor): fall back to uniform coverage.
                    ScanLayout::Uniform { count }.select(scan)
                } else {
                    picked
                }
            }
        }
    }
}

/// Computes the `count` beam angles of a boxed layout with the given aspect
/// ratio: points uniformly spaced along the perimeter of the box
/// `x ∈ [-a, a], y ∈ [-1, 1]` (sensor at the origin, corridor along x),
/// converted to bearing angles.
pub fn boxed_angles(count: usize, aspect: f64) -> Vec<f64> {
    let a = aspect.max(0.1);
    // Perimeter of the box (all four sides).
    let perimeter = 4.0 * a + 4.0;
    let n = count.max(1);
    let mut angles = Vec::with_capacity(n);
    for i in 0..n {
        // Walk the perimeter starting from the forward-right corner region,
        // going counter-clockwise: right edge (x=a), top edge (y=1), left
        // edge (x=-a), bottom edge (y=-1).
        let s = (i as f64 + 0.5) / n as f64 * perimeter;
        let (x, y) = if s < 2.0 {
            (a, s - 1.0) // right edge, y from -1 to 1
        } else if s < 2.0 + 2.0 * a {
            (a - (s - 2.0), 1.0) // top edge, x from a to -a
        } else if s < 4.0 + 2.0 * a {
            (-a, 1.0 - (s - 2.0 - 2.0 * a)) // left edge, y from 1 to -1
        } else {
            (-a + (s - 4.0 - 2.0 * a), -1.0) // bottom edge
        };
        angles.push(y.atan2(x));
    }
    angles
}

/// Maps a bearing angle to the nearest beam index, or `None` when the angle
/// falls outside the scan's field of view.
fn beam_index_for(scan: &LaserScan, angle: f64) -> Option<usize> {
    let idx = (angle - scan.angle_min) / scan.angle_increment;
    let i = idx.round();
    if i < 0.0 || i as usize >= scan.len() {
        None
    } else {
        Some(i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hokuyo_scan() -> LaserScan {
        LaserScan::new(
            -135.0f64.to_radians(),
            270.0f64.to_radians() / 1080.0,
            vec![5.0; 1081],
            10.0,
        )
    }

    #[test]
    fn uniform_selects_requested_count() {
        let scan = hokuyo_scan();
        let picked = ScanLayout::Uniform { count: 60 }.select(&scan);
        assert!(picked.len() >= 55 && picked.len() <= 60, "{}", picked.len());
        // Strictly increasing.
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn uniform_covers_fov() {
        let scan = hokuyo_scan();
        let picked = ScanLayout::Uniform { count: 30 }.select(&scan);
        assert!(*picked.first().expect("non-empty") < 40);
        assert!(*picked.last().expect("non-empty") > 1000);
    }

    #[test]
    fn boxed_concentrates_beams_forward() {
        let scan = hokuyo_scan();
        let boxed = ScanLayout::Boxed {
            count: 60,
            aspect: 3.0,
        }
        .select(&scan);
        let uniform = ScanLayout::Uniform { count: 60 }.select(&scan);
        // Count beams within ±30° of straight ahead.
        let forward = |sel: &[usize]| {
            sel.iter()
                .filter(|&&i| scan.angle_of(i).abs() < 30.0f64.to_radians())
                .count() as f64
                / sel.len() as f64
        };
        assert!(
            forward(&boxed) > 1.5 * forward(&uniform),
            "boxed {} vs uniform {}",
            forward(&boxed),
            forward(&uniform)
        );
    }

    #[test]
    fn boxed_angles_cover_both_sides() {
        let angles = boxed_angles(40, 3.0);
        assert!(angles.iter().any(|&a| a > 0.5));
        assert!(angles.iter().any(|&a| a < -0.5));
        assert!(angles.iter().any(|&a| a.abs() < 0.3));
    }

    #[test]
    fn boxed_higher_aspect_looks_further_ahead() {
        let frac_forward = |aspect: f64| {
            let angles = boxed_angles(100, aspect);
            angles.iter().filter(|a| a.abs() < 0.4).count() as f64 / 100.0
        };
        assert!(frac_forward(6.0) > frac_forward(1.0));
    }

    #[test]
    fn empty_scan_selects_nothing() {
        let scan = LaserScan::new(0.0, 0.1, vec![], 10.0);
        assert!(ScanLayout::Uniform { count: 10 }.select(&scan).is_empty());
        assert!(ScanLayout::Boxed {
            count: 10,
            aspect: 2.0
        }
        .select(&scan)
        .is_empty());
    }

    #[test]
    fn count_larger_than_scan_is_clamped() {
        let scan = LaserScan::new(-1.0, 0.5, vec![1.0; 5], 10.0);
        let picked = ScanLayout::Uniform { count: 50 }.select(&scan);
        assert!(picked.len() <= 5);
        assert!(picked.iter().all(|&i| i < 5));
    }

    #[test]
    fn boxed_out_of_fov_angles_dropped() {
        // A narrow-FOV scan cannot see the box's rear edge.
        let scan = LaserScan::new(-0.5, 0.01, vec![1.0; 101], 10.0);
        let picked = ScanLayout::Boxed {
            count: 60,
            aspect: 3.0,
        }
        .select(&scan);
        assert!(!picked.is_empty());
        assert!(picked.iter().all(|&i| i < 101));
    }

    #[test]
    fn layouts_are_deterministic() {
        let scan = hokuyo_scan();
        let layout = ScanLayout::Boxed {
            count: 60,
            aspect: 3.0,
        };
        assert_eq!(layout.select(&scan), layout.select(&scan));
    }
}
