//! Structure-of-arrays particle storage (DESIGN.md §11).
//!
//! The filter's hot loops — motion sampling, the fused cast+weight kernel,
//! the weighted-mean reduction — touch one coordinate of *every* particle
//! per pass. An array-of-structs `Vec<Pose2>` makes each of those passes
//! stride over 24-byte records; [`ParticleStore`] keeps each coordinate in
//! its own contiguous `Vec<f64>` lane so the kernels stream sequentially
//! and the compiler can autovectorize the arithmetic.
//!
//! Two derived lanes, `cos` and `sin` of the heading, are maintained
//! alongside the pose: every consumer of a particle's orientation (motion
//! composition, the sensor mount transform, the circular-mean reduction)
//! needs the heading's sine/cosine, and keeping them incremental — rotated
//! by the motion step's own `sin_cos` via the angle-addition identities —
//! replaces two transcendental calls per particle per step with four
//! multiplies.
//!
//! The `theta` lane is *unnormalized*: motion steps add their heading
//! increment without wrapping, and [`ParticleStore::pose`] normalizes on
//! exposure (through [`Pose2::new`]). All angle consumers are periodic, so
//! this is observationally equivalent to eager wrapping while keeping the
//! hot loop branch-free.

use raceloc_core::Pose2;

/// The five mutable pose lanes in order: `x`, `y`, `theta`, `cos θ`,
/// `sin θ` — what [`ParticleStore::lanes_mut`] hands to the chunk kernels.
pub(crate) type LanesMut<'a> = (
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
);

/// Particle cloud in structure-of-arrays layout: one contiguous `f64` lane
/// per coordinate, plus incrementally maintained `cos θ` / `sin θ` lanes.
///
/// Equality compares every lane bitwise (via `f64` equality), which is what
/// the cross-thread determinism gates assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleStore {
    pub(crate) x: Vec<f64>,
    pub(crate) y: Vec<f64>,
    pub(crate) theta: Vec<f64>,
    pub(crate) cos: Vec<f64>,
    pub(crate) sin: Vec<f64>,
}

impl ParticleStore {
    /// A store of `n` identity poses.
    pub(crate) fn identity(n: usize) -> Self {
        Self {
            x: vec![0.0; n],
            y: vec![0.0; n],
            theta: vec![0.0; n],
            cos: vec![1.0; n],
            sin: vec![0.0; n],
        }
    }

    /// A store holding a copy of `poses`.
    pub fn from_poses(poses: &[Pose2]) -> Self {
        let mut s = Self::default();
        for &p in poses {
            s.push_pose(p);
        }
        s
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The `i`-th particle as a pose, heading normalized to `(-π, π]`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn pose(&self, i: usize) -> Pose2 {
        Pose2::new(self.x[i], self.y[i], self.theta[i])
    }

    /// The `i`-th particle, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<Pose2> {
        (i < self.len()).then(|| self.pose(i))
    }

    /// Iterates the particles as (normalized) poses.
    pub fn iter(&self) -> impl Iterator<Item = Pose2> + '_ {
        (0..self.len()).map(|i| self.pose(i))
    }

    /// Copies the cloud out as a `Vec<Pose2>`.
    pub fn to_vec(&self) -> Vec<Pose2> {
        self.iter().collect()
    }

    /// Overwrites slot `i` with `pose`, recomputing the trig lanes from a
    /// fresh `sin_cos` (used wherever a particle is *replaced* rather than
    /// propagated: reset, global init, recovery injection).
    pub(crate) fn set_pose(&mut self, i: usize, pose: Pose2) {
        let (s, c) = pose.theta.sin_cos();
        self.x[i] = pose.x;
        self.y[i] = pose.y;
        self.theta[i] = pose.theta;
        self.cos[i] = c;
        self.sin[i] = s;
    }

    /// Appends `pose` with fresh trig lanes.
    pub(crate) fn push_pose(&mut self, pose: Pose2) {
        let (s, c) = pose.theta.sin_cos();
        self.x.push(pose.x);
        self.y.push(pose.y);
        self.theta.push(pose.theta);
        self.cos.push(c);
        self.sin.push(s);
    }

    /// All five lanes, mutably — the inline (`threads = 1`) kernel path
    /// slices these per chunk and runs the same kernels the pool jobs do.
    pub(crate) fn lanes_mut(&mut self) -> LanesMut<'_> {
        (
            &mut self.x,
            &mut self.y,
            &mut self.theta,
            &mut self.cos,
            &mut self.sin,
        )
    }

    /// Gathers `idx` (with repeats) into `dst`, replacing its contents —
    /// the resampling step's scatter/gather, kept out-of-place so the
    /// filter can ping-pong two stores without per-step allocation.
    pub(crate) fn gather_into(&self, idx: &[usize], dst: &mut ParticleStore) {
        dst.x.clear();
        dst.y.clear();
        dst.theta.clear();
        dst.cos.clear();
        dst.sin.clear();
        for &i in idx {
            dst.x.push(self.x[i]);
            dst.y.push(self.y[i]);
            dst.theta.push(self.theta[i]);
            dst.cos.push(self.cos[i]);
            dst.sin.push(self.sin[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_store_is_identity_poses() {
        let s = ParticleStore::identity(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for p in s.iter() {
            assert_eq!(p, Pose2::IDENTITY);
        }
    }

    #[test]
    fn round_trips_poses() {
        let poses = vec![
            Pose2::new(1.0, -2.0, 0.4),
            Pose2::new(0.0, 3.5, -3.0),
            Pose2::new(-7.25, 0.5, 3.13),
        ];
        let s = ParticleStore::from_poses(&poses);
        assert_eq!(s.to_vec(), poses);
        assert_eq!(s.get(1), Some(poses[1]));
        assert_eq!(s.get(3), None);
    }

    #[test]
    fn pose_normalizes_unbounded_theta() {
        let mut s = ParticleStore::identity(1);
        s.theta[0] = 3.0 * std::f64::consts::PI; // 1.5 turns
        let p = s.pose(0);
        assert!(
            (p.theta - std::f64::consts::PI).abs() < 1e-12,
            "{}",
            p.theta
        );
    }

    #[test]
    fn set_pose_refreshes_trig_lanes() {
        let mut s = ParticleStore::identity(2);
        s.set_pose(1, Pose2::new(2.0, 3.0, 1.2));
        assert_eq!(s.cos[1], 1.2f64.cos());
        assert_eq!(s.sin[1], 1.2f64.sin());
        assert_eq!(s.cos[0], 1.0, "other slots untouched");
    }

    #[test]
    fn gather_resizes_and_repeats() {
        let s = ParticleStore::from_poses(&[
            Pose2::new(0.0, 0.0, 0.0),
            Pose2::new(1.0, 1.0, 0.5),
            Pose2::new(2.0, 2.0, 1.0),
        ]);
        let mut dst = ParticleStore::default();
        s.gather_into(&[2, 2, 0], &mut dst);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.pose(0), s.pose(2));
        assert_eq!(dst.pose(1), s.pose(2));
        assert_eq!(dst.pose(2), s.pose(0));
        assert_eq!(dst.cos[0], s.cos[2], "trig lanes gathered, not recomputed");
    }

    #[test]
    fn equality_is_lane_wise() {
        let a = ParticleStore::from_poses(&[Pose2::new(1.0, 2.0, 0.3)]);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.x[0] += 1e-12;
        assert_ne!(a, b);
    }
}
