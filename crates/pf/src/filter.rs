//! SynPF: the Monte-Carlo localization filter itself.

use raceloc_obs::Stopwatch;
use std::borrow::Cow;
use std::sync::{Arc, OnceLock};

use crate::kld::KldConfig;
use crate::layout::ScanLayout;
use crate::motion::{DiffDriveModel, TumMotionModel};
use crate::parstep::{cast_weight_kernel, motion_kernel, JobKind, PfShared, StepJob};
use crate::resample::{effective_sample_size, normalize, systematic_indices_into};
use crate::sensor::{BeamModelConfig, BeamSensorModel, LikelihoodField, LikelihoodFieldConfig};
use crate::store::ParticleStore;
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{
    stream_keys, DeadlineController, Diagnostics, Health, HealthSignal, Pose2, Rng64, StepPlan,
};
use raceloc_map::{CellState, OccupancyGrid};
use raceloc_obs::Telemetry;
use raceloc_par::{chunk_count, chunk_spans, PoolJob, WorkerPool, DEFAULT_CHUNK_MIN};
use raceloc_range::{MapArtifacts, RangeMethod};

/// Which motion model drives the prediction step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionConfig {
    /// The textbook odometry model (the paper's baseline in Fig. 1).
    DiffDrive(DiffDriveModel),
    /// The TUM high-speed model (what SynPF uses).
    Tum(TumMotionModel),
}

/// Configuration of augmented-MCL recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Long-term likelihood EMA rate (0 < α_slow ≪ α_fast).
    pub alpha_slow: f64,
    /// Short-term likelihood EMA rate.
    pub alpha_fast: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            alpha_slow: 0.003,
            alpha_fast: 0.1,
        }
    }
}

/// Configuration of a [`SynPf`] filter.
#[derive(Debug, Clone, PartialEq)]
pub struct SynPfConfig {
    /// Number of particles.
    pub particles: usize,
    /// Beam subsampling layout (SynPF default: boxed, 60 beams).
    pub layout: ScanLayout,
    /// Beam sensor-model parameters.
    pub beam_model: BeamModelConfig,
    /// Log-likelihood squash divisor: per-scan weight is
    /// `exp(Σ log p / squash)`. Values around the beam count temper the
    /// overconfident independence assumption between beams.
    pub squash: f64,
    /// Resample when `ESS < resample_ess_frac · particles`.
    pub resample_ess_frac: f64,
    /// σ of the initial position spread around a reset pose \[m\].
    pub init_sigma_xy: f64,
    /// σ of the initial heading spread around a reset pose \[rad\].
    pub init_sigma_theta: f64,
    /// LiDAR pose in the vehicle body frame.
    pub lidar_mount: Pose2,
    /// The motion model.
    pub motion: MotionConfig,
    /// Worker threads for the particle pipeline: 1 = every chunk runs
    /// inline (the paper's GPU-less LUT configuration); >1 dispatches the
    /// chunks to a persistent [`raceloc_par::WorkerPool`], emulating
    /// `rangelibc`'s parallel mode (DESIGN.md §1, §11). The chunk layout
    /// and RNG streams never depend on this value, so results are
    /// bit-identical for any thread count.
    pub threads: usize,
    /// Minimum particles per pipeline chunk (DESIGN.md §11): the particle
    /// set is split into `clamp(particles / chunk_min, 1, 64)` chunks for
    /// both motion sampling and the fused cast+weight kernel. Smaller
    /// values expose more parallelism; larger values cut per-chunk
    /// overhead. Must be positive.
    pub chunk_min: usize,
    /// Optional KLD-adaptive particle counts (Fox 2003): when set, each
    /// resampling step resizes the particle set to the KLD bound for the
    /// cloud's current histogram occupancy, between the configured bounds.
    /// `particles` is then only the initial count.
    pub kld: Option<KldConfig>,
    /// Optional augmented-MCL recovery (Thrun et al. §8.3): when the
    /// short-term measurement likelihood collapses relative to its long-term
    /// average, random particles are injected during resampling so the
    /// filter can recover from kidnapping / total mismatch. Requires
    /// [`SynPf::enable_recovery`] to supply the map to draw random poses
    /// from.
    pub recovery: Option<RecoveryConfig>,
    /// Optional health monitoring (DESIGN.md §12): divergence detectors
    /// feed a Nominal → Degraded → Lost → Recovering state machine, with
    /// stale-input rejection, hold-and-coast on uninformative scans, and
    /// automatic global re-initialization on Lost. `None` (the default)
    /// disables every detector at zero cost in the steady-state step.
    pub health: Option<crate::health::HealthPolicy>,
    /// Optional deadline-aware adaptive compute (DESIGN.md §14): each
    /// correction is planned against a per-step work-unit budget and the
    /// filter degrades down the [`raceloc_core::deadline::LADDER`]
    /// (particle ceiling, beam stride, range tier, bounded coast) instead
    /// of overrunning the scan period. The particle-ceiling rungs need
    /// [`SynPfConfig::kld`] to actually shrink the cloud; without it they
    /// only change the billed cost. `None` (the default) plans nothing.
    pub deadline: Option<raceloc_core::DeadlineConfig>,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for SynPfConfig {
    fn default() -> Self {
        Self {
            particles: 1200,
            layout: ScanLayout::Boxed {
                count: 60,
                aspect: 3.0,
            },
            beam_model: BeamModelConfig::default(),
            squash: 12.0,
            resample_ess_frac: 0.5,
            init_sigma_xy: 0.12,
            init_sigma_theta: 0.07,
            lidar_mount: Pose2::new(0.1, 0.0, 0.0),
            motion: MotionConfig::Tum(TumMotionModel::default()),
            threads: 1,
            chunk_min: DEFAULT_CHUNK_MIN,
            kld: None,
            recovery: None,
            health: None,
            deadline: None,
            seed: 7,
        }
    }
}

/// The SynPF Monte-Carlo localizer (the paper's contribution).
///
/// Synthesizes the prior MCL work the paper builds on: the TUM high-speed
/// motion model and boxed scanline layout (Stahl et al. 2019) with
/// `rangelibc`-style accelerated expected-range queries and a discretized
/// beam sensor model (Walsh & Karaman 2018), plus low-variance resampling
/// gated on the effective sample size.
///
/// Generic over the [`RangeMethod`]: pass a [`raceloc_range::RangeLut`] for
/// the paper's constant-time CPU configuration.
///
/// # Examples
///
/// ```
/// use raceloc_map::{TrackShape, TrackSpec};
/// use raceloc_pf::{SynPf, SynPfConfig};
/// use raceloc_range::RayMarching;
/// use raceloc_core::localizer::Localizer;
///
/// let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
///     .resolution(0.1)
///     .build();
/// let caster = RayMarching::new(&track.grid, 10.0);
/// let config = SynPfConfig::builder().particles(200).build().expect("valid config");
/// let mut pf = SynPf::new(caster, config);
/// pf.reset(track.start_pose());
/// assert_eq!(pf.particles().len(), 200);
/// ```
#[derive(Debug)]
pub struct SynPf<M: RangeMethod> {
    config: SynPfConfig,
    /// Range oracle + sensor table, shared with the pool workers.
    shared: Arc<PfShared<M>>,
    /// The particle cloud in structure-of-arrays lanes (DESIGN.md §11).
    store: ParticleStore,
    weights: Vec<f64>,
    rng: Rng64,
    last_odom: Option<Odometry>,
    estimate: Pose2,
    /// Optional endpoint (likelihood-field) sensor model; when present it
    /// replaces the beam model + range queries in `correct`.
    likelihood_field: Option<LikelihoodField>,
    /// Map to draw random recovery poses from (augmented MCL).
    recovery_map: Option<OccupancyGrid>,
    /// Long-term mean-likelihood EMA (augmented MCL).
    w_slow: f64,
    /// Short-term mean-likelihood EMA (augmented MCL).
    w_fast: f64,
    // Scratch buffers reused across steps to stay allocation-free.
    log_w: Vec<f64>,
    /// Cached beam selection; recomputed only when the scan geometry
    /// changes (the layout depends on nothing else).
    beam_sel: Vec<usize>,
    beam_key: Option<(usize, u64, u64)>,
    /// Per-scan scratch: selected finite beams' bearings.
    beam_bearings: Vec<f64>,
    /// Per-scan scratch: matching measured-range row offsets into the
    /// quantized sensor table.
    beam_rows: Vec<u32>,
    /// Expected-bin scratch for the inline (`threads = 1`) cast kernel.
    ebins: Vec<u32>,
    /// Reusable chunk jobs (at most [`raceloc_par::MAX_CHUNKS`]).
    jobs: Vec<StepJob>,
    /// Worker pool, spawned lazily on the first step with `threads > 1`.
    pool: OnceLock<WorkerPool<Arc<PfShared<M>>, StepJob>>,
    /// Prediction counter; the high half of each chunk's motion RNG stream.
    motion_epoch: u64,
    resample_idx: Vec<usize>,
    resample_scratch: ParticleStore,
    /// Observability handle; disabled by default (one branch per record).
    tel: Telemetry,
    /// Motion-update time accumulated since the last correction \[s\].
    motion_accum_seconds: f64,
    /// Per-stage timings of the last correction, for [`Localizer::diagnostics`].
    last_stages: Vec<(Cow<'static, str>, f64)>,
    /// Health state machine (DESIGN.md §12); only fed when
    /// [`SynPfConfig::health`] is set.
    health_monitor: raceloc_core::HealthMonitor,
    /// EMA mean of the per-step mean squashed log-likelihood.
    lw_mean: f64,
    /// EMA variance of the per-step mean squashed log-likelihood.
    lw_var: f64,
    /// Detector-internal slow mean-likelihood EMA (independent of the
    /// augmented-MCL injection EMAs).
    health_w_slow: f64,
    /// Detector-internal fast mean-likelihood EMA.
    health_w_fast: f64,
    /// Corrections observed by the likelihood EMAs since the last (re)init.
    health_steps: u32,
    /// Detector mute countdown after an automatic global re-init.
    reinit_holdoff: u32,
    /// Degradation-ladder controller (DESIGN.md §14); `None` without a
    /// configured [`SynPfConfig::deadline`].
    deadline: Option<DeadlineController>,
    /// Latest compute-pressure factor delivered through
    /// [`Localizer::set_compute_pressure`] (1 = no pressure).
    pressure_factor: f64,
    /// The plan governing the current correction; read by the resampler's
    /// KLD target clamp.
    last_plan: Option<StepPlan>,
}

/// Per-rung occupancy counters, indexed by ladder rung (DESIGN.md §14).
const RUNG_COUNTERS: [&str; raceloc_core::deadline::LADDER_LEN] = [
    "deadline.rung0",
    "deadline.rung1",
    "deadline.rung2",
    "deadline.rung3",
    "deadline.rung4",
    "deadline.rung5",
];

impl SynPf<Arc<MapArtifacts>> {
    /// Creates a filter over a shared [`MapArtifacts`] bundle — the
    /// service-oriented constructor: N filters on one track share a single
    /// grid/EDT/LUT build (see [`raceloc_range::ArtifactStore`]).
    ///
    /// Sensor-range queries delegate to the bundle's lazily built LUT (the
    /// paper's constant-time CPU configuration).
    ///
    /// # Panics
    ///
    /// Panics when `particles == 0`, `squash <= 0`, or `chunk_min == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_map::{TrackShape, TrackSpec};
    /// use raceloc_pf::{SynPf, SynPfConfig};
    /// use raceloc_range::{ArtifactParams, ArtifactStore};
    ///
    /// let track = TrackSpec::new(TrackShape::Oval { width: 12.0, height: 7.0 })
    ///     .resolution(0.1)
    ///     .build();
    /// let store = ArtifactStore::new();
    /// let artifacts = store.get_or_build(&track.grid, ArtifactParams::default());
    /// let config = SynPfConfig::builder().particles(200).build().expect("valid config");
    /// let pf = SynPf::from_artifacts(artifacts, config);
    /// assert_eq!(pf.particles().len(), 200);
    /// ```
    pub fn from_artifacts(artifacts: Arc<MapArtifacts>, config: SynPfConfig) -> Self {
        Self::new(artifacts, config)
    }

    /// The shared artifact bundle this filter queries.
    pub fn artifacts(&self) -> &Arc<MapArtifacts> {
        &self.shared.caster
    }

    /// Enables augmented-MCL recovery using the bundle's own grid (see
    /// [`SynPf::enable_recovery`]).
    pub fn enable_recovery_from_artifacts(&mut self) {
        let grid = self.shared.caster.grid().clone();
        if self.config.recovery.is_none() {
            self.config.recovery = Some(RecoveryConfig::default());
        }
        self.recovery_map = Some(grid);
    }
}

impl<M: RangeMethod + 'static> SynPf<M> {
    /// Creates a filter over the given range oracle.
    ///
    /// # Panics
    ///
    /// Panics when `particles == 0`, `squash <= 0`, or `chunk_min == 0`.
    pub fn new(caster: M, config: SynPfConfig) -> Self {
        assert!(config.particles > 0, "particle count must be positive");
        assert!(config.squash > 0.0, "squash divisor must be positive");
        assert!(config.chunk_min > 0, "chunk_min must be positive");
        let sensor = BeamSensorModel::new(config.beam_model, caster.max_range());
        let n = config.particles;
        let rng = Rng64::new(config.seed);
        Self {
            shared: Arc::new(PfShared { caster, sensor }),
            store: ParticleStore::identity(n),
            weights: vec![1.0 / n as f64; n],
            rng,
            last_odom: None,
            estimate: Pose2::IDENTITY,
            likelihood_field: None,
            recovery_map: None,
            w_slow: 0.0,
            w_fast: 0.0,
            log_w: Vec::new(),
            beam_sel: Vec::new(),
            beam_key: None,
            beam_bearings: Vec::new(),
            beam_rows: Vec::new(),
            ebins: Vec::new(),
            jobs: Vec::new(),
            pool: OnceLock::new(),
            motion_epoch: 0,
            resample_idx: Vec::new(),
            resample_scratch: ParticleStore::default(),
            tel: Telemetry::disabled(),
            motion_accum_seconds: 0.0,
            last_stages: Vec::new(),
            health_monitor: raceloc_core::HealthMonitor::new(
                config.health.map(|h| h.monitor).unwrap_or_default(),
            ),
            lw_mean: 0.0,
            lw_var: 0.0,
            health_w_slow: 0.0,
            health_w_fast: 0.0,
            health_steps: 0,
            reinit_holdoff: 0,
            deadline: config.deadline.map(DeadlineController::new),
            pressure_factor: 1.0,
            last_plan: None,
            config,
        }
    }

    /// Attaches a telemetry handle: every subsequent prediction and
    /// correction records the `pf.motion`, `pf.raycast`, `pf.sensor`,
    /// `pf.resample`, and `pf.correct` spans (plus the `range.*` metrics of
    /// the batch caster) into it.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The attached telemetry handle (disabled unless
    /// [`SynPf::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Enables augmented-MCL recovery: the filter tracks short- and
    /// long-term averages of the measurement likelihood and, when the
    /// short-term average collapses (`w_fast ≪ w_slow`), injects uniformly
    /// drawn free-space particles during resampling.
    ///
    /// The map is cloned to sample the random poses from; the recovery
    /// rates come from [`SynPfConfig::recovery`] (defaults are applied when
    /// it is `None`).
    pub fn enable_recovery(&mut self, grid: &OccupancyGrid) {
        if self.config.recovery.is_none() {
            self.config.recovery = Some(RecoveryConfig::default());
        }
        self.recovery_map = Some(grid.clone());
    }

    /// The current recovery likelihood ratio `w_fast / w_slow` (≥1 means
    /// healthy); `None` until enough updates have run or when recovery is
    /// disabled.
    pub fn recovery_health(&self) -> Option<f64> {
        if self.recovery_map.is_some() && self.w_slow > 1e-300 {
            Some(self.w_fast / self.w_slow)
        } else {
            None
        }
    }

    /// Feeds one mean raw likelihood observation into the w_slow/w_fast
    /// EMAs and returns the random-injection probability for this update.
    fn update_recovery(&mut self, mean_likelihood: f64) -> f64 {
        let Some(cfg) = self.config.recovery else {
            return 0.0;
        };
        if self.recovery_map.is_none() {
            return 0.0;
        }
        if self.w_slow == 0.0 {
            self.w_slow = mean_likelihood;
            self.w_fast = mean_likelihood;
            return 0.0;
        }
        self.w_slow += cfg.alpha_slow * (mean_likelihood - self.w_slow);
        self.w_fast += cfg.alpha_fast * (mean_likelihood - self.w_fast);
        if self.w_slow > 1e-300 {
            (1.0 - self.w_fast / self.w_slow).max(0.0)
        } else {
            0.0
        }
    }

    /// Replaces a random subset of particles with uniform free-space draws.
    fn inject_random_particles(&mut self, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        let Some(grid) = self.recovery_map.clone() else {
            return;
        };
        let free: Vec<_> = grid
            .iter()
            .filter(|(_, s)| *s == CellState::Free)
            .map(|(idx, _)| idx)
            .collect();
        if free.is_empty() {
            return;
        }
        let n = self.store.len();
        let count = ((n as f64 * fraction).round() as usize).min(n);
        for _ in 0..count {
            let slot = self.rng.uniform_usize(n);
            let idx = free[self.rng.uniform_usize(free.len())];
            let c = grid.index_to_world(idx);
            let jitter = grid.resolution() * 0.5;
            let pose = Pose2::new(
                c.x + self.rng.uniform_range(-jitter, jitter),
                c.y + self.rng.uniform_range(-jitter, jitter),
                self.rng
                    .uniform_range(-std::f64::consts::PI, std::f64::consts::PI),
            );
            self.store.set_pose(slot, pose);
        }
    }

    /// Weighted covariance of the particle cloud around the current
    /// estimate, as `(var_x, var_y, circular_var_theta)` — a confidence
    /// diagnostic for downstream consumers (planners typically gate on it).
    pub fn covariance(&self) -> (f64, f64, f64) {
        let est = self.estimate;
        let (se, ce) = est.theta.sin_cos();
        let mut vx = 0.0;
        let mut vy = 0.0;
        let mut sin_sum = 0.0;
        let mut cos_sum = 0.0;
        // Lane streaming pass; sin/cos of (θ − est.θ) come from the
        // maintained trig lanes via the angle-subtraction identities, so
        // the reduction is transcendental-free.
        for i in 0..self.store.len() {
            let w = self.weights[i];
            let dx = self.store.x[i] - est.x;
            let dy = self.store.y[i] - est.y;
            vx += w * dx * dx;
            vy += w * dy * dy;
            sin_sum += w * (self.store.sin[i] * ce - self.store.cos[i] * se);
            cos_sum += w * (self.store.cos[i] * ce + self.store.sin[i] * se);
        }
        let r = sin_sum.hypot(cos_sum).clamp(0.0, 1.0);
        (vx, vy, 1.0 - r)
    }

    /// Creates a filter that scores particles with the *likelihood-field*
    /// (endpoint) sensor model instead of the beam model: beam endpoints
    /// are compared against a Euclidean distance field of the map, with no
    /// ray casting at all — AMCL's default model, cheaper but blind to
    /// occlusion. The range oracle is kept only for its `max_range`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`SynPf::new`] and
    /// [`LikelihoodField::new`].
    pub fn with_likelihood_field(
        caster: M,
        grid: &OccupancyGrid,
        lf_config: LikelihoodFieldConfig,
        config: SynPfConfig,
    ) -> Self {
        let lf = LikelihoodField::new(grid, lf_config, caster.max_range());
        let mut pf = Self::new(caster, config);
        pf.likelihood_field = Some(lf);
        pf
    }

    /// The configuration.
    pub fn config(&self) -> &SynPfConfig {
        &self.config
    }

    /// The current particle set, in structure-of-arrays layout. Use
    /// [`ParticleStore::iter`] / [`ParticleStore::to_vec`] to read the
    /// particles out as poses.
    pub fn particles(&self) -> &ParticleStore {
        &self.store
    }

    /// The current normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Effective sample size of the current weights.
    pub fn ess(&self) -> f64 {
        effective_sample_size(&self.weights)
    }

    /// Scatters particles uniformly over the free cells of a grid (global
    /// localization / kidnapped-robot initialization).
    pub fn global_init(&mut self, grid: &OccupancyGrid) {
        let free: Vec<_> = grid
            .iter()
            .filter(|(_, s)| *s == CellState::Free)
            .map(|(idx, _)| idx)
            .collect();
        if free.is_empty() {
            return;
        }
        for i in 0..self.store.len() {
            let idx = free[self.rng.uniform_usize(free.len())];
            let c = grid.index_to_world(idx);
            let jitter = grid.resolution() * 0.5;
            let pose = Pose2::new(
                c.x + self.rng.uniform_range(-jitter, jitter),
                c.y + self.rng.uniform_range(-jitter, jitter),
                self.rng
                    .uniform_range(-std::f64::consts::PI, std::f64::consts::PI),
            );
            self.store.set_pose(i, pose);
        }
        let u = 1.0 / self.store.len() as f64;
        self.weights.fill(u);
        self.last_odom = None;
    }

    /// The weighted-mean pose of the particle set (circular mean heading).
    ///
    /// One fused streaming pass over the x/y/cos/sin lanes; the circular
    /// mean `atan2(Σ w·sin θ, Σ w·cos θ)` reads the maintained trig lanes
    /// instead of re-evaluating `sin`/`cos` per particle. Weights are
    /// normalized when this runs, so the only degenerate case (matching
    /// [`raceloc_core::angle::weighted_circular_mean`]'s `None`) is a
    /// vanishing resultant,
    /// which falls back to the previous heading estimate.
    fn expected_pose(&self) -> Pose2 {
        let mut x = 0.0;
        let mut y = 0.0;
        let mut sin_sum = 0.0;
        let mut cos_sum = 0.0;
        for i in 0..self.store.len() {
            let w = self.weights[i];
            x += w * self.store.x[i];
            y += w * self.store.y[i];
            sin_sum += w * self.store.sin[i];
            cos_sum += w * self.store.cos[i];
        }
        let theta = if sin_sum.hypot(cos_sum) < 1e-12 {
            self.estimate.theta
        } else {
            sin_sum.atan2(cos_sum)
        };
        Pose2::new(x, y, theta)
    }

    fn resample_if_needed(&mut self) {
        let n = self.store.len();
        if self.ess() >= self.config.resample_ess_frac * n as f64 {
            return;
        }
        // KLD adaptation: size the new set to the posterior's spread,
        // additionally clamped to the deadline plan's particle ceiling —
        // the ladder's particle-shrink rungs are realized right here.
        let target = match &self.config.kld {
            Some(kld) => {
                let mut t = kld.adapt(self.store.iter());
                if let Some(plan) = &self.last_plan {
                    let cap = ((kld.max_particles as u64)
                        .saturating_mul(plan.rung_params().particle_pct as u64)
                        / 100)
                        .max(1) as usize;
                    t = t.min(cap);
                }
                t
            }
            None => n,
        };
        if self.config.kld.is_some() {
            self.tel.add("pf.kld.n_target", target as u64);
        }
        // In-place low-variance resample through a reusable scratch store:
        // gather every lane (including the trig lanes — gathered, not
        // recomputed) into the spare buffer, then swap it in.
        systematic_indices_into(&self.weights, target, &mut self.rng, &mut self.resample_idx);
        self.store
            .gather_into(&self.resample_idx, &mut self.resample_scratch);
        std::mem::swap(&mut self.store, &mut self.resample_scratch);
        self.tel.add("pf.soa.resampled", target as u64);
        let u = 1.0 / target as f64;
        self.weights.clear();
        self.weights.resize(target, u);
    }

    /// Recomputes the cached beam selection when the scan geometry changed.
    fn select_beams(&mut self, scan: &LaserScan) {
        let key = (
            scan.len(),
            scan.angle_min.to_bits(),
            scan.angle_increment.to_bits(),
        );
        if self.beam_key != Some(key) {
            self.beam_sel = self.config.layout.select(scan);
            self.beam_key = Some(key);
        }
    }

    /// Ensures `jobs` holds at least `chunks` slots and parks any extras
    /// (left over from a larger batch, e.g. after a KLD shrink) as idle.
    fn prepare_jobs(&mut self, chunks: usize) {
        while self.jobs.len() < chunks {
            self.jobs.push(StepJob::empty(self.config.motion));
        }
        for job in self.jobs.iter_mut().skip(chunks) {
            job.kind = JobKind::Idle;
            job.clear_particles();
        }
    }

    /// Runs the prepared job set: inline for `threads = 1`, otherwise on
    /// the lazily spawned persistent pool. Both paths execute the exact
    /// same chunk layout and RNG streams, so results are bit-identical.
    fn run_jobs(&mut self) {
        if self.config.threads > 1 {
            let pool = self
                .pool
                .get_or_init(|| WorkerPool::new(Arc::clone(&self.shared), self.config.threads));
            pool.run_batch(&mut self.jobs);
            // The pool hands jobs back in completion order. Chunk sizes are
            // unequal (balanced layout), so restore chunk order — otherwise a
            // slot sized for a short chunk can be reloaded with a long one
            // next step and its scratch regrows, breaking the
            // zero-allocation steady state.
            self.jobs
                .sort_unstable_by_key(|j| (j.kind == JobKind::Idle, j.start));
            pool.publish_stats(&self.tel);
        } else {
            for job in &mut self.jobs {
                job.run(&self.shared);
            }
        }
    }

    /// Pool utilization counters, if the worker pool has been spawned
    /// (`None` with `threads = 1` or before the first multi-threaded step).
    pub fn pool_stats(&self) -> Option<raceloc_par::PoolStats> {
        self.pool.get().map(WorkerPool::stats)
    }

    /// The deadline controller, when [`SynPfConfig::deadline`] is set:
    /// exposes the rung-occupancy histogram, miss count, and coast count
    /// accumulated so far.
    pub fn deadline(&self) -> Option<&DeadlineController> {
        self.deadline.as_ref()
    }

    /// Plans the current correction against the deadline budget and books
    /// the decision into telemetry; `None` without a controller.
    ///
    /// The billing base for particle ceilings is the KLD maximum (the
    /// count the resampler may legitimately grow back to), or the live
    /// particle count when KLD is disabled — both pure functions of the
    /// configuration and the step history, never of wall-clock time.
    fn plan_deadline(&mut self, beams: u64) -> Option<StepPlan> {
        let health = self.health_monitor.state();
        let base = match &self.config.kld {
            Some(kld) => kld.max_particles,
            None => self.store.len(),
        } as u64;
        let ctl = self.deadline.as_mut()?;
        let plan = ctl.plan(self.pressure_factor, health, base, beams);
        self.tel.add("deadline.rung", plan.rung as u64);
        self.tel.add(RUNG_COUNTERS[plan.rung], 1);
        if plan.miss {
            self.tel.add("deadline.miss", 1);
        }
        if plan.coast {
            self.tel.add("deadline.coast_steps", 1);
        }
        self.last_plan = Some(plan);
        Some(plan)
    }

    /// Books the per-stage timings of a finished correction into telemetry
    /// and into the stage list reported by [`Localizer::diagnostics`].
    fn finish_correction(
        &mut self,
        motion_seconds: f64,
        raycast_seconds: Option<f64>,
        sensor_seconds: f64,
        resample_seconds: f64,
        correct_started: Stopwatch,
    ) {
        // Every correction ends here, after normalize → resample → inject:
        // the particle set the next prediction consumes must be sane.
        raceloc_core::debug_invariant!(
            !self.store.is_empty(),
            "correction produced an empty particle set"
        );
        raceloc_core::debug_invariant!(
            self.weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative after resample"
        );
        raceloc_core::debug_invariant!(
            (self.weights.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "weights must be normalized after resample (sum = {})",
            self.weights.iter().sum::<f64>()
        );
        self.last_stages.clear();
        self.last_stages
            .push((Cow::Borrowed("motion"), motion_seconds));
        if let Some(raycast) = raycast_seconds {
            self.tel.record_span("pf.raycast", raycast);
            self.last_stages.push((Cow::Borrowed("raycast"), raycast));
        }
        self.tel.record_span("pf.sensor", sensor_seconds);
        self.tel.record_span("pf.resample", resample_seconds);
        self.tel
            .record_span("pf.correct", correct_started.elapsed_seconds());
        self.last_stages
            .push((Cow::Borrowed("sensor"), sensor_seconds));
        self.last_stages
            .push((Cow::Borrowed("resample"), resample_seconds));
    }

    /// Books a correction that carried no measurement information (empty,
    /// fully dropped-out, or stale scan) into the health machine: the
    /// filter holds and coasts on dead-reckoning, which is at best a
    /// Degraded condition.
    fn note_uninformative_scan(&mut self) {
        if self.config.health.is_some() {
            self.health_monitor.observe(HealthSignal::Suspect);
        }
    }

    /// Whether the scan is too old relative to the newest odometry to be
    /// corrected against (stale-input rejection, DESIGN.md §12).
    fn scan_is_stale(&self, scan: &LaserScan) -> bool {
        let Some(policy) = self.config.health else {
            return false;
        };
        match self.last_odom {
            Some(last) => last.stamp - scan.stamp > policy.max_scan_age,
            None => false,
        }
    }

    /// Feeds one mean-log-likelihood observation into the EMA tracker.
    fn observe_likelihood(&mut self, policy: crate::health::HealthPolicy, mean_lw: f64) {
        if self.health_steps == 0 {
            self.lw_mean = mean_lw;
            self.lw_var = 0.0;
        } else {
            let d = mean_lw - self.lw_mean;
            self.lw_mean += policy.ema_alpha * d;
            self.lw_var += policy.ema_alpha * (d * d - self.lw_var);
        }
        self.health_steps = self.health_steps.saturating_add(1);
    }

    /// Feeds one mean raw-likelihood observation into the detector's own
    /// fast/slow EMA pair and returns the current `fast / slow` ratio.
    fn observe_ratio(&mut self, policy: crate::health::HealthPolicy, mean_lik: f64) -> Option<f64> {
        if self.health_w_slow == 0.0 {
            self.health_w_slow = mean_lik;
            self.health_w_fast = mean_lik;
            return None;
        }
        self.health_w_slow += policy.ratio_alpha_slow * (mean_lik - self.health_w_slow);
        self.health_w_fast += policy.ratio_alpha_fast * (mean_lik - self.health_w_fast);
        (self.health_w_slow > 1e-300).then(|| self.health_w_fast / self.health_w_slow)
    }

    /// Reduces one correction to a coarse health signal: likelihood
    /// z-score, pre-resample ESS fraction, covariance trace, and the
    /// augmented-MCL likelihood ratio, each voting Suspect or Diverged.
    fn detector_signal(
        &mut self,
        policy: crate::health::HealthPolicy,
        mean_lw: f64,
        mean_lik: f64,
    ) -> HealthSignal {
        let warmed = self.health_steps >= policy.warmup_steps;
        let z = warmed.then(|| {
            let sigma = self.lw_var.max(0.0).sqrt().max(policy.z_sigma_floor);
            (mean_lw - self.lw_mean) / sigma
        });
        self.observe_likelihood(policy, mean_lw);
        let ratio = self.observe_ratio(policy, mean_lik);
        if !warmed {
            return HealthSignal::Ok;
        }
        let mut diverged = false;
        let mut suspect = false;
        if let Some(z) = z {
            if z < -policy.z_lost {
                diverged = true;
            } else if z < -policy.z_suspect {
                suspect = true;
            }
        }
        if let Some(ratio) = ratio {
            if ratio < policy.ratio_lost {
                diverged = true;
            }
        }
        let (vx, vy, _) = self.covariance();
        let cov = vx + vy;
        if cov > policy.cov_suspect_m2 {
            // Never a Diverged vote: a dispersed cloud with a healthy
            // likelihood is augmented-MCL injection mid-recovery, and
            // declaring Lost here would re-scatter a filter that is
            // about to converge. Divergence proper is evidenced by the
            // likelihood detectors above.
            suspect = true;
        }
        let n = self.store.len().max(1) as f64;
        if effective_sample_size(&self.weights) / n < policy.ess_suspect_frac {
            suspect = true;
        }
        if diverged {
            HealthSignal::Diverged
        } else if suspect {
            HealthSignal::Suspect
        } else {
            HealthSignal::Ok
        }
    }

    /// Runs the divergence detectors and the Lost → global re-init
    /// degraded behavior. Called once per informative correction, after
    /// normalization and before resampling; a no-op when
    /// [`SynPfConfig::health`] is `None`.
    fn update_health(&mut self, mean_lw: f64, mean_lik: f64) {
        let Some(policy) = self.config.health else {
            return;
        };
        if self.reinit_holdoff > 0 {
            // A freshly scattered cloud legitimately has a huge covariance
            // and an unsettled likelihood level: keep learning the EMAs
            // but let the machine sit in Recovering undisturbed.
            self.reinit_holdoff -= 1;
            self.observe_likelihood(policy, mean_lw);
            self.observe_ratio(policy, mean_lik);
            return;
        }
        let signal = self.detector_signal(policy, mean_lw, mean_lik);
        let state = self.health_monitor.observe(signal);
        if state == Health::Lost && policy.auto_reinit {
            let Some(grid) = self.recovery_map.clone() else {
                return;
            };
            // Uniform reseed over free space: the same machinery as
            // kidnapped-robot initialization, plus a detector holdoff and
            // fresh likelihood statistics for the new cloud.
            self.global_init(&grid);
            self.health_monitor.notify_reinit();
            // The ladder mirrors the health holdoff: no climbing into an
            // expensive rung while the re-scattered cloud re-converges.
            if let Some(ctl) = &mut self.deadline {
                ctl.notify_reinit();
            }
            self.reinit_holdoff = policy.reinit_holdoff;
            self.w_slow = 0.0;
            self.w_fast = 0.0;
            self.lw_mean = 0.0;
            self.lw_var = 0.0;
            self.health_w_slow = 0.0;
            self.health_w_fast = 0.0;
            self.health_steps = 0;
            self.tel.add("pf.health.reinit", 1);
        }
    }
}

impl<M: RangeMethod + 'static> Localizer for SynPf<M> {
    fn predict(&mut self, odom: &Odometry) {
        let Some(last) = self.last_odom else {
            self.last_odom = Some(*odom);
            return;
        };
        let started = Stopwatch::start();
        let delta = last.pose.relative_to(odom.pose);
        let dt = (odom.stamp - last.stamp).max(1e-4);
        // Chunked motion sampling: each chunk draws from a counter-derived
        // RNG stream keyed by (prediction epoch, chunk index), so the noise
        // sequence is a pure function of the seed and the step history —
        // independent of thread count and scheduling.
        self.motion_epoch += 1;
        let n = self.store.len();
        if self.config.threads > 1 {
            let chunks = chunk_count(n, self.config.chunk_min);
            self.prepare_jobs(chunks);
            for (idx, span) in chunk_spans(n, self.config.chunk_min).enumerate() {
                let job = &mut self.jobs[idx];
                job.kind = JobKind::Motion;
                job.load_particles(&self.store, span);
                job.motion = self.config.motion;
                job.delta = delta;
                job.twist = odom.twist;
                job.dt = dt;
                job.seed = self.config.seed;
                job.epoch = self.motion_epoch;
                job.chunk = idx as u64;
            }
            self.run_jobs();
            // Jobs may come back in any completion order; scatter by offset.
            for job in &self.jobs {
                if job.kind != JobKind::Motion {
                    continue;
                }
                job.store_particles(&mut self.store);
            }
        } else {
            // Inline path: the same kernel, chunk layout, and RNG streams
            // as the pool path, run directly on per-chunk slices of the
            // store's lanes — zero copies, bitwise-identical results.
            let motion = self.config.motion;
            let seed = self.config.seed;
            let epoch = self.motion_epoch;
            let chunk_min = self.config.chunk_min;
            let twist = odom.twist;
            let (x, y, theta, cos_t, sin_t) = self.store.lanes_mut();
            for (idx, span) in chunk_spans(n, chunk_min).enumerate() {
                let mut rng = Rng64::stream(seed, stream_keys::pf_motion(epoch, idx as u64));
                let (s, e) = (span.start, span.end);
                motion_kernel(
                    &motion,
                    delta,
                    twist,
                    dt,
                    &mut rng,
                    &mut x[s..e],
                    &mut y[s..e],
                    &mut theta[s..e],
                    &mut cos_t[s..e],
                    &mut sin_t[s..e],
                );
            }
        }
        self.last_odom = Some(*odom);
        let seconds = started.elapsed_seconds();
        self.motion_accum_seconds += seconds;
        self.tel.record_span("pf.motion", seconds);
    }

    fn correct(&mut self, scan: &LaserScan) -> Pose2 {
        // Stale-input rejection (DESIGN.md §12): correcting against a scan
        // older than the odometry horizon would drag the cloud backwards.
        if self.scan_is_stale(scan) {
            self.note_uninformative_scan();
            return self.estimate;
        }
        self.select_beams(scan);
        if self.beam_sel.is_empty() {
            return self.estimate;
        }
        // Hold-and-coast: a scan whose selected beams are all dropped or
        // saturated (e.g. a lidar blackout) carries no information —
        // scoring it would weight every particle equally and poison the
        // recovery EMAs, so the filter coasts on dead-reckoning instead.
        let cutoff = scan.max_range - 1e-9;
        let usable = self
            .beam_sel
            .iter()
            .filter(|&&b| {
                let r = scan.ranges[b];
                r.is_finite() && r > 0.0 && r < cutoff
            })
            .count();
        if usable == 0 {
            self.note_uninformative_scan();
            return self.estimate;
        }
        // Deadline plan (DESIGN.md §14): pick this correction's
        // degradation-ladder rung from the budget, the pressure factor,
        // and the health state — all deterministic inputs, so the rung
        // sequence is bit-identical for any thread count.
        let plan = self.plan_deadline(self.beam_sel.len() as u64);
        if plan.is_some_and(|p| p.coast) {
            // Bottom rung: shed the correction entirely and coast on the
            // motion estimate — a deliberate, bounded hold, booked to the
            // health machine like any other uninformative correction.
            self.note_uninformative_scan();
            return self.estimate;
        }
        let (stride, quantum) = match plan {
            Some(p) => {
                let rung = p.rung_params();
                (rung.beam_stride as usize, rung.tier.bearing_quantum())
            }
            None => (1, None),
        };
        let correct_started = Stopwatch::start();
        let motion_seconds = std::mem::take(&mut self.motion_accum_seconds);
        let n = self.store.len();
        // The mean-likelihood reductions (two extra exp/sum passes over the
        // cloud) only feed augmented-MCL recovery and the health detectors;
        // skip them entirely when neither is configured.
        let need_stats = self.config.recovery.is_some() || self.config.health.is_some();
        // Borrow the cached selection and log-weight scratch out of `self`
        // for the duration of the scoring pass; both are restored below.
        let beams = std::mem::take(&mut self.beam_sel);
        let mut log_w = std::mem::take(&mut self.log_w);
        // Endpoint model: no range queries, score endpoints against the
        // distance field.
        if let Some(lf) = &self.likelihood_field {
            let sensor_started = Stopwatch::start();
            log_w.clear();
            log_w.resize(n, 0.0);
            let cutoff = scan.max_range - 1e-9;
            for (i, p) in self.store.iter().enumerate() {
                let sensor_pose = p * self.config.lidar_mount;
                let mut acc = 0.0;
                // Deadline beam stride: uniform decimation of the selected
                // fan (1 without a plan).
                for &b in beams.iter().step_by(stride) {
                    let r = scan.ranges[b];
                    if r <= 0.0 || r >= cutoff {
                        continue;
                    }
                    let a = sensor_pose.theta + scan.angle_of(b);
                    let endpoint = raceloc_core::Point2::new(
                        sensor_pose.x + r * a.cos(),
                        sensor_pose.y + r * a.sin(),
                    );
                    acc += lf.log_prob_point(endpoint);
                }
                log_w[i] = acc / self.config.squash;
            }
            let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (w, lw) in self.weights.iter_mut().zip(&log_w) {
                *w *= (lw - max_lw).exp();
            }
            let (mean_lik, mean_lw) = if need_stats {
                (
                    log_w.iter().map(|lw| lw.exp()).sum::<f64>() / log_w.len().max(1) as f64,
                    log_w.iter().sum::<f64>() / log_w.len().max(1) as f64,
                )
            } else {
                (0.0, 0.0)
            };
            self.beam_sel = beams;
            self.log_w = log_w;
            let inject = self.update_recovery(mean_lik);
            normalize(&mut self.weights);
            self.estimate = self.expected_pose();
            self.update_health(mean_lw, mean_lik);
            let sensor_seconds = sensor_started.elapsed_seconds();
            let resample_started = Stopwatch::start();
            self.resample_if_needed();
            self.inject_random_particles(inject);
            let resample_seconds = resample_started.elapsed_seconds();
            self.finish_correction(
                motion_seconds,
                None,
                sensor_seconds,
                resample_seconds,
                correct_started,
            );
            return self.estimate;
        }
        // Beam model, fused cast + weight kernel (DESIGN.md §11): for each
        // particle the kernel casts the beam fan straight to quantized
        // expected-range bins and sums u16 sensor-model codes in integer
        // arithmetic, instead of materializing the n·k expected-range
        // matrix. The scan-dependent half of the table lookup — each
        // measured range's row offset — is hoisted here, once per scan.
        // Dropped beams (non-finite ranges) are skipped entirely: the
        // filter is identical for every chunk, so the layout stays a pure
        // function of the scan and results stay bit-identical across
        // thread counts.
        // The deadline plan degrades this hoist in two ways: the beam
        // stride uniformly decimates the selected fan, and the degraded
        // range tiers snap bearings onto a coarse conic grid (the
        // CDDT/raymarch fallback analog) so the cast amortizes across
        // bearing-identical beams. Both are pure functions of the scan
        // and the plan, so the layout stays bit-identical across thread
        // counts.
        self.beam_bearings.clear();
        self.beam_rows.clear();
        let sensor = &self.shared.sensor;
        self.beam_bearings.extend(
            beams
                .iter()
                .step_by(stride)
                .filter(|&&b| scan.ranges[b].is_finite())
                .map(|&b| {
                    let a = scan.angle_of(b);
                    match quantum {
                        Some(q) => (a / q).round() * q,
                        None => a,
                    }
                }),
        );
        self.beam_rows.extend(
            beams
                .iter()
                .step_by(stride)
                .map(|&b| scan.ranges[b])
                .filter(|r| r.is_finite())
                .map(|r| sensor.row_offset(r)),
        );
        let k_finite = self.beam_bearings.len();
        let raycast_started = Stopwatch::start();
        log_w.clear();
        log_w.resize(n, 0.0);
        if self.config.threads > 1 {
            let chunks = chunk_count(n, self.config.chunk_min);
            self.prepare_jobs(chunks);
            for (idx, span) in chunk_spans(n, self.config.chunk_min).enumerate() {
                let job = &mut self.jobs[idx];
                job.kind = JobKind::CastWeight;
                job.load_particles(&self.store, span);
                job.bearings.clear();
                job.bearings.extend_from_slice(&self.beam_bearings);
                job.rows.clear();
                job.rows.extend_from_slice(&self.beam_rows);
                job.mount = self.config.lidar_mount;
                job.squash = self.config.squash;
            }
            self.run_jobs();
            for job in &self.jobs {
                if job.kind != JobKind::CastWeight {
                    continue;
                }
                log_w[job.start..job.start + job.log_w.len()].copy_from_slice(&job.log_w);
            }
        } else {
            // Inline path: one kernel call over the whole store — per
            // particle the computation is chunk-independent, so this is
            // bitwise identical to the pooled chunked run.
            cast_weight_kernel(
                &self.shared.caster,
                &self.shared.sensor,
                self.config.lidar_mount,
                self.config.squash,
                &self.beam_bearings,
                &self.beam_rows,
                &self.store.x,
                &self.store.y,
                &self.store.theta,
                &self.store.cos,
                &self.store.sin,
                &mut self.ebins,
                &mut log_w,
            );
        }
        // Same telemetry contract as the unfused pipeline: the query count
        // the kernel evaluated (dropped beams are never cast), and the
        // casting time under `pf.raycast` (booked by `finish_correction`).
        self.tel.add("range.queries", (n * k_finite) as u64);
        let raycast_seconds = raycast_started.elapsed_seconds();
        // Weight reduction over the scattered per-particle log-likelihoods.
        let sensor_started = Stopwatch::start();
        let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (w, lw) in self.weights.iter_mut().zip(&log_w) {
            *w *= (lw - max_lw).exp();
        }
        let (mean_lik, mean_lw) = if need_stats {
            (
                log_w.iter().map(|lw| lw.exp()).sum::<f64>() / log_w.len().max(1) as f64,
                log_w.iter().sum::<f64>() / log_w.len().max(1) as f64,
            )
        } else {
            (0.0, 0.0)
        };
        self.beam_sel = beams;
        self.log_w = log_w;
        let inject = self.update_recovery(mean_lik);
        normalize(&mut self.weights);
        self.estimate = self.expected_pose();
        self.update_health(mean_lw, mean_lik);
        let sensor_seconds = sensor_started.elapsed_seconds();
        let resample_started = Stopwatch::start();
        self.resample_if_needed();
        self.inject_random_particles(inject);
        let resample_seconds = resample_started.elapsed_seconds();
        self.finish_correction(
            motion_seconds,
            Some(raycast_seconds),
            sensor_seconds,
            resample_seconds,
            correct_started,
        );
        self.estimate
    }

    fn pose(&self) -> Pose2 {
        self.estimate
    }

    fn reset(&mut self, pose: Pose2) {
        for i in 0..self.store.len() {
            let p = Pose2::new(
                self.rng.gaussian_with(pose.x, self.config.init_sigma_xy),
                self.rng.gaussian_with(pose.y, self.config.init_sigma_xy),
                self.rng
                    .gaussian_with(pose.theta, self.config.init_sigma_theta),
            );
            self.store.set_pose(i, p);
        }
        let u = 1.0 / self.store.len() as f64;
        self.weights.fill(u);
        self.estimate = pose;
        self.last_odom = None;
        self.w_slow = 0.0;
        self.w_fast = 0.0;
        self.motion_epoch = 0;
        self.motion_accum_seconds = 0.0;
        self.last_stages.clear();
        self.health_monitor.reset();
        self.lw_mean = 0.0;
        self.lw_var = 0.0;
        self.health_w_slow = 0.0;
        self.health_w_fast = 0.0;
        self.health_steps = 0;
        self.reinit_holdoff = 0;
        if let Some(ctl) = &mut self.deadline {
            ctl.reset();
        }
        self.pressure_factor = 1.0;
        self.last_plan = None;
    }

    fn name(&self) -> &str {
        "synpf"
    }

    fn health(&self) -> Health {
        self.health_monitor.state()
    }

    fn set_compute_pressure(&mut self, factor: f64) {
        self.pressure_factor = factor;
    }

    fn diagnostics(&self) -> Diagnostics {
        let (vx, vy, _vt) = self.covariance();
        Diagnostics {
            particles: Some(self.store.len()),
            ess: Some(self.ess()),
            covariance_trace: Some(vx + vy),
            match_score: self.recovery_health(),
            health: self
                .config
                .health
                .is_some()
                .then(|| self.health_monitor.state()),
            stages: self.last_stages.clone(),
        }
    }
}

impl<M: RangeMethod + 'static> Clone for SynPf<M> {
    /// Clones the filter state. The range oracle and sensor table are
    /// shared (`Arc`), while the worker pool and scratch buffers are fresh:
    /// the clone spawns its own pool lazily and replays identically from
    /// its copied RNG state.
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            shared: Arc::clone(&self.shared),
            store: self.store.clone(),
            weights: self.weights.clone(),
            rng: self.rng.clone(),
            last_odom: self.last_odom,
            estimate: self.estimate,
            likelihood_field: self.likelihood_field.clone(),
            recovery_map: self.recovery_map.clone(),
            w_slow: self.w_slow,
            w_fast: self.w_fast,
            log_w: Vec::new(),
            beam_sel: self.beam_sel.clone(),
            beam_key: self.beam_key,
            beam_bearings: Vec::new(),
            beam_rows: Vec::new(),
            ebins: Vec::new(),
            jobs: Vec::new(),
            pool: OnceLock::new(),
            motion_epoch: self.motion_epoch,
            resample_idx: Vec::new(),
            resample_scratch: ParticleStore::default(),
            tel: self.tel.clone(),
            motion_accum_seconds: self.motion_accum_seconds,
            last_stages: self.last_stages.clone(),
            health_monitor: self.health_monitor.clone(),
            lw_mean: self.lw_mean,
            lw_var: self.lw_var,
            health_w_slow: self.health_w_slow,
            health_w_fast: self.health_w_fast,
            health_steps: self.health_steps,
            reinit_holdoff: self.reinit_holdoff,
            deadline: self.deadline.clone(),
            pressure_factor: self.pressure_factor,
            last_plan: self.last_plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::RayMarching;

    fn track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build()
    }

    fn small_pf(track: &Track, particles: usize) -> SynPf<RayMarching> {
        let caster = RayMarching::new(&track.grid, 10.0);
        SynPf::new(
            caster,
            SynPfConfig {
                particles,
                ..SynPfConfig::default()
            },
        )
    }

    /// Simulates a noiseless scan from a pose using the same caster family.
    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    #[test]
    fn reset_centers_cloud_on_pose() {
        let t = track();
        let mut pf = small_pf(&t, 500);
        let pose = t.start_pose();
        pf.reset(pose);
        let mean = pf
            .particles()
            .iter()
            .fold((0.0, 0.0), |acc, p| (acc.0 + p.x, acc.1 + p.y));
        let mean = Pose2::new(mean.0 / 500.0, mean.1 / 500.0, pose.theta);
        assert!(mean.dist(pose) < 0.05);
        assert!((pf.ess() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn correction_tightens_estimate() {
        let t = track();
        let mut pf = small_pf(&t, 800);
        let true_pose = t.start_pose();
        // Initialize deliberately offset.
        let offset = Pose2::new(
            true_pose.x + 0.2,
            true_pose.y - 0.15,
            true_pose.theta + 0.05,
        );
        pf.reset(offset);
        let scan = scan_from(&t, true_pose, pf.config().lidar_mount);
        let mut est = pf.pose();
        for _ in 0..6 {
            est = pf.correct(&scan);
        }
        assert!(
            est.dist(true_pose) < 0.15,
            "estimate {est} vs truth {true_pose}"
        );
    }

    #[test]
    fn stationary_tracking_is_stable() {
        let t = track();
        let mut pf = small_pf(&t, 600);
        let pose = t.start_pose();
        pf.reset(pose);
        let scan = scan_from(&t, pose, pf.config().lidar_mount);
        let stamp = |i: usize| i as f64 * 0.02;
        for i in 0..20 {
            pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, stamp(i)));
            let est = pf.correct(&scan);
            assert!(est.dist(pose) < 0.25, "diverged at step {i}: {est}");
        }
    }

    #[test]
    fn tracks_forward_motion() {
        let t = track();
        let mut pf = small_pf(&t, 800);
        let start = t.start_pose();
        pf.reset(start);
        // Drive 1 m forward along the heading in 10 steps; odometry exact.
        let v: f64 = 2.0;
        let dt = 0.05;
        let mut odom_pose = Pose2::IDENTITY;
        pf.predict(&Odometry::new(odom_pose, Twist2::new(v, 0.0, 0.0), 0.0));
        let mut true_pose = start;
        for i in 1..=10 {
            let step = Pose2::new(v * dt, 0.0, 0.0);
            odom_pose = odom_pose * step;
            true_pose = true_pose * step;
            pf.predict(&Odometry::new(
                odom_pose,
                Twist2::new(v, 0.0, 0.0),
                i as f64 * dt,
            ));
            let scan = scan_from(&t, true_pose, pf.config().lidar_mount);
            let est = pf.correct(&scan);
            assert!(est.dist(true_pose) < 0.3, "step {i}: {est} vs {true_pose}");
        }
    }

    #[test]
    fn resampling_triggers_on_peaked_weights() {
        let t = track();
        let mut pf = small_pf(&t, 300);
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        // After several corrections ESS drops and resampling kicks in; the
        // invariant is that weights return to uniform afterwards.
        for _ in 0..10 {
            pf.correct(&scan);
        }
        let n = pf.particles().len() as f64;
        assert!(pf.ess() > 0.3 * n, "ess collapsed: {}", pf.ess());
    }

    #[test]
    fn global_init_spreads_over_free_space() {
        let t = track();
        let mut pf = small_pf(&t, 400);
        pf.global_init(&t.grid);
        let free = pf
            .particles()
            .iter()
            .filter(|p| t.grid.state_at_world(p.translation()) == CellState::Free)
            .count();
        assert!(free as f64 > 0.95 * 400.0);
        // Spread across the whole track, not one spot.
        let xs: Vec<f64> = pf.particles().iter().map(|p| p.x).collect();
        let span = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(span > 6.0, "span {span}");
    }

    #[test]
    fn global_localization_converges_with_scans() {
        let t = track();
        let mut pf = small_pf(&t, 3000);
        pf.global_init(&t.grid);
        let true_pose = t.start_pose();
        let scan = scan_from(&t, true_pose, pf.config().lidar_mount);
        let mut est = Pose2::IDENTITY;
        for i in 0..25 {
            // Small jitter between corrections keeps the cloud explorative.
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            est = pf.correct(&scan);
        }
        // The oval is symmetric front/back, so allow either of the two
        // geometrically consistent poses.
        let mirrored = Pose2::new(
            -true_pose.x,
            -true_pose.y,
            true_pose.theta + std::f64::consts::PI,
        );
        let ok = est.dist(true_pose) < 0.5 || est.dist(mirrored) < 0.5;
        assert!(ok, "global localization landed at {est}");
    }

    #[test]
    fn empty_scan_is_ignored() {
        let t = track();
        let mut pf = small_pf(&t, 100);
        pf.reset(t.start_pose());
        let before = pf.pose();
        let est = pf.correct(&LaserScan::new(0.0, 0.1, vec![], 10.0));
        assert_eq!(est, before);
    }

    #[test]
    fn first_predict_only_sets_reference() {
        let t = track();
        let mut pf = small_pf(&t, 100);
        pf.reset(t.start_pose());
        let cloud_before = pf.particles().clone();
        pf.predict(&Odometry::new(
            Pose2::new(99.0, 0.0, 0.0),
            Twist2::ZERO,
            0.0,
        ));
        assert_eq!(pf.particles(), &cloud_before);
    }

    #[test]
    fn deterministic_in_seed() {
        let t = track();
        let run = || {
            let mut pf = small_pf(&t, 200);
            pf.reset(t.start_pose());
            let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
            for i in 0..5 {
                pf.predict(&Odometry::new(
                    Pose2::new(0.01 * i as f64, 0.0, 0.0),
                    Twist2::new(0.5, 0.0, 0.0),
                    i as f64 * 0.02,
                ));
                pf.correct(&scan);
            }
            pf.pose().to_array()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn threaded_casting_matches_sequential() {
        let t = track();
        let mk = |threads: usize| {
            let caster = RayMarching::new(&t.grid, 10.0);
            let mut pf = SynPf::new(
                caster,
                SynPfConfig {
                    particles: 150,
                    threads,
                    ..SynPfConfig::default()
                },
            );
            pf.reset(t.start_pose());
            let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
            for _ in 0..3 {
                pf.correct(&scan);
            }
            pf.pose().to_array()
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn diagnostics_populated_after_correction() {
        let t = track();
        let mut pf = small_pf(&t, 300);
        pf.reset(t.start_pose());
        assert!(pf.diagnostics().stages.is_empty(), "no correction yet");
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.02));
        pf.correct(&scan);
        let d = pf.diagnostics();
        assert_eq!(d.particles, Some(300));
        let ess = d.ess.expect("ess reported");
        assert!(ess > 0.0 && ess <= 300.0 + 1e-6, "ess {ess}");
        assert!(d.covariance_trace.expect("cov reported") >= 0.0);
        for stage in ["motion", "raycast", "sensor", "resample"] {
            let s = d.stage(stage).unwrap_or_else(|| panic!("stage {stage}"));
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn telemetry_records_correction_spans() {
        let t = track();
        let mut pf = small_pf(&t, 200);
        let tel = raceloc_obs::Telemetry::enabled();
        pf.set_telemetry(tel.clone());
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        for i in 0..3 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&scan);
        }
        let snap = tel.snapshot();
        for span in [
            "pf.motion",
            "pf.raycast",
            "pf.sensor",
            "pf.resample",
            "pf.correct",
        ] {
            let s = snap.span(span).unwrap_or_else(|| panic!("span {span}"));
            assert!(s.count >= 1, "{span}");
        }
        assert_eq!(snap.span("pf.correct").unwrap().count, 3);
        // The batch caster books its own metrics through the same handle.
        assert!(snap.counter("range.queries").unwrap_or(0) > 0);
        // Stage spans nest inside the whole correction.
        let total = snap.span("pf.correct").unwrap().total_seconds;
        let parts = snap.span("pf.raycast").unwrap().total_seconds
            + snap.span("pf.sensor").unwrap().total_seconds
            + snap.span("pf.resample").unwrap().total_seconds;
        assert!(parts <= total + 1e-6, "stages {parts} exceed total {total}");
    }

    #[test]
    #[should_panic(expected = "particle count")]
    fn zero_particles_panics() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        SynPf::new(
            caster,
            SynPfConfig {
                particles: 0,
                ..SynPfConfig::default()
            },
        );
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::kld::KldConfig;
    use crate::sensor::LikelihoodFieldConfig;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::RayMarching;

    fn track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build()
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    #[test]
    fn kld_shrinks_converged_cloud() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 2000,
                kld: Some(KldConfig {
                    min_particles: 150,
                    ..KldConfig::default()
                }),
                ..SynPfConfig::default()
            },
        );
        let pose = t.start_pose();
        pf.reset(pose);
        let scan = scan_from(&t, pose, pf.config().lidar_mount);
        for i in 0..15 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&scan);
        }
        // Converged tracking needs far fewer than the initial 2000.
        assert!(
            pf.particles().len() < 1000,
            "KLD did not shrink the set: {}",
            pf.particles().len()
        );
        assert!(pf.particles().len() >= 150);
        // Estimate quality is preserved.
        assert!(pf.pose().dist(pose) < 0.2);
        // Weights stay a distribution of the new size.
        assert_eq!(pf.weights().len(), pf.particles().len());
        let sum: f64 = pf.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn likelihood_field_variant_localizes() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::with_likelihood_field(
            caster,
            &t.grid,
            LikelihoodFieldConfig::default(),
            SynPfConfig {
                particles: 600,
                ..SynPfConfig::default()
            },
        );
        let truth = t.start_pose();
        pf.reset(Pose2::new(truth.x + 0.2, truth.y - 0.1, truth.theta + 0.05));
        let scan = scan_from(&t, truth, pf.config().lidar_mount);
        let mut est = pf.pose();
        for _ in 0..8 {
            est = pf.correct(&scan);
        }
        assert!(est.dist(truth) < 0.2, "LF estimate {est} vs truth {truth}");
    }

    #[test]
    fn likelihood_field_is_deterministic_too() {
        let t = track();
        let run = || {
            let caster = RayMarching::new(&t.grid, 10.0);
            let mut pf = SynPf::with_likelihood_field(
                caster,
                &t.grid,
                LikelihoodFieldConfig::default(),
                SynPfConfig {
                    particles: 200,
                    ..SynPfConfig::default()
                },
            );
            pf.reset(t.start_pose());
            let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
            for _ in 0..3 {
                pf.correct(&scan);
            }
            pf.pose().to_array()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod health_tests {
    use super::*;
    use crate::health::HealthPolicy;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::RayMarching;

    fn track() -> Track {
        TrackSpec::new(TrackShape::RandomFourier {
            seed: 5,
            mean_radius: 5.0,
            amplitude: 0.2,
            harmonics: 3,
        })
        .resolution(0.1)
        .build()
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    /// The stale-input detector compares scan stamps against odometry
    /// stamps, so every scored scan must carry the loop time.
    fn stamped(scan: &LaserScan, stamp: f64) -> LaserScan {
        let mut s = scan.clone();
        s.stamp = stamp;
        s
    }

    fn health_pf(t: &Track, particles: usize) -> SynPf<RayMarching> {
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles,
                recovery: Some(RecoveryConfig {
                    alpha_slow: 0.01,
                    alpha_fast: 0.4,
                }),
                health: Some(HealthPolicy::default()),
                ..SynPfConfig::default()
            },
        );
        pf.enable_recovery(&t.grid);
        pf
    }

    #[test]
    fn kidnap_reaches_lost_then_reinit_recovers_to_nominal() {
        let t = track();
        // Near-inert augmented-MCL rates: random injection stays negligible,
        // so recovery must come from the health machine's Lost → global
        // re-init path rather than from particle injection.
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 1500,
                // Which along-track mode the zero-motion re-init locks onto
                // is realization-dependent (see the bound below); this seed
                // pins a realization that locks onto the true one.
                seed: 2,
                recovery: Some(RecoveryConfig {
                    alpha_slow: 0.001,
                    alpha_fast: 0.002,
                }),
                health: Some(HealthPolicy {
                    reinit_holdoff: 60,
                    ..HealthPolicy::default()
                }),
                ..SynPfConfig::default()
            },
        );
        pf.enable_recovery(&t.grid);
        let tel = raceloc_obs::Telemetry::enabled();
        pf.set_telemetry(tel.clone());
        let home = t.start_pose();
        pf.reset(home);
        let home_scan = scan_from(&t, home, pf.config().lidar_mount);
        // Converge and warm the likelihood EMAs past the detector warmup.
        for i in 0..30 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&stamped(&home_scan, i as f64 * 0.02));
        }
        assert_eq!(pf.health(), Health::Nominal);
        // Kidnap: scans now come from the other side of the track.
        let s = 0.5 * t.raceline.total_length();
        let p = t.raceline.point_at(s);
        let there = Pose2::new(p.x, p.y, t.raceline.heading_at(s));
        let there_scan = scan_from(&t, there, pf.config().lidar_mount);
        let mut est = pf.pose();
        let mut saw_non_nominal = false;
        for i in 30..280 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            est = pf.correct(&stamped(&there_scan, i as f64 * 0.02));
            saw_non_nominal |= pf.health() != Health::Nominal;
        }
        assert!(saw_non_nominal, "detectors never reacted to the kidnap");
        assert!(
            tel.snapshot().counter("pf.health.reinit").unwrap_or(0) >= 1,
            "Lost never triggered a global re-init"
        );
        assert_eq!(pf.health(), Health::Nominal, "did not settle after re-init");
        // Mode-level recovery bound: with zero odometry motion the
        // re-scattered cloud cannot slide along the corridor, so which
        // nearby along-track mode it locks onto is realization-dependent.
        // The vanilla-MCL control below stays > 1.0 away; landing well
        // inside that proves the re-init recovered the pose.
        assert!(
            est.dist(there) < 0.9,
            "did not recover from kidnapping: {est} vs {there}"
        );
    }

    #[test]
    fn blackout_coasts_and_degrades_then_recovers() {
        let t = track();
        let mut pf = health_pf(&t, 600);
        let home = t.start_pose();
        pf.reset(home);
        let home_scan = scan_from(&t, home, pf.config().lidar_mount);
        for i in 0..25 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&stamped(&home_scan, i as f64 * 0.02));
        }
        assert_eq!(pf.health(), Health::Nominal);
        // Total blackout: every beam invalid. The filter must hold its
        // estimate (no scoring) and degrade, not diverge or go non-finite.
        let mut blackout = LaserScan::new(
            home_scan.angle_min,
            home_scan.angle_increment,
            vec![f64::INFINITY; home_scan.len()],
            home_scan.max_range,
        );
        blackout.stamp = 24.0 * 0.02;
        let before = pf.pose();
        for _ in 0..5 {
            let est = pf.correct(&blackout);
            assert_eq!(est, before, "blackout correction must coast");
        }
        assert_eq!(pf.health(), Health::Degraded);
        // Scans return: the machine settles back to Nominal.
        for i in 25..33 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&stamped(&home_scan, i as f64 * 0.02));
        }
        assert_eq!(pf.health(), Health::Nominal);
    }

    #[test]
    fn stale_scan_is_rejected() {
        let t = track();
        let mut pf = health_pf(&t, 300);
        let home = t.start_pose();
        pf.reset(home);
        let mut scan = scan_from(&t, home, pf.config().lidar_mount);
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 1.0));
        scan.stamp = 0.0; // 1 s older than the odometry horizon.
        let before = pf.pose();
        let weights_before = pf.weights().to_vec();
        assert_eq!(pf.correct(&scan), before);
        assert_eq!(pf.weights(), &weights_before[..], "no scoring happened");
        // A fresh scan is accepted again.
        scan.stamp = 1.0;
        pf.correct(&scan);
        assert!(pf.diagnostics().stage("sensor").is_some());
    }

    #[test]
    fn health_disabled_is_inert() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 200,
                ..SynPfConfig::default()
            },
        );
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        for _ in 0..5 {
            pf.correct(&scan);
        }
        assert_eq!(pf.health(), Health::Nominal);
        assert!(pf.diagnostics().health.is_none());
        // Stale scans are not rejected without a policy either.
        let mut old = scan.clone();
        old.stamp = -10.0;
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.0));
        pf.predict(&Odometry::new(Pose2::IDENTITY, Twist2::ZERO, 0.02));
        pf.correct(&old);
        assert!(pf.diagnostics().stage("sensor").is_some());
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::RayMarching;

    fn track() -> Track {
        TrackSpec::new(TrackShape::RandomFourier {
            seed: 5,
            mean_radius: 5.0,
            amplitude: 0.2,
            harmonics: 3,
        })
        .resolution(0.1)
        .build()
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    #[test]
    fn recovery_recovers_from_kidnapping() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 1500,
                recovery: Some(RecoveryConfig {
                    alpha_slow: 0.01,
                    alpha_fast: 0.4,
                }),
                ..SynPfConfig::default()
            },
        );
        pf.enable_recovery(&t.grid);
        // Converge at the start pose first.
        let home = t.start_pose();
        pf.reset(home);
        let home_scan = scan_from(&t, home, pf.config().lidar_mount);
        for i in 0..12 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&home_scan);
        }
        assert!(pf.pose().dist(home) < 0.2);
        // Kidnap: scans now come from the other side of the track.
        let s = 0.5 * t.raceline.total_length();
        let p = t.raceline.point_at(s);
        let there = Pose2::new(p.x, p.y, t.raceline.heading_at(s));
        let there_scan = scan_from(&t, there, pf.config().lidar_mount);
        let mut est = pf.pose();
        for i in 12..160 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            est = pf.correct(&there_scan);
        }
        assert!(
            est.dist(there) < 0.6,
            "did not recover from kidnapping: {est} vs {there}"
        );
    }

    #[test]
    fn without_recovery_kidnapping_is_fatal() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 1500,
                ..SynPfConfig::default()
            },
        );
        let home = t.start_pose();
        pf.reset(home);
        let s = 0.5 * t.raceline.total_length();
        let p = t.raceline.point_at(s);
        let there = Pose2::new(p.x, p.y, t.raceline.heading_at(s));
        let there_scan = scan_from(&t, there, pf.config().lidar_mount);
        let mut est = pf.pose();
        for i in 0..100 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            est = pf.correct(&there_scan);
        }
        // The cloud cannot teleport: it stays lost near its old belief.
        assert!(
            est.dist(there) > 1.0,
            "vanilla MCL unexpectedly recovered: {est}"
        );
    }

    #[test]
    fn recovery_health_reports_collapse() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 400,
                recovery: Some(RecoveryConfig::default()),
                ..SynPfConfig::default()
            },
        );
        pf.enable_recovery(&t.grid);
        let home = t.start_pose();
        pf.reset(home);
        let home_scan = scan_from(&t, home, pf.config().lidar_mount);
        for _ in 0..10 {
            pf.correct(&home_scan);
        }
        let healthy = pf.recovery_health().expect("recovery enabled");
        assert!(healthy > 0.5, "healthy ratio {healthy}");
    }

    #[test]
    fn covariance_shrinks_on_convergence() {
        let t = track();
        let caster = RayMarching::new(&t.grid, 10.0);
        let mut pf = SynPf::new(
            caster,
            SynPfConfig {
                particles: 600,
                init_sigma_xy: 0.4,
                init_sigma_theta: 0.3,
                ..SynPfConfig::default()
            },
        );
        let home = t.start_pose();
        pf.reset(home);
        let (vx0, vy0, vt0) = pf.covariance();
        let home_scan = scan_from(&t, home, pf.config().lidar_mount);
        for _ in 0..8 {
            pf.correct(&home_scan);
        }
        let (vx1, vy1, vt1) = pf.covariance();
        assert!(vx1 < vx0 && vy1 < vy0, "({vx0},{vy0}) -> ({vx1},{vy1})");
        assert!(vt1 < vt0 + 1e-9);
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::kld::KldConfig;
    use raceloc_core::deadline::{DeadlineConfig, LADDER_LEN};
    use raceloc_core::Twist2;
    use raceloc_map::{Track, TrackShape, TrackSpec};
    use raceloc_range::RayMarching;

    fn track() -> Track {
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build()
    }

    fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = pose * mount;
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    }

    /// Full-step cost at the test shape: 512 + 600·(2 + 60·4) work units
    /// (600-particle KLD ceiling; the uniform layout below selects exactly
    /// 60 of the 181 test beams, unlike the boxed default whose
    /// perimeter-point dedup keeps fewer).
    const FULL: u64 = 145_712;

    fn deadline_pf(t: &Track, budget: u64, threads: usize) -> SynPf<RayMarching> {
        let caster = RayMarching::new(&t.grid, 10.0);
        SynPf::new(
            caster,
            SynPfConfig {
                particles: 600,
                threads,
                layout: ScanLayout::Uniform { count: 60 },
                kld: Some(KldConfig {
                    min_particles: 50,
                    max_particles: 600,
                    ..KldConfig::default()
                }),
                deadline: Some(DeadlineConfig {
                    budget_units: budget,
                    ..DeadlineConfig::default()
                }),
                ..SynPfConfig::default()
            },
        )
    }

    #[test]
    fn pressure_degrades_the_ladder_and_recovery_climbs_back() {
        let t = track();
        let mut pf = deadline_pf(&t, FULL + FULL / 2, 1);
        let tel = raceloc_obs::Telemetry::enabled();
        pf.set_telemetry(tel.clone());
        let pose = t.start_pose();
        pf.reset(pose);
        let scan = scan_from(&t, pose, pf.config().lidar_mount);
        let mut step = 0usize;
        let mut drive = |pf: &mut SynPf<RayMarching>, n: usize| {
            for _ in 0..n {
                pf.predict(&Odometry::new(
                    Pose2::IDENTITY,
                    Twist2::ZERO,
                    step as f64 * 0.02,
                ));
                pf.correct(&scan);
                step += 1;
            }
        };
        drive(&mut pf, 10);
        assert_eq!(pf.deadline().unwrap().rung(), 0, "uncontended budget");
        // A 50% pressure fault: the ladder must leave the top rung
        // immediately, without missing a deadline or coasting.
        pf.set_compute_pressure(0.5);
        drive(&mut pf, 15);
        let ctl = pf.deadline().unwrap();
        assert!(ctl.rung() > 0, "pressure must degrade the ladder");
        assert_eq!(ctl.misses(), 0);
        assert_eq!(ctl.coast_steps(), 0);
        // Pressure lifts: the debounced climb returns to the top rung.
        pf.set_compute_pressure(1.0);
        drive(&mut pf, 60);
        let ctl = pf.deadline().unwrap();
        assert_eq!(ctl.rung(), 0, "must recover to full compute");
        assert_eq!(ctl.misses(), 0);
        // Telemetry: occupancy recorded on the top rung and at least one
        // degraded rung.
        let snap = tel.snapshot();
        assert!(snap.counter("deadline.rung0").unwrap_or(0) > 0);
        let degraded: u64 = (1..LADDER_LEN)
            .map(|r| snap.counter(&format!("deadline.rung{r}")).unwrap_or(0))
            .sum();
        assert!(degraded > 0, "degraded rung occupancy recorded");
        assert!(snap.counter("pf.kld.n_target").is_some());
        assert!(snap.counter("deadline.miss").is_none(), "no misses booked");
    }

    #[test]
    fn starved_budget_coasts_bounded_then_corrects_over_budget() {
        let t = track();
        // Budget below the cheapest correcting rung (2 042 units at this
        // shape) but above the coast cost (512 units).
        let mut pf = deadline_pf(&t, 1_000, 1);
        let tel = raceloc_obs::Telemetry::enabled();
        pf.set_telemetry(tel.clone());
        let pose = t.start_pose();
        pf.reset(pose);
        let scan = scan_from(&t, pose, pf.config().lidar_mount);
        let coast_limit = pf.config().deadline.unwrap().coast_limit as u64;
        for _ in 0..coast_limit {
            let before = pf.pose();
            assert_eq!(pf.correct(&scan), before, "coasted step holds the pose");
        }
        let ctl = pf.deadline().unwrap();
        assert_eq!(ctl.coast_steps(), coast_limit);
        assert_eq!(ctl.misses(), 0);
        // Coast budget exhausted: the filter corrects over budget (a
        // booked miss) instead of dead-reckoning forever.
        for _ in 0..5 {
            pf.correct(&scan);
        }
        let ctl = pf.deadline().unwrap();
        assert_eq!(ctl.coast_steps(), coast_limit, "coast is bounded");
        assert!(ctl.misses() >= 5, "forced corrections book misses");
        let snap = tel.snapshot();
        assert_eq!(snap.counter("deadline.coast_steps"), Some(coast_limit));
        assert!(snap.counter("deadline.miss").unwrap_or(0) >= 5);
        assert!(snap.counter("deadline.rung5").unwrap_or(0) >= coast_limit);
    }

    #[test]
    fn rung_ceiling_clamps_the_kld_target() {
        let t = track();
        // 3 000 units admits only the cheapest correcting rung (15% of
        // the 600-particle ceiling = 90 particles).
        let mut pf = deadline_pf(&t, 3_000, 1);
        let pose = t.start_pose();
        pf.reset(pose);
        let scan = scan_from(&t, pose, pf.config().lidar_mount);
        for i in 0..12 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.02,
            ));
            pf.correct(&scan);
        }
        assert!(pf.deadline().unwrap().rung() >= LADDER_LEN - 2);
        assert!(
            pf.particles().len() <= 90,
            "rung ceiling not applied: {} particles",
            pf.particles().len()
        );
        assert_eq!(pf.weights().len(), pf.particles().len());
    }

    #[test]
    fn ladder_and_poses_are_thread_deterministic() {
        let t = track();
        let run = |threads: usize| {
            let mut pf = deadline_pf(&t, FULL + FULL / 2, threads);
            let pose = t.start_pose();
            pf.reset(pose);
            let scan = scan_from(&t, pose, pf.config().lidar_mount);
            let mut poses = Vec::new();
            for i in 0..40 {
                // A mid-run pressure window, as a fault schedule delivers it.
                pf.set_compute_pressure(if (10..25).contains(&i) { 0.5 } else { 1.0 });
                pf.predict(&Odometry::new(
                    Pose2::IDENTITY,
                    Twist2::ZERO,
                    i as f64 * 0.02,
                ));
                poses.push(pf.correct(&scan).to_array());
            }
            let ctl = pf.deadline().unwrap();
            (poses, *ctl.rung_steps(), ctl.misses(), ctl.coast_steps())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn clone_carries_the_controller_state() {
        let t = track();
        let mut pf = deadline_pf(&t, FULL + FULL / 2, 1);
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        pf.set_compute_pressure(0.5);
        for _ in 0..3 {
            pf.correct(&scan);
        }
        let cloned = pf.clone();
        assert_eq!(
            cloned.deadline().unwrap().rung_steps(),
            pf.deadline().unwrap().rung_steps()
        );
        // Reset returns the controller to the top rung.
        pf.reset(t.start_pose());
        assert_eq!(pf.deadline().unwrap().rung(), 0);
        assert_eq!(pf.deadline().unwrap().rung_steps(), &[0; LADDER_LEN]);
    }
}
