#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **SynPF** — the Monte-Carlo localization algorithm for high-speed
//! autonomous racing introduced by *"Robustness Evaluation of Localization
//! Techniques for Autonomous Racing"* (DATE 2024).
//!
//! SynPF synthesizes prior particle-filtering work for the racing domain:
//!
//! - the **TUM high-speed motion model** ([`TumMotionModel`]) whose heading
//!   dispersion shrinks with speed, against the textbook
//!   [`DiffDriveModel`] baseline (the paper's Fig. 1);
//! - the **boxed LiDAR scanline layout** ([`ScanLayout::Boxed`]) that
//!   concentrates the beam budget down-track (paper §II);
//! - a **discretized beam sensor model** ([`BeamSensorModel`]) evaluated
//!   over `rangelibc`-style accelerated range queries (the `raceloc-range`
//!   crate), giving the ~1 ms CPU-only sensor update the paper reports;
//! - **low-variance resampling** gated on the effective sample size
//!   ([`resample`]).
//!
//! The filter ([`SynPf`]) implements
//! [`raceloc_core::localizer::Localizer`], so it plugs directly into the
//! `raceloc-sim` closed loop used to regenerate the paper's Table I.
//!
//! # Examples
//!
//! ```
//! use raceloc_map::{TrackShape, TrackSpec};
//! use raceloc_pf::{SynPf, SynPfConfig};
//! use raceloc_range::RangeLut;
//! use raceloc_core::localizer::Localizer;
//!
//! // Paper configuration: LUT range queries on a CPU.
//! let track = TrackSpec::new(TrackShape::Oval { width: 10.0, height: 6.0 })
//!     .resolution(0.15)
//!     .build();
//! let lut = RangeLut::new(&track.grid, 10.0, 60);
//! let config = SynPfConfig::builder().particles(300).build().expect("valid config");
//! let mut pf = SynPf::new(lut, config);
//! pf.reset(track.start_pose());
//! assert_eq!(pf.name(), "synpf");
//! ```

mod compat;
pub mod config;
pub mod filter;
pub mod health;
pub mod kld;
pub mod layout;
pub mod motion;
mod parstep;
pub mod resample;
pub mod sensor;
pub mod store;

pub use config::{ConfigError, RecoveryConfigBuilder, SynPfConfigBuilder};
pub use filter::{MotionConfig, RecoveryConfig, SynPf, SynPfConfig};
pub use health::HealthPolicy;
pub use kld::KldConfig;
pub use layout::ScanLayout;
pub use motion::{CloudDispersion, DiffDriveModel, MotionModel, TumMotionModel};
pub use sensor::{BeamModelConfig, BeamSensorModel};
pub use store::ParticleStore;
