//! Validating builders for the filter configurations.
//!
//! `SynPfConfig { particles: 0, .. }` compiles and only explodes when the
//! filter is constructed (or worse, silently misbehaves: a NaN noise term
//! poisons every particle weight without panicking). The builders move
//! those checks to configuration time:
//!
//! ```
//! use raceloc_pf::SynPfConfig;
//!
//! let config = SynPfConfig::builder()
//!     .particles(500)
//!     .threads(2)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(config.particles, 500);
//! assert!(SynPfConfig::builder().particles(0).build().is_err());
//! ```
//!
//! The plain structs stay public with `Default` impls, so struct-literal
//! construction keeps working; [`SynPfConfig::validated`] applies the same
//! checks to a hand-built value.

use std::fmt;

use crate::filter::{MotionConfig, RecoveryConfig, SynPfConfig};

/// A rejected configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, dotted-path style (e.g. `"kld.min_particles"`).
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

fn err(field: &'static str, reason: &'static str) -> ConfigError {
    ConfigError { field, reason }
}

/// `v` must be a finite, strictly positive number.
fn check_positive(field: &'static str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() {
        Err(err(field, "must be finite"))
    } else if v <= 0.0 {
        Err(err(field, "must be positive"))
    } else {
        Ok(())
    }
}

/// `v` must be finite and non-negative (σ-style noise term; NaN rejected).
fn check_noise(field: &'static str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() {
        Err(err(field, "must be a finite noise term"))
    } else if v < 0.0 {
        Err(err(field, "must be non-negative"))
    } else {
        Ok(())
    }
}

impl RecoveryConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> RecoveryConfigBuilder {
        RecoveryConfigBuilder(Self::default())
    }

    /// Validates a hand-built value (what [`RecoveryConfigBuilder::build`]
    /// calls): both EMA rates must be finite, in `(0, 1]`, and satisfy
    /// `alpha_slow < alpha_fast` — the augmented-MCL premise is that the
    /// short-term average reacts faster than the long-term one.
    pub fn validated(self) -> Result<Self, ConfigError> {
        check_positive("recovery.alpha_slow", self.alpha_slow)?;
        check_positive("recovery.alpha_fast", self.alpha_fast)?;
        if self.alpha_slow > 1.0 {
            return Err(err("recovery.alpha_slow", "must be at most 1"));
        }
        if self.alpha_fast > 1.0 {
            return Err(err("recovery.alpha_fast", "must be at most 1"));
        }
        if self.alpha_slow >= self.alpha_fast {
            return Err(err(
                "recovery.alpha_slow",
                "must be smaller than alpha_fast",
            ));
        }
        Ok(self)
    }
}

/// Builder for [`RecoveryConfig`]; see [`RecoveryConfig::builder`].
#[derive(Debug, Clone)]
pub struct RecoveryConfigBuilder(RecoveryConfig);

impl RecoveryConfigBuilder {
    /// Long-term likelihood EMA rate. Must be *strictly* smaller than
    /// [`alpha_fast`](Self::alpha_fast): equal rates make the injection
    /// probability `1 - w_fast/w_slow` identically zero, silently disabling
    /// recovery, so [`build`](Self::build) rejects `alpha_slow ==
    /// alpha_fast` as well as the inverted ordering.
    pub fn alpha_slow(mut self, v: f64) -> Self {
        self.0.alpha_slow = v;
        self
    }

    /// Short-term likelihood EMA rate. Must be *strictly* greater than
    /// [`alpha_slow`](Self::alpha_slow); see there for why the boundary
    /// `alpha_slow == alpha_fast` is rejected too.
    pub fn alpha_fast(mut self, v: f64) -> Self {
        self.0.alpha_fast = v;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<RecoveryConfig, ConfigError> {
        self.0.validated()
    }
}

impl crate::kld::KldConfig {
    /// Validates a hand-built value: positive, non-inverted particle
    /// bounds; strictly positive `epsilon` and bin sizes; finite
    /// `z_quantile`. An inconsistent KLD config otherwise silently
    /// misbehaves (e.g. `min_particles > max_particles` makes the clamp
    /// in `required_particles` collapse every adaptation to the minimum).
    pub fn validated(self) -> Result<Self, ConfigError> {
        if self.min_particles == 0 {
            return Err(err("kld.min_particles", "must be positive"));
        }
        if self.min_particles > self.max_particles {
            return Err(err(
                "kld.min_particles",
                "must not exceed kld.max_particles",
            ));
        }
        check_positive("kld.epsilon", self.epsilon)?;
        check_positive("kld.bin_xy", self.bin_xy)?;
        check_positive("kld.bin_theta", self.bin_theta)?;
        if !self.z_quantile.is_finite() {
            return Err(err("kld.z_quantile", "must be finite"));
        }
        Ok(self)
    }
}

impl SynPfConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> SynPfConfigBuilder {
        SynPfConfigBuilder(Self::default())
    }

    /// Validates a hand-built value (what [`SynPfConfigBuilder::build`]
    /// calls). Rejects non-positive particle counts, NaN noise terms,
    /// inverted KLD bounds, zero threads, and out-of-range fractions.
    pub fn validated(self) -> Result<Self, ConfigError> {
        if self.particles == 0 {
            return Err(err("particles", "must be positive"));
        }
        check_positive("squash", self.squash)?;
        if !self.resample_ess_frac.is_finite() || !(0.0..=1.0).contains(&self.resample_ess_frac) {
            return Err(err("resample_ess_frac", "must be within [0, 1]"));
        }
        check_noise("init_sigma_xy", self.init_sigma_xy)?;
        check_noise("init_sigma_theta", self.init_sigma_theta)?;
        if !(self.lidar_mount.x.is_finite()
            && self.lidar_mount.y.is_finite()
            && self.lidar_mount.theta.is_finite())
        {
            return Err(err("lidar_mount", "must be finite"));
        }
        if self.threads == 0 {
            return Err(err("threads", "must be at least 1"));
        }
        if self.chunk_min == 0 {
            return Err(err("chunk_min", "must be at least 1"));
        }
        match self.motion {
            MotionConfig::DiffDrive(m) => {
                check_noise("motion.alpha1", m.alpha1)?;
                check_noise("motion.alpha2", m.alpha2)?;
                check_noise("motion.alpha3", m.alpha3)?;
                check_noise("motion.alpha4", m.alpha4)?;
            }
            MotionConfig::Tum(m) => {
                check_noise("motion.sigma_v_rel", m.sigma_v_rel)?;
                check_noise("motion.sigma_v_abs", m.sigma_v_abs)?;
                check_noise("motion.sigma_omega_0", m.sigma_omega_0)?;
                check_noise("motion.sigma_pos", m.sigma_pos)?;
                check_positive("motion.v_char", m.v_char)?;
                check_positive("motion.a_lat_max", m.a_lat_max)?;
            }
        }
        if let Some(kld) = self.kld {
            kld.validated()?;
        }
        if let Some(rec) = self.recovery {
            rec.validated()?;
        }
        if let Some(health) = self.health {
            health.validated()?;
        }
        if let Some(deadline) = self.deadline {
            deadline.validated().map_err(|e| {
                err(
                    // The error paths below are config field names, not
                    // telemetry counters — they only share the prefix.
                    match e.field {
                        // analyze:allow(R8, reason = "config-error field path, not a telemetry counter")
                        "upgrade_streak" => "deadline.upgrade_streak",
                        // analyze:allow(R8, reason = "config-error field path, not a telemetry counter")
                        "headroom_pct" => "deadline.headroom_pct",
                        // analyze:allow(R8, reason = "config-error field path, not a telemetry counter")
                        _ => "deadline.cost.per_particle_units",
                    },
                    e.reason,
                )
            })?;
        }
        Ok(self)
    }
}

/// Builder for [`SynPfConfig`]; see [`SynPfConfig::builder`].
#[derive(Debug, Clone)]
pub struct SynPfConfigBuilder(SynPfConfig);

impl SynPfConfigBuilder {
    /// Number of particles (initial count under KLD adaptation).
    pub fn particles(mut self, v: usize) -> Self {
        self.0.particles = v;
        self
    }

    /// Beam subsampling layout.
    pub fn layout(mut self, v: crate::layout::ScanLayout) -> Self {
        self.0.layout = v;
        self
    }

    /// Beam sensor-model parameters.
    pub fn beam_model(mut self, v: crate::sensor::BeamModelConfig) -> Self {
        self.0.beam_model = v;
        self
    }

    /// Log-likelihood squash divisor.
    pub fn squash(mut self, v: f64) -> Self {
        self.0.squash = v;
        self
    }

    /// Resampling threshold as an ESS fraction of the particle count.
    pub fn resample_ess_frac(mut self, v: f64) -> Self {
        self.0.resample_ess_frac = v;
        self
    }

    /// σ of the initial position spread around a reset pose \[m\].
    pub fn init_sigma_xy(mut self, v: f64) -> Self {
        self.0.init_sigma_xy = v;
        self
    }

    /// σ of the initial heading spread around a reset pose \[rad\].
    pub fn init_sigma_theta(mut self, v: f64) -> Self {
        self.0.init_sigma_theta = v;
        self
    }

    /// LiDAR pose in the vehicle body frame.
    pub fn lidar_mount(mut self, v: raceloc_core::Pose2) -> Self {
        self.0.lidar_mount = v;
        self
    }

    /// The motion model.
    pub fn motion(mut self, v: MotionConfig) -> Self {
        self.0.motion = v;
        self
    }

    /// Worker threads for the particle pipeline.
    pub fn threads(mut self, v: usize) -> Self {
        self.0.threads = v;
        self
    }

    /// Minimum particles per pipeline chunk (DESIGN.md §11).
    pub fn chunk_min(mut self, v: usize) -> Self {
        self.0.chunk_min = v;
        self
    }

    /// Enables KLD-adaptive particle counts.
    pub fn kld(mut self, v: crate::kld::KldConfig) -> Self {
        self.0.kld = Some(v);
        self
    }

    /// Enables augmented-MCL recovery.
    pub fn recovery(mut self, v: RecoveryConfig) -> Self {
        self.0.recovery = Some(v);
        self
    }

    /// Enables health monitoring (divergence detectors + degraded-mode
    /// state machine, DESIGN.md §12).
    pub fn health(mut self, v: crate::health::HealthPolicy) -> Self {
        self.0.health = Some(v);
        self
    }

    /// Enables deadline-aware adaptive compute (degradation ladder,
    /// DESIGN.md §14).
    pub fn deadline(mut self, v: raceloc_core::DeadlineConfig) -> Self {
        self.0.deadline = Some(v);
        self
    }

    /// PRNG seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.0.seed = v;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SynPfConfig, ConfigError> {
        self.0.validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kld::KldConfig;
    use crate::motion::{DiffDriveModel, TumMotionModel};

    #[test]
    fn default_config_validates() {
        assert!(SynPfConfig::builder().build().is_ok());
        assert!(SynPfConfig::default().validated().is_ok());
        assert!(RecoveryConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let c = SynPfConfig::builder()
            .particles(321)
            .threads(3)
            .squash(8.0)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(c.particles, 321);
        assert_eq!(c.threads, 3);
        assert_eq!(c.squash, 8.0);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn zero_particles_rejected() {
        let e = SynPfConfig::builder().particles(0).build().unwrap_err();
        assert_eq!(e.field, "particles");
    }

    #[test]
    fn nan_noise_rejected() {
        let e = SynPfConfig::builder()
            .init_sigma_xy(f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(e.field, "init_sigma_xy");

        let e = SynPfConfig::builder()
            .motion(MotionConfig::Tum(TumMotionModel {
                sigma_v_rel: f64::NAN,
                ..TumMotionModel::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(e.field, "motion.sigma_v_rel");

        let e = SynPfConfig::builder()
            .motion(MotionConfig::DiffDrive(DiffDriveModel {
                alpha3: f64::NAN,
                ..DiffDriveModel::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(e.field, "motion.alpha3");
    }

    #[test]
    fn inverted_kld_bounds_rejected() {
        let e = SynPfConfig::builder()
            .kld(KldConfig {
                min_particles: 5000,
                max_particles: 100,
                ..KldConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(e.field, "kld.min_particles");
    }

    #[test]
    fn degenerate_kld_values_rejected() {
        // Standalone validation (usable without a SynPfConfig)…
        assert!(KldConfig::default().validated().is_ok());
        let zero_min = KldConfig {
            min_particles: 0,
            ..KldConfig::default()
        };
        assert_eq!(zero_min.validated().unwrap_err().field, "kld.min_particles");
        // …and the same checks through the builder, per offending field.
        for (kld, field) in [
            (
                KldConfig {
                    epsilon: 0.0,
                    ..KldConfig::default()
                },
                "kld.epsilon",
            ),
            (
                KldConfig {
                    epsilon: f64::NAN,
                    ..KldConfig::default()
                },
                "kld.epsilon",
            ),
            (
                KldConfig {
                    bin_xy: -0.25,
                    ..KldConfig::default()
                },
                "kld.bin_xy",
            ),
            (
                KldConfig {
                    bin_theta: 0.0,
                    ..KldConfig::default()
                },
                "kld.bin_theta",
            ),
            (
                KldConfig {
                    z_quantile: f64::INFINITY,
                    ..KldConfig::default()
                },
                "kld.z_quantile",
            ),
        ] {
            let e = SynPfConfig::builder().kld(kld).build().unwrap_err();
            assert_eq!(e.field, field);
        }
    }

    #[test]
    fn deadline_config_validated_when_nested() {
        let bad = raceloc_core::DeadlineConfig {
            upgrade_streak: 0,
            ..raceloc_core::DeadlineConfig::default()
        };
        let e = SynPfConfig::builder().deadline(bad).build().unwrap_err();
        assert_eq!(e.field, "deadline.upgrade_streak");
        let bad = raceloc_core::DeadlineConfig {
            headroom_pct: 200,
            ..raceloc_core::DeadlineConfig::default()
        };
        let e = SynPfConfig::builder().deadline(bad).build().unwrap_err();
        assert_eq!(e.field, "deadline.headroom_pct");
        assert!(SynPfConfig::builder()
            .deadline(raceloc_core::DeadlineConfig::default())
            .build()
            .is_ok());
    }

    #[test]
    fn nonpositive_squash_and_threads_rejected() {
        assert_eq!(
            SynPfConfig::builder()
                .squash(0.0)
                .build()
                .unwrap_err()
                .field,
            "squash"
        );
        assert_eq!(
            SynPfConfig::builder().threads(0).build().unwrap_err().field,
            "threads"
        );
        assert_eq!(
            SynPfConfig::builder()
                .chunk_min(0)
                .build()
                .unwrap_err()
                .field,
            "chunk_min"
        );
        assert!(SynPfConfig::builder()
            .chunk_min(32)
            .threads(4)
            .build()
            .is_ok());
    }

    #[test]
    fn ess_fraction_range_enforced() {
        assert!(SynPfConfig::builder()
            .resample_ess_frac(1.5)
            .build()
            .is_err());
        assert!(SynPfConfig::builder()
            .resample_ess_frac(f64::NAN)
            .build()
            .is_err());
        assert!(SynPfConfig::builder()
            .resample_ess_frac(0.0)
            .build()
            .is_ok());
    }

    #[test]
    fn recovery_rates_must_be_ordered() {
        let e = RecoveryConfig::builder()
            .alpha_slow(0.5)
            .alpha_fast(0.1)
            .build()
            .unwrap_err();
        assert_eq!(e.field, "recovery.alpha_slow");
        assert!(RecoveryConfig::builder()
            .alpha_fast(f64::NAN)
            .build()
            .is_err());
        assert!(RecoveryConfig::builder().alpha_fast(1.5).build().is_err());
        // Also enforced when nested in a SynPfConfig.
        let nested = SynPfConfig::builder()
            .recovery(RecoveryConfig {
                alpha_slow: 0.9,
                alpha_fast: 0.1,
            })
            .build();
        assert!(nested.is_err());
    }

    #[test]
    fn equal_recovery_rates_rejected() {
        // Regression for the alpha_slow == alpha_fast boundary: equal rates
        // make the injection probability identically zero (recovery
        // silently disabled), so the strict ordering documented on the
        // builder is enforced at the boundary too.
        let e = RecoveryConfig::builder()
            .alpha_slow(0.2)
            .alpha_fast(0.2)
            .build()
            .unwrap_err();
        assert_eq!(e.field, "recovery.alpha_slow");
        assert_eq!(e.reason, "must be smaller than alpha_fast");
        let nested = SynPfConfig::builder()
            .recovery(RecoveryConfig {
                alpha_slow: 0.2,
                alpha_fast: 0.2,
            })
            .build();
        assert!(nested.is_err());
    }

    #[test]
    fn health_policy_validated_when_nested() {
        let bad = crate::health::HealthPolicy {
            ema_alpha: 0.0,
            ..crate::health::HealthPolicy::default()
        };
        let e = SynPfConfig::builder().health(bad).build().unwrap_err();
        assert_eq!(e.field, "health.ema_alpha");
        assert!(SynPfConfig::builder()
            .health(crate::health::HealthPolicy::default())
            .build()
            .is_ok());
    }

    #[test]
    fn error_display_names_field() {
        let e = SynPfConfig::builder().particles(0).build().unwrap_err();
        let text = e.to_string();
        assert!(text.contains("particles"), "{text}");
    }
}
