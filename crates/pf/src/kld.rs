//! KLD-adaptive particle counts (Fox 2003, as used by AMCL).
//!
//! After resampling, the number of particles actually needed depends on how
//! spread the posterior is: a converged filter tracking a racing car needs
//! far fewer particles than one recovering from a slip event. KLD sampling
//! bounds the approximation error of the sampled posterior against the true
//! one: with `k` occupied histogram bins, the required sample count is
//!
//! ```text
//! n = (k-1)/(2ε) · ( 1 − 2/(9(k−1)) + sqrt(2/(9(k−1))) · z )³
//! ```
//!
//! where `ε` is the maximum KL divergence and `z` the upper quantile of the
//! standard normal for the confidence level.

use raceloc_core::Pose2;
use std::collections::BTreeSet;

/// Configuration of KLD-adaptive sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KldConfig {
    /// Maximum allowed KL divergence ε between the sample-based and true
    /// posterior.
    pub epsilon: f64,
    /// Upper standard-normal quantile for the confidence level
    /// (1.645 ≈ 95 %, 2.326 ≈ 99 %).
    pub z_quantile: f64,
    /// Histogram bin size in x/y \[m\].
    pub bin_xy: f64,
    /// Histogram bin size in heading \[rad\].
    pub bin_theta: f64,
    /// Hard lower bound on the particle count.
    pub min_particles: usize,
    /// Hard upper bound on the particle count.
    pub max_particles: usize,
}

impl Default for KldConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.02,
            z_quantile: 2.326,
            bin_xy: 0.25,
            bin_theta: 10.0f64.to_radians(),
            min_particles: 300,
            max_particles: 5000,
        }
    }
}

impl KldConfig {
    /// The KLD sample bound for `k` occupied histogram bins.
    ///
    /// # Examples
    ///
    /// ```
    /// use raceloc_pf::kld::KldConfig;
    ///
    /// let cfg = KldConfig::default();
    /// // A tightly converged cloud needs the minimum…
    /// assert_eq!(cfg.required_particles(1), cfg.min_particles);
    /// // …a dispersed one needs more.
    /// assert!(cfg.required_particles(200) > cfg.required_particles(20));
    /// ```
    pub fn required_particles(&self, occupied_bins: usize) -> usize {
        if occupied_bins <= 1 {
            return self.min_particles;
        }
        let k = occupied_bins as f64;
        let a = 2.0 / (9.0 * (k - 1.0));
        let b = 1.0 - a + a.sqrt() * self.z_quantile;
        let n = (k - 1.0) / (2.0 * self.epsilon) * b * b * b;
        (n.ceil() as usize).clamp(self.min_particles, self.max_particles)
    }

    /// Counts the occupied histogram bins of a particle cloud, given as
    /// any pose iterator (e.g. a `&[Pose2]` via `.iter().copied()`, or a
    /// [`crate::ParticleStore`]'s `iter()` without materializing poses).
    pub fn occupied_bins<I>(&self, particles: I) -> usize
    where
        I: IntoIterator<Item = Pose2>,
    {
        // BTreeSet rather than HashSet: only `len()` is observed, but the
        // determinism rule (R3) keeps randomized-layout containers out of
        // the localization crates wholesale.
        let mut bins: BTreeSet<(i64, i64, i64)> = BTreeSet::new();
        for p in particles {
            bins.insert((
                (p.x / self.bin_xy).floor() as i64,
                (p.y / self.bin_xy).floor() as i64,
                (p.theta / self.bin_theta).floor() as i64,
            ));
        }
        bins.len()
    }

    /// The adaptive particle count for the given cloud: the KLD bound for
    /// its current histogram occupancy.
    pub fn adapt<I>(&self, particles: I) -> usize
    where
        I: IntoIterator<Item = Pose2>,
    {
        self.required_particles(self.occupied_bins(particles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_core::Rng64;

    fn spread_cloud(n: usize, sigma: f64, seed: u64) -> Vec<Pose2> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                Pose2::new(
                    rng.gaussian_with(0.0, sigma),
                    rng.gaussian_with(0.0, sigma),
                    rng.gaussian_with(0.0, sigma),
                )
            })
            .collect()
    }

    #[test]
    fn bound_grows_with_bins() {
        let cfg = KldConfig::default();
        let mut last = 0;
        for k in [2, 10, 50, 200, 1000] {
            let n = cfg.required_particles(k);
            assert!(n >= last, "k={k}");
            last = n;
        }
    }

    #[test]
    fn bound_respects_clamps() {
        let cfg = KldConfig::default();
        assert_eq!(cfg.required_particles(0), cfg.min_particles);
        assert_eq!(cfg.required_particles(1), cfg.min_particles);
        assert_eq!(cfg.required_particles(100_000), cfg.max_particles);
    }

    #[test]
    fn known_value_matches_formula() {
        // Hand-computed for k=100, ε=0.02, z=2.326.
        let cfg = KldConfig {
            epsilon: 0.02,
            z_quantile: 2.326,
            min_particles: 1,
            max_particles: 1_000_000,
            ..KldConfig::default()
        };
        let k = 100.0f64;
        let a = 2.0 / (9.0 * (k - 1.0));
        let expect = ((k - 1.0) / 0.04 * (1.0 - a + a.sqrt() * 2.326).powi(3)).ceil() as usize;
        assert_eq!(cfg.required_particles(100), expect);
    }

    #[test]
    fn concentrated_cloud_occupies_few_bins() {
        let cfg = KldConfig::default();
        let tight = spread_cloud(1000, 0.01, 1);
        let wide = spread_cloud(1000, 2.0, 2);
        assert!(cfg.occupied_bins(tight.iter().copied()) < 10);
        assert!(cfg.occupied_bins(wide.iter().copied()) > 100);
        assert!(cfg.adapt(tight.iter().copied()) < cfg.adapt(wide.iter().copied()));
    }

    #[test]
    fn adapt_of_empty_cloud_is_minimum() {
        let cfg = KldConfig::default();
        assert_eq!(cfg.adapt(std::iter::empty()), cfg.min_particles);
    }
}
