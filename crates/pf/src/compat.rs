//! Deprecated owning-map constructors, quarantined pending removal.
//!
//! The shared-artifact API (`SynPf::from_artifacts` over an
//! [`raceloc_range::ArtifactStore`]) replaced the pattern where every
//! filter privately built its own range LUT. The shim below keeps old
//! call sites compiling for one release; `raceloc-analyze` rule **R6**
//! denies the token outside `compat.rs` files, so no *new* uses can land
//! (the same gone-for-good ratchet that retired `cast_batch` under R5).

use crate::filter::{SynPf, SynPfConfig};
use raceloc_map::OccupancyGrid;
use raceloc_range::CompressedRangeLut;

impl SynPf<CompressedRangeLut> {
    /// Builds a filter that privately owns a freshly built range LUT for
    /// `grid` (10 m clamp, 72 heading bins — the old hard-coded literals).
    ///
    /// # Panics
    ///
    /// Panics when `config.particles == 0`, `config.squash <= 0`, or
    /// `config.chunk_min == 0`.
    #[deprecated(
        since = "0.6.0",
        note = "builds one private LUT per filter; share a bundle via \
                ArtifactStore::get_or_build + SynPf::from_artifacts instead"
    )]
    pub fn with_owned_map(grid: &OccupancyGrid, config: SynPfConfig) -> Self {
        Self::new(CompressedRangeLut::new(grid, 10.0, 72), config)
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use raceloc_core::Point2;
    use raceloc_map::CellState;
    use raceloc_range::{ArtifactParams, ArtifactStore, RangeMethod};
    use std::sync::Arc;

    fn small_room() -> OccupancyGrid {
        let n = 40;
        let mut g = OccupancyGrid::new(n, n, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..n as i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, n as i64 - 1).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        g
    }

    #[test]
    fn shim_matches_the_artifact_constructor_bitwise() {
        use raceloc_core::localizer::Localizer;
        use raceloc_core::sensor_data::{LaserScan, Odometry};
        use raceloc_core::{Pose2, Twist2};

        let grid = small_room();
        let config = SynPfConfig {
            particles: 48,
            ..SynPfConfig::default()
        };
        let mut old = SynPf::with_owned_map(&grid, config.clone());
        let store = ArtifactStore::new();
        let artifacts = store.get_or_build(&grid, ArtifactParams::default());
        let mut new = SynPf::from_artifacts(Arc::clone(&artifacts), config);
        assert_eq!(new.artifacts().max_range(), 10.0);

        // Same map, same LUT parameters, same seed → bit-identical steps.
        let start = Pose2::new(2.0, 2.0, 0.0);
        old.reset(start);
        new.reset(start);
        let caster = artifacts.lut();
        for step in 0..3 {
            let stamp = step as f64 * 0.1;
            let pose = Pose2::new(2.0 + stamp, 2.0, 0.0);
            let odom = Odometry::new(pose, Twist2::new(1.0, 0.0, 0.0), stamp);
            old.predict(&odom);
            new.predict(&odom);
            let n = 30;
            let ranges: Vec<f64> = (0..n)
                .map(|i| {
                    let theta = -1.5 + 3.0 * i as f64 / (n - 1) as f64;
                    caster.range(pose.x, pose.y, pose.theta + theta)
                })
                .collect();
            let scan = LaserScan::new(-1.5, 3.0 / (n - 1) as f64, ranges, 10.0);
            assert_eq!(old.correct(&scan), new.correct(&scan), "step {step}");
        }
    }
}
