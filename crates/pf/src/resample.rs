//! Weight normalization and low-variance (systematic) resampling.

use raceloc_core::Rng64;

/// Normalizes a weight vector in place to sum to 1.
///
/// Returns `false` (and resets to uniform) when the weights are degenerate:
/// all zero, or containing non-finite or negative values — the standard MCL
/// recovery from a total measurement mismatch. Elements are validated
/// individually, not just through the sum: `[-1.0, 2.0]` sums to a
/// perfectly reasonable 1.0 but is no distribution.
pub fn normalize(weights: &mut [f64]) -> bool {
    if weights.is_empty() {
        return false;
    }
    let mut sum = 0.0;
    for &w in weights.iter() {
        if !w.is_finite() || w < 0.0 {
            sum = f64::NAN;
            break;
        }
        sum += w;
    }
    if sum.is_nan() || sum <= 0.0 || !sum.is_finite() {
        let u = 1.0 / weights.len() as f64;
        weights.fill(u);
        return false;
    }
    for w in weights.iter_mut() {
        *w /= sum;
    }
    true
}

/// Effective sample size `1 / Σ wᵢ²` of a *normalized* weight vector.
///
/// Ranges from 1 (all mass on one particle) to `n` (uniform).
///
/// # Examples
///
/// ```
/// use raceloc_pf::resample::effective_sample_size;
///
/// assert!((effective_sample_size(&[0.25; 4]) - 4.0).abs() < 1e-12);
/// assert!((effective_sample_size(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let s: f64 = weights.iter().map(|w| w * w).sum();
    if s <= 0.0 {
        0.0
    } else {
        1.0 / s
    }
}

/// Systematic (low-variance) resampling: returns `count` source indices
/// drawn with a single random offset, preserving particle diversity better
/// than multinomial sampling.
///
/// The input weights must be normalized. Returns an empty vector for empty
/// input. Allocates; the hot path uses [`systematic_indices_into`].
pub fn systematic_indices(weights: &[f64], count: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut indices = Vec::new();
    systematic_indices_into(weights, count, rng, &mut indices);
    indices
}

/// Allocation-free [`systematic_indices`]: writes the `count` source
/// indices into `out` (cleared first), reusing its capacity.
///
/// Draw-for-draw identical to [`systematic_indices`] — both consume one
/// uniform variate, and none on empty input — so swapping one for the
/// other never perturbs the filter's RNG stream.
pub fn systematic_indices_into(
    weights: &[f64],
    count: usize,
    rng: &mut Rng64,
    out: &mut Vec<usize>,
) {
    out.clear();
    if weights.is_empty() || count == 0 {
        return;
    }
    let step = 1.0 / count as f64;
    let mut target = rng.uniform() * step;
    out.reserve(count);
    let mut cum = weights[0];
    let mut i = 0usize;
    for _ in 0..count {
        while cum < target && i + 1 < weights.len() {
            i += 1;
            cum += weights[i];
        }
        out.push(i);
        target += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_happy_path() {
        let mut w = vec![2.0, 6.0];
        assert!(normalize(&mut w));
        assert_eq!(w, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_degenerate_resets_uniform() {
        let mut w = vec![0.0, 0.0, 0.0, 0.0];
        assert!(!normalize(&mut w));
        assert_eq!(w, vec![0.25; 4]);
        let mut w = vec![f64::NAN, 1.0];
        assert!(!normalize(&mut w));
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn normalize_empty() {
        let mut w: Vec<f64> = vec![];
        assert!(!normalize(&mut w));
    }

    #[test]
    fn ess_bounds() {
        let n = 64;
        let uniform = vec![1.0 / n as f64; n];
        assert!((effective_sample_size(&uniform) - n as f64).abs() < 1e-9);
        let mut peaked = vec![0.0; n];
        peaked[3] = 1.0;
        assert!((effective_sample_size(&peaked) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn systematic_counts_match_weights() {
        let mut rng = Rng64::new(7);
        let mut w = vec![1.0, 3.0, 6.0];
        normalize(&mut w);
        let n = 10_000;
        let idx = systematic_indices(&w, n, &mut rng);
        assert_eq!(idx.len(), n);
        let mut counts = [0usize; 3];
        for i in idx {
            counts[i] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn systematic_indices_are_sorted() {
        let mut rng = Rng64::new(9);
        let mut w = vec![0.3, 0.1, 0.2, 0.4];
        normalize(&mut w);
        let idx = systematic_indices(&w, 100, &mut rng);
        assert!(idx.windows(2).all(|p| p[0] <= p[1]));
        assert!(idx.iter().all(|&i| i < 4));
    }

    #[test]
    fn systematic_zero_weight_never_sampled() {
        let mut rng = Rng64::new(11);
        let w = vec![0.5, 0.0, 0.5];
        for _ in 0..50 {
            let idx = systematic_indices(&w, 64, &mut rng);
            assert!(!idx.contains(&1));
        }
    }

    #[test]
    fn systematic_empty_inputs() {
        let mut rng = Rng64::new(1);
        assert!(systematic_indices(&[], 10, &mut rng).is_empty());
        assert!(systematic_indices(&[1.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn systematic_is_deterministic_in_seed() {
        let w = vec![0.2, 0.3, 0.5];
        let a = systematic_indices(&w, 32, &mut Rng64::new(5));
        let b = systematic_indices(&w, 32, &mut Rng64::new(5));
        assert_eq!(a, b);
    }
}
