//! Divergence-detector policy for the SynPF health state machine
//! (DESIGN.md §12).
//!
//! When [`SynPfConfig::health`](crate::SynPfConfig::health) is set, every
//! correction is reduced to a [`raceloc_core::HealthSignal`] by three
//! detectors —
//!
//! - **likelihood z-score**: the per-step mean squashed log-likelihood is
//!   tracked with EMA mean/variance; a score far below its running mean
//!   means the scan no longer explains the cloud (kidnap, aliasing);
//! - **ESS collapse**: the pre-resample effective sample size dropping to
//!   a tiny fraction of the particle count means the weights have
//!   degenerated onto a handful of hypotheses;
//! - **covariance blow-up**: a large position-covariance trace means the
//!   cloud has dispersed and the point estimate should not be trusted
//!   (a Suspect vote only — a wide cloud with healthy likelihood is
//!   injection recovery in progress, not divergence); the augmented-MCL
//!   `w_fast/w_slow` ratio corroborates likelihood collapse —
//!
//! and debounced through a [`raceloc_core::HealthMonitor`]. On `Lost`, the
//! filter re-initializes globally over free space (when
//! [`SynPf::enable_recovery`](crate::SynPf::enable_recovery) supplied a
//! map) and reports `Recovering` until the detectors settle.

use raceloc_core::HealthConfig;

use crate::config::ConfigError;

/// Detector thresholds and degraded-mode behavior of the SynPF health
/// machine. `Default` is tuned for the paper's 40 Hz F1TENTH loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Streak thresholds of the underlying state machine.
    pub monitor: HealthConfig,
    /// Z-score below `-z_suspect` votes Suspect.
    pub z_suspect: f64,
    /// Z-score below `-z_lost` votes Diverged.
    pub z_lost: f64,
    /// Floor on the EMA likelihood σ used for the z-score, in squashed
    /// log-likelihood units: keeps noiseless scans from producing infinite
    /// z-scores out of numerically tiny variance.
    pub z_sigma_floor: f64,
    /// Pre-resample `ESS / particles` below this votes Suspect.
    pub ess_suspect_frac: f64,
    /// Position-covariance trace \[m²\] above this votes Suspect. The
    /// covariance detector never votes Diverged on its own: a dispersed
    /// cloud whose likelihood is healthy is augmented-MCL injection
    /// mid-recovery, and forcing Lost there would re-scatter a filter
    /// that is about to converge.
    pub cov_suspect_m2: f64,
    /// Detector-internal `fast / slow` likelihood ratio below this votes
    /// Diverged. The detector keeps its own EMA pair (rates below) so the
    /// vote works even when augmented-MCL injection is disabled or tuned
    /// aggressively enough to mask the collapse.
    pub ratio_lost: f64,
    /// Slow EMA rate of the detector's likelihood-ratio tracker.
    pub ratio_alpha_slow: f64,
    /// Fast EMA rate of the detector's likelihood-ratio tracker; must be
    /// strictly greater than [`ratio_alpha_slow`](Self::ratio_alpha_slow).
    pub ratio_alpha_fast: f64,
    /// EMA rate for the likelihood mean/variance tracker.
    pub ema_alpha: f64,
    /// Corrections before the detectors may vote (the EMAs must learn the
    /// nominal likelihood level first).
    pub warmup_steps: u32,
    /// Scans older than this relative to the latest odometry \[s\] are
    /// rejected (stale-input rejection) and the step coasts on
    /// dead-reckoning instead.
    pub max_scan_age: f64,
    /// Re-initialize globally over free space when Lost is entered
    /// (requires the recovery map from
    /// [`SynPf::enable_recovery`](crate::SynPf::enable_recovery)).
    pub auto_reinit: bool,
    /// Corrections after a re-init during which the detectors are muted:
    /// a freshly scattered cloud legitimately has a huge covariance.
    pub reinit_holdoff: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            monitor: HealthConfig::default(),
            z_suspect: 2.5,
            z_lost: 6.0,
            z_sigma_floor: 0.15,
            ess_suspect_frac: 0.02,
            cov_suspect_m2: 0.5,
            ratio_lost: 0.15,
            ratio_alpha_slow: 0.01,
            ratio_alpha_fast: 0.3,
            ema_alpha: 0.05,
            warmup_steps: 20,
            max_scan_age: 0.15,
            auto_reinit: true,
            reinit_holdoff: 30,
        }
    }
}

impl HealthPolicy {
    /// Validates the thresholds: z/covariance bounds must be finite,
    /// positive, and correctly ordered; `ema_alpha` in `(0, 1]`.
    pub fn validated(self) -> Result<Self, ConfigError> {
        let err = |field: &'static str, reason: &'static str| ConfigError { field, reason };
        let pos = |field: &'static str, v: f64| -> Result<(), ConfigError> {
            if !v.is_finite() {
                Err(err(field, "must be finite"))
            } else if v <= 0.0 {
                Err(err(field, "must be positive"))
            } else {
                Ok(())
            }
        };
        pos("health.z_suspect", self.z_suspect)?;
        pos("health.z_lost", self.z_lost)?;
        pos("health.z_sigma_floor", self.z_sigma_floor)?;
        pos("health.cov_suspect_m2", self.cov_suspect_m2)?;
        pos("health.ratio_lost", self.ratio_lost)?;
        pos("health.ratio_alpha_slow", self.ratio_alpha_slow)?;
        pos("health.ratio_alpha_fast", self.ratio_alpha_fast)?;
        pos("health.ema_alpha", self.ema_alpha)?;
        pos("health.max_scan_age", self.max_scan_age)?;
        if self.z_lost < self.z_suspect {
            return Err(err("health.z_lost", "must be at least z_suspect"));
        }
        if self.ema_alpha > 1.0 {
            return Err(err("health.ema_alpha", "must be at most 1"));
        }
        if self.ratio_alpha_fast > 1.0 {
            return Err(err("health.ratio_alpha_fast", "must be at most 1"));
        }
        if self.ratio_alpha_slow >= self.ratio_alpha_fast {
            return Err(err(
                "health.ratio_alpha_slow",
                "must be smaller than ratio_alpha_fast",
            ));
        }
        if !(0.0..=1.0).contains(&self.ess_suspect_frac) {
            return Err(err("health.ess_suspect_frac", "must be within [0, 1]"));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        assert!(HealthPolicy::default().validated().is_ok());
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let p = HealthPolicy {
            z_lost: 1.0,
            z_suspect: 2.0,
            ..HealthPolicy::default()
        };
        assert_eq!(p.validated().unwrap_err().field, "health.z_lost");
    }

    #[test]
    fn bad_scalars_rejected() {
        let p = HealthPolicy {
            ema_alpha: 0.0,
            ..HealthPolicy::default()
        };
        assert!(p.validated().is_err());
        let p = HealthPolicy {
            max_scan_age: f64::NAN,
            ..HealthPolicy::default()
        };
        assert!(p.validated().is_err());
        let p = HealthPolicy {
            ess_suspect_frac: 1.5,
            ..HealthPolicy::default()
        };
        assert!(p.validated().is_err());
        let p = HealthPolicy {
            ratio_alpha_slow: 0.3,
            ratio_alpha_fast: 0.3,
            ..HealthPolicy::default()
        };
        assert_eq!(p.validated().unwrap_err().field, "health.ratio_alpha_slow");
    }
}
