//! Chunked jobs for the fused parallel particle pipeline (DESIGN.md §11).
//!
//! [`SynPf`](crate::SynPf) splits its particle set into the deterministic
//! static chunk layout from [`raceloc_par::chunk`] and runs two kernels
//! over it, either inline (`threads = 1`, directly on per-chunk slices of
//! the filter's [`ParticleStore`] lanes) or as one [`StepJob`] per chunk on
//! a persistent [`raceloc_par::WorkerPool`]. Both paths call the *same*
//! free kernel functions on the same chunk spans with the same RNG
//! streams, so the filter trajectory is bitwise identical for any thread
//! count.
//!
//! - [`motion_kernel`]: propagates a chunk's pose lanes through the
//!   configured motion model using a *counter-derived* RNG stream
//!   ([`Rng64::stream`]) identified by `(epoch, chunk index)`. The stream
//!   is a pure function of the seed and those counters — never of which
//!   worker runs the chunk.
//! - [`cast_weight_kernel`]: the fused expected-range + weight kernel.
//!   For each particle it computes the sensor pose from the pose lanes
//!   (using the maintained `cos`/`sin` lanes — no transcendentals), asks
//!   the range oracle for the whole beam fan *as quantized expected-range
//!   bins* ([`RangeMethod::beam_bins_into`]), and sums the sensor model's
//!   u16 log-likelihood codes in a `u64` accumulator. Integer summation is
//!   exact and order-free, so the per-particle log-weight
//!   `(Σ codes) · qscale / squash` cannot depend on accumulation order —
//!   cross-thread bitwise identity holds by construction rather than by
//!   careful float ordering (DESIGN.md §11).

use std::sync::Arc;

use raceloc_core::{stream_keys, Pose2, Rng64, Twist2};
use raceloc_par::PoolJob;
use raceloc_range::RangeMethod;

use crate::filter::MotionConfig;
use crate::sensor::BeamSensorModel;
use crate::store::ParticleStore;

/// Immutable per-filter context shared with the pool workers: the range
/// oracle and the precomputed sensor table.
#[derive(Debug)]
pub(crate) struct PfShared<M> {
    /// The expected-range oracle.
    pub caster: M,
    /// The discretized beam sensor model.
    pub sensor: BeamSensorModel,
}

/// Propagates one chunk's pose lanes through the motion model, drawing
/// from `rng` in the scalar model's exact per-particle order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn motion_kernel(
    motion: &MotionConfig,
    delta: Pose2,
    twist: Twist2,
    dt: f64,
    rng: &mut Rng64,
    x: &mut [f64],
    y: &mut [f64],
    theta: &mut [f64],
    cos_t: &mut [f64],
    sin_t: &mut [f64],
) {
    match motion {
        MotionConfig::DiffDrive(m) => m.propagate_lanes(delta, rng, x, y, theta, cos_t, sin_t),
        MotionConfig::Tum(m) => m.propagate_lanes(twist, dt, rng, x, y, theta, cos_t, sin_t),
    }
}

/// Fused cast + weight over one chunk's pose lanes.
///
/// `bearings[j]` is the `j`-th selected beam's bearing in the sensor
/// frame; `rows[j]` is its measured-range row offset into the sensor
/// model's quantized table ([`BeamSensorModel::row_offset`]) — both are
/// precomputed once per scan. `ebins` is a reusable k-sized scratch;
/// `log_w` must be sized to the chunk and receives the squashed
/// log-weights.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cast_weight_kernel<M: RangeMethod + ?Sized>(
    caster: &M,
    sensor: &BeamSensorModel,
    mount: Pose2,
    squash: f64,
    bearings: &[f64],
    rows: &[u32],
    x: &[f64],
    y: &[f64],
    theta: &[f64],
    cos_t: &[f64],
    sin_t: &[f64],
    ebins: &mut Vec<u32>,
    log_w: &mut [f64],
) {
    debug_assert_eq!(bearings.len(), rows.len());
    debug_assert_eq!(x.len(), log_w.len());
    // analyze:allow(R9, reason = "resize of a cleared scratch that retains capacity across steps; amortized allocation-free")
    ebins.clear();
    ebins.resize(bearings.len(), 0);
    let inv_res = sensor.inv_resolution();
    let max_bin = sensor.max_bin();
    let qscale = sensor.quantization_scale();
    for i in 0..x.len() {
        let (c, s) = (cos_t[i], sin_t[i]);
        let sx = x[i] + mount.x * c - mount.y * s;
        let sy = y[i] + mount.x * s + mount.y * c;
        let st = theta[i] + mount.theta;
        caster.beam_bins_into(sx, sy, st, bearings, inv_res, max_bin, ebins);
        let mut acc: u64 = 0;
        for (&row, &eb) in rows.iter().zip(ebins.iter()) {
            acc += u64::from(sensor.code_at(row + eb));
        }
        log_w[i] = acc as f64 * qscale / squash;
    }
}

/// What a [`StepJob`] computes when it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum JobKind {
    /// Leftover job slot from a larger previous batch: does nothing.
    Idle,
    /// Propagate the pose lanes through the motion model.
    Motion,
    /// Fused expected-range cast + log-likelihood accumulation.
    CastWeight,
}

/// One particle chunk's worth of pipeline work, with owned reusable lane
/// buffers. The filter keeps a persistent `Vec<StepJob>` (at most
/// [`raceloc_par::MAX_CHUNKS`] entries) and rewrites the fields each step.
#[derive(Debug)]
pub(crate) struct StepJob {
    /// Which kernel to run.
    pub kind: JobKind,
    /// Offset of this chunk in the filter's particle store.
    pub start: usize,
    /// Chunk copy of the store's `x` lane (mutated by `Motion`).
    pub x: Vec<f64>,
    /// Chunk copy of the store's `y` lane.
    pub y: Vec<f64>,
    /// Chunk copy of the store's `theta` lane.
    pub theta: Vec<f64>,
    /// Chunk copy of the store's `cos θ` lane.
    pub cos: Vec<f64>,
    /// Chunk copy of the store's `sin θ` lane.
    pub sin: Vec<f64>,
    /// Selected finite beams' bearings in the sensor frame.
    pub bearings: Vec<f64>,
    /// Matching measured-range row offsets into the quantized sensor table.
    pub rows: Vec<u32>,
    /// LiDAR mount pose in the body frame.
    pub mount: Pose2,
    /// Log-likelihood squash divisor.
    pub squash: f64,
    /// `CastWeight` output: squashed log-weight per particle.
    pub log_w: Vec<f64>,
    /// Per-particle expected-bin scratch (k entries, reused).
    ebins: Vec<u32>,
    /// Motion model to sample from.
    pub motion: MotionConfig,
    /// Relative odometry since the last prediction.
    pub delta: Pose2,
    /// Body twist reported with the odometry.
    pub twist: Twist2,
    /// Time step \[s\].
    pub dt: f64,
    /// Filter seed; combined with the `(epoch, chunk)` counters into the
    /// chunk's registered RNG stream key.
    pub seed: u64,
    /// The filter's prediction epoch (always ≥ 1 when the job runs).
    pub epoch: u64,
    /// This job's chunk index in the static layout.
    pub chunk: u64,
}

impl StepJob {
    /// A fresh idle job slot with empty buffers.
    pub fn empty(motion: MotionConfig) -> Self {
        Self {
            kind: JobKind::Idle,
            start: 0,
            x: Vec::new(),
            y: Vec::new(),
            theta: Vec::new(),
            cos: Vec::new(),
            sin: Vec::new(),
            bearings: Vec::new(),
            rows: Vec::new(),
            mount: Pose2::IDENTITY,
            squash: 1.0,
            log_w: Vec::new(),
            ebins: Vec::new(),
            motion,
            delta: Pose2::IDENTITY,
            twist: Twist2::ZERO,
            dt: 0.0,
            seed: 0,
            epoch: 1,
            chunk: 0,
        }
    }

    /// Copies the store's lanes over `span` into the job's lane buffers
    /// and records the chunk offset. Buffers retain capacity across steps.
    pub fn load_particles(&mut self, store: &ParticleStore, span: std::ops::Range<usize>) {
        self.start = span.start;
        self.x.clear();
        self.x.extend_from_slice(&store.x[span.clone()]);
        self.y.clear();
        self.y.extend_from_slice(&store.y[span.clone()]);
        self.theta.clear();
        self.theta.extend_from_slice(&store.theta[span.clone()]);
        self.cos.clear();
        self.cos.extend_from_slice(&store.cos[span.clone()]);
        self.sin.clear();
        self.sin.extend_from_slice(&store.sin[span]);
    }

    /// Scatters the job's (motion-propagated) lanes back into the store at
    /// the recorded chunk offset.
    pub fn store_particles(&self, store: &mut ParticleStore) {
        let span = self.start..self.start + self.x.len();
        store.x[span.clone()].copy_from_slice(&self.x);
        store.y[span.clone()].copy_from_slice(&self.y);
        store.theta[span.clone()].copy_from_slice(&self.theta);
        store.cos[span.clone()].copy_from_slice(&self.cos);
        store.sin[span].copy_from_slice(&self.sin);
    }

    /// Clears the lane buffers (used when parking a job slot idle).
    pub fn clear_particles(&mut self) {
        self.x.clear();
        self.y.clear();
        self.theta.clear();
        self.cos.clear();
        self.sin.clear();
    }
}

impl<M: RangeMethod> PoolJob<Arc<PfShared<M>>> for StepJob {
    // analyze:steady-state
    fn run(&mut self, ctx: &Arc<PfShared<M>>) {
        match self.kind {
            JobKind::Idle => {}
            JobKind::Motion => {
                // The stream depends only on (seed, epoch, chunk index) —
                // never on which worker runs the job — so motion noise is
                // identical for any thread count, including inline. The key
                // is built through the central registry (analyzer rule R7).
                let mut rng =
                    Rng64::stream(self.seed, stream_keys::pf_motion(self.epoch, self.chunk));
                motion_kernel(
                    &self.motion,
                    self.delta,
                    self.twist,
                    self.dt,
                    &mut rng,
                    &mut self.x,
                    &mut self.y,
                    &mut self.theta,
                    &mut self.cos,
                    &mut self.sin,
                );
            }
            JobKind::CastWeight => {
                // analyze:allow(R9, reason = "resize of a cleared output buffer that retains capacity across steps; amortized allocation-free")
                self.log_w.clear();
                self.log_w.resize(self.x.len(), 0.0);
                cast_weight_kernel(
                    &ctx.caster,
                    &ctx.sensor,
                    self.mount,
                    self.squash,
                    &self.bearings,
                    &self.rows,
                    &self.x,
                    &self.y,
                    &self.theta,
                    &self.cos,
                    &self.sin,
                    &mut self.ebins,
                    &mut self.log_w,
                );
            }
        }
    }

    fn items(&self) -> usize {
        self.x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_map::{CellState, OccupancyGrid};
    use raceloc_range::BresenhamCasting;

    fn shared() -> Arc<PfShared<BresenhamCasting>> {
        let mut g = OccupancyGrid::new(80, 80, 0.1, raceloc_core::Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..80i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, 79).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((79, i).into(), CellState::Occupied);
        }
        Arc::new(PfShared {
            caster: BresenhamCasting::new(&g, 10.0),
            sensor: BeamSensorModel::new(crate::sensor::BeamModelConfig::default(), 10.0),
        })
    }

    fn load(job: &mut StepJob, poses: &[Pose2]) {
        let store = ParticleStore::from_poses(poses);
        job.load_particles(&store, 0..poses.len());
    }

    /// The fused lane kernel must reproduce, bitwise, a reference that
    /// evaluates the quantized sensor model per beam through the public
    /// scalar path: `range()` → `expected_bin` → `code_at` → integer sum.
    #[test]
    fn fused_matches_quantized_scalar_reference() {
        let ctx = shared();
        let particles = vec![
            Pose2::new(4.0, 4.0, 0.3),
            Pose2::new(3.0, 5.0, -1.2),
            Pose2::new(5.5, 2.0, 2.8),
        ];
        let beams: Vec<(f64, f64)> = (0..16)
            .map(|i| (-1.5 + i as f64 * 0.2, 2.0 + (i % 5) as f64 * 0.7))
            .collect();
        let mount = Pose2::new(0.1, 0.0, 0.0);
        let squash = 12.0;

        // Scalar reference over the same quantized table.
        let qscale = ctx.sensor.quantization_scale();
        let reference: Vec<f64> = particles
            .iter()
            .map(|p| {
                let mut acc: u64 = 0;
                for &(bearing, measured) in &beams {
                    // Fresh sin_cos sensor pose, like the old AoS path.
                    let sp = *p * mount;
                    let expected = ctx.caster.range(sp.x, sp.y, sp.theta + bearing);
                    let idx = ctx.sensor.row_offset(measured) + ctx.sensor.expected_bin(expected);
                    acc += u64::from(ctx.sensor.code_at(idx));
                }
                acc as f64 * qscale / squash
            })
            .collect();

        let mut job = StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
        job.kind = JobKind::CastWeight;
        load(&mut job, &particles);
        job.bearings = beams.iter().map(|&(b, _)| b).collect();
        job.rows = beams
            .iter()
            .map(|&(_, m)| ctx.sensor.row_offset(m))
            .collect();
        job.mount = mount;
        job.squash = squash;
        job.run(&ctx);
        assert_eq!(job.log_w, reference, "fused kernel must be bitwise exact");
    }

    /// Integer code accumulation makes the log-weight independent of beam
    /// evaluation order — the property the cross-thread gates lean on.
    #[test]
    fn weight_is_beam_order_independent() {
        let ctx = shared();
        let particles = vec![Pose2::new(4.0, 4.0, 0.3), Pose2::new(3.0, 5.0, -1.2)];
        let beams: Vec<(f64, f64)> = (0..24)
            .map(|i| (-1.3 + i as f64 * 0.11, 1.0 + (i % 7) as f64 * 0.9))
            .collect();
        let run = |beams: &[(f64, f64)]| {
            let mut job =
                StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
            job.kind = JobKind::CastWeight;
            load(&mut job, &particles);
            job.bearings = beams.iter().map(|&(b, _)| b).collect();
            job.rows = beams
                .iter()
                .map(|&(_, m)| ctx.sensor.row_offset(m))
                .collect();
            job.mount = Pose2::new(0.1, 0.0, 0.0);
            job.squash = 12.0;
            job.run(&ctx);
            job.log_w
        };
        let forward = run(&beams);
        let mut reversed_beams = beams.clone();
        reversed_beams.reverse();
        let reversed = run(&reversed_beams);
        assert_eq!(forward, reversed, "Σ of u16 codes must commute exactly");
    }

    #[test]
    fn motion_stream_is_pure() {
        let ctx = shared();
        let mk = || {
            let mut job =
                StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
            job.kind = JobKind::Motion;
            load(&mut job, &[Pose2::new(4.0, 4.0, 0.1); 8]);
            job.delta = Pose2::new(0.05, 0.0, 0.01);
            job.twist = Twist2::new(1.0, 0.0, 0.2);
            job.dt = 0.05;
            job.seed = 7;
            job.epoch = 3;
            job.chunk = 1;
            job.run(&ctx);
            (job.x, job.y, job.theta, job.cos, job.sin)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn load_store_round_trips_a_chunk() {
        let poses = vec![
            Pose2::new(1.0, 2.0, 0.3),
            Pose2::new(-1.0, 0.5, -2.0),
            Pose2::new(3.0, 3.0, 1.1),
            Pose2::new(0.0, -1.0, 0.0),
        ];
        let store = ParticleStore::from_poses(&poses);
        let mut dst = ParticleStore::identity(4);
        let mut job = StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
        job.load_particles(&store, 1..3);
        assert_eq!(job.start, 1);
        assert_eq!(job.x, &store.x[1..3]);
        job.store_particles(&mut dst);
        assert_eq!(dst.pose(1), store.pose(1));
        assert_eq!(dst.pose(2), store.pose(2));
        assert_eq!(dst.pose(0), Pose2::IDENTITY, "outside the span untouched");
    }

    #[test]
    fn idle_job_is_a_noop() {
        let ctx = shared();
        let mut job = StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
        load(&mut job, &[Pose2::new(1.0, 1.0, 0.0)]);
        let before = (job.x.clone(), job.y.clone(), job.theta.clone());
        job.run(&ctx);
        assert_eq!((job.x.clone(), job.y.clone(), job.theta.clone()), before);
        assert!(job.log_w.is_empty());
    }
}
