//! Chunked jobs for the fused parallel particle pipeline (DESIGN.md §11).
//!
//! [`SynPf`](crate::SynPf) splits its particle set into the deterministic
//! static chunk layout from [`raceloc_par::chunk`] and dispatches one
//! [`StepJob`] per chunk, either inline (`threads = 1`) or on a persistent
//! [`raceloc_par::WorkerPool`]. Each job owns every buffer it touches, so
//! the steady-state pipeline performs zero heap allocations and the chunk
//! results can be scattered back in any completion order.
//!
//! Two kernels run through the same job type:
//!
//! - **Motion** ([`JobKind::Motion`]): propagates the chunk's particles
//!   through the configured motion model using a *counter-derived* RNG
//!   stream ([`Rng64::stream`]) identified by `(epoch, chunk index)`. The
//!   stream is a pure function of the seed and those counters, so the
//!   sampled noise — and therefore the whole filter trajectory — is
//!   bit-identical for any thread count.
//! - **Fused cast + weight** ([`JobKind::CastWeight`]): for each particle,
//!   casts the selected beams through the shared range oracle into a
//!   k-sized scratch and immediately accumulates the beam-model
//!   log-likelihood. The old pipeline materialized the full
//!   `n_particles × n_beams` expected-range matrix; fusing keeps the
//!   working set at one beam set per worker, which is what makes the
//!   multi-threaded sensor update memory-bandwidth-friendly. Per-beam
//!   accumulation order matches the unfused reference exactly, so the
//!   resulting log-weights are bitwise identical to it.

use std::sync::Arc;

use raceloc_core::{stream_keys, Pose2, Rng64, Twist2};
use raceloc_par::PoolJob;
use raceloc_range::RangeMethod;

use crate::filter::MotionConfig;
use crate::motion::propagate;
use crate::sensor::BeamSensorModel;

/// Immutable per-filter context shared with the pool workers: the range
/// oracle and the precomputed sensor table.
#[derive(Debug)]
pub(crate) struct PfShared<M> {
    /// The expected-range oracle.
    pub caster: M,
    /// The discretized beam sensor model.
    pub sensor: BeamSensorModel,
}

/// What a [`StepJob`] computes when it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum JobKind {
    /// Leftover job slot from a larger previous batch: does nothing.
    Idle,
    /// Propagate `particles` through the motion model.
    Motion,
    /// Fused expected-range cast + log-likelihood accumulation.
    CastWeight,
}

/// One particle chunk's worth of pipeline work, with owned reusable
/// buffers. The filter keeps a persistent `Vec<StepJob>` (at most
/// [`raceloc_par::MAX_CHUNKS`] entries) and rewrites the fields each step.
#[derive(Debug)]
pub(crate) struct StepJob {
    /// Which kernel to run.
    pub kind: JobKind,
    /// Offset of this chunk in the filter's particle array.
    pub start: usize,
    /// The chunk's particles (copied in, mutated by `Motion`).
    pub particles: Vec<Pose2>,
    /// Selected beams as `(bearing in sensor frame, measured range)`.
    pub beams: Vec<(f64, f64)>,
    /// LiDAR mount pose in the body frame.
    pub mount: Pose2,
    /// Log-likelihood squash divisor.
    pub squash: f64,
    /// `CastWeight` output: squashed log-weight per particle.
    pub log_w: Vec<f64>,
    /// Per-particle query scratch (k entries, reused).
    queries: Vec<(f64, f64, f64)>,
    /// Per-particle expected-range scratch (k entries, reused).
    expected: Vec<f64>,
    /// Motion model to sample from.
    pub motion: MotionConfig,
    /// Relative odometry since the last prediction.
    pub delta: Pose2,
    /// Body twist reported with the odometry.
    pub twist: Twist2,
    /// Time step \[s\].
    pub dt: f64,
    /// Filter seed; combined with the `(epoch, chunk)` counters into the
    /// chunk's registered RNG stream key.
    pub seed: u64,
    /// The filter's prediction epoch (always ≥ 1 when the job runs).
    pub epoch: u64,
    /// This job's chunk index in the static layout.
    pub chunk: u64,
}

impl StepJob {
    /// A fresh idle job slot with empty buffers.
    pub fn empty(motion: MotionConfig) -> Self {
        Self {
            kind: JobKind::Idle,
            start: 0,
            particles: Vec::new(),
            beams: Vec::new(),
            mount: Pose2::IDENTITY,
            squash: 1.0,
            log_w: Vec::new(),
            queries: Vec::new(),
            expected: Vec::new(),
            motion,
            delta: Pose2::IDENTITY,
            twist: Twist2::ZERO,
            dt: 0.0,
            seed: 0,
            epoch: 1,
            chunk: 0,
        }
    }
}

impl<M: RangeMethod> PoolJob<Arc<PfShared<M>>> for StepJob {
    // analyze:steady-state
    fn run(&mut self, ctx: &Arc<PfShared<M>>) {
        match self.kind {
            JobKind::Idle => {}
            JobKind::Motion => {
                // The stream depends only on (seed, epoch, chunk index) —
                // never on which worker runs the job — so motion noise is
                // identical for any thread count, including inline. The key
                // is built through the central registry (analyzer rule R7).
                let mut rng =
                    Rng64::stream(self.seed, stream_keys::pf_motion(self.epoch, self.chunk));
                match self.motion {
                    MotionConfig::DiffDrive(m) => {
                        propagate(
                            &m,
                            &mut self.particles,
                            self.delta,
                            self.twist,
                            self.dt,
                            &mut rng,
                        );
                    }
                    MotionConfig::Tum(m) => {
                        propagate(
                            &m,
                            &mut self.particles,
                            self.delta,
                            self.twist,
                            self.dt,
                            &mut rng,
                        );
                    }
                }
            }
            JobKind::CastWeight => {
                let k = self.beams.len();
                self.log_w.clear();
                self.expected.clear();
                self.expected.resize(k, 0.0);
                for p in &self.particles {
                    let sensor_pose = *p * self.mount;
                    self.queries.clear();
                    for &(bearing, _) in &self.beams {
                        // analyze:allow(R9, reason = "push into a cleared buffer that retains capacity across steps; amortized allocation-free")
                        self.queries.push((
                            sensor_pose.x,
                            sensor_pose.y,
                            sensor_pose.theta + bearing,
                        ));
                    }
                    ctx.caster.ranges_into(&self.queries, &mut self.expected);
                    // Accumulate in beam order: the f64 addition order is
                    // what makes this bitwise-equal to the unfused matrix
                    // reference.
                    let mut acc = 0.0;
                    for (j, &(_, measured)) in self.beams.iter().enumerate() {
                        acc += ctx.sensor.log_prob(self.expected[j], measured);
                    }
                    // analyze:allow(R9, reason = "push into a cleared buffer that retains capacity across steps; amortized allocation-free")
                    self.log_w.push(acc / self.squash);
                }
            }
        }
    }

    fn items(&self) -> usize {
        self.particles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raceloc_map::{CellState, OccupancyGrid};
    use raceloc_range::BresenhamCasting;

    fn shared() -> Arc<PfShared<BresenhamCasting>> {
        let mut g = OccupancyGrid::new(80, 80, 0.1, raceloc_core::Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..80i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, 79).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((79, i).into(), CellState::Occupied);
        }
        Arc::new(PfShared {
            caster: BresenhamCasting::new(&g, 10.0),
            sensor: BeamSensorModel::new(crate::sensor::BeamModelConfig::default(), 10.0),
        })
    }

    #[test]
    fn fused_matches_unfused_reference() {
        let ctx = shared();
        let particles = vec![
            Pose2::new(4.0, 4.0, 0.3),
            Pose2::new(3.0, 5.0, -1.2),
            Pose2::new(5.5, 2.0, 2.8),
        ];
        let beams: Vec<(f64, f64)> = (0..16)
            .map(|i| (-1.5 + i as f64 * 0.2, 2.0 + (i % 5) as f64 * 0.7))
            .collect();
        let mount = Pose2::new(0.1, 0.0, 0.0);
        let squash = 12.0;

        // Unfused reference: full query matrix, then a weight pass.
        let mut queries = Vec::new();
        for p in &particles {
            let sp = *p * mount;
            for &(bearing, _) in &beams {
                queries.push((sp.x, sp.y, sp.theta + bearing));
            }
        }
        let mut expected = vec![0.0; queries.len()];
        ctx.caster.ranges_into(&queries, &mut expected);
        let reference: Vec<f64> = particles
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let base = i * beams.len();
                let mut acc = 0.0;
                for (j, &(_, measured)) in beams.iter().enumerate() {
                    acc += ctx.sensor.log_prob(expected[base + j], measured);
                }
                acc / squash
            })
            .collect();

        let mut job = StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
        job.kind = JobKind::CastWeight;
        job.particles = particles;
        job.beams = beams;
        job.mount = mount;
        job.squash = squash;
        job.run(&ctx);
        assert_eq!(job.log_w, reference, "fused kernel must be bitwise exact");
    }

    #[test]
    fn motion_stream_is_pure() {
        let ctx = shared();
        let mk = || {
            let mut job =
                StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
            job.kind = JobKind::Motion;
            job.particles = vec![Pose2::new(4.0, 4.0, 0.1); 8];
            job.delta = Pose2::new(0.05, 0.0, 0.01);
            job.twist = Twist2::new(1.0, 0.0, 0.2);
            job.dt = 0.05;
            job.seed = 7;
            job.epoch = 3;
            job.chunk = 1;
            job.run(&ctx);
            job.particles
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn idle_job_is_a_noop() {
        let ctx = shared();
        let mut job = StepJob::empty(MotionConfig::Tum(crate::motion::TumMotionModel::default()));
        job.particles = vec![Pose2::new(1.0, 1.0, 0.0)];
        let before = job.particles.clone();
        job.run(&ctx);
        assert_eq!(job.particles, before);
        assert!(job.log_w.is_empty());
    }
}
