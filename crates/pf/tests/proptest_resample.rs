//! Property-based tests for degenerate resampling inputs (ISSUE 2,
//! satellite 4): all-zero, NaN-contaminated, and single-survivor weight
//! vectors must never panic and must always leave a valid particle set.
//!
//! These exercise the degeneracy guard in `raceloc_pf::resample::normalize`
//! (reset-to-uniform on a zero/non-finite sum) both directly and through
//! the full `SynPf::correct` path, where the invariants added by
//! `raceloc_core::debug_invariant!` are live under `cargo test`.

use proptest::prelude::*;
use raceloc_core::localizer::Localizer;
use raceloc_core::{LaserScan, Rng64};
use raceloc_map::{CellState, OccupancyGrid};
use raceloc_pf::resample::{
    effective_sample_size, normalize, systematic_indices, systematic_indices_into,
};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::BresenhamCasting;

/// One weight drawn from a deliberately hostile distribution: mostly
/// ordinary magnitudes, plus zeros, NaN, and infinities.
fn hostile_weight() -> impl Strategy<Value = f64> {
    (0u32..10u32, 0.0..1.0f64).prop_map(|(kind, x)| match kind {
        0 => 0.0,
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => -x, // negative mass: also degenerate
        _ => x * 1e3,
    })
}

fn hostile_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(hostile_weight(), 1..64)
}

proptest! {
    #[test]
    fn normalize_never_panics_and_yields_a_distribution(mut w in hostile_weights()) {
        let ok = normalize(&mut w);
        // Whatever came in, what comes out is a valid distribution.
        prop_assert!(w.iter().all(|x| x.is_finite() && *x >= 0.0));
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        // The degenerate reset is exactly the uniform distribution.
        if !ok {
            let u = 1.0 / w.len() as f64;
            prop_assert!(w.iter().all(|x| (x - u).abs() < 1e-12));
        }
    }

    #[test]
    fn systematic_resampling_survives_hostile_weights(
        mut w in hostile_weights(),
        count in 1usize..256,
        seed in 0u64..1000,
    ) {
        normalize(&mut w);
        let mut rng = Rng64::new(seed);
        let idx = systematic_indices(&w, count, &mut rng);
        prop_assert_eq!(idx.len(), count);
        prop_assert!(idx.iter().all(|&i| i < w.len()));
        // ESS of the normalized vector is well-defined and in [0, n].
        let ess = effective_sample_size(&w);
        prop_assert!(ess.is_finite() && ess >= 0.0 && ess <= w.len() as f64 + 1e-9);
    }

    #[test]
    fn all_zero_weights_reset_to_uniform(n in 1usize..128) {
        let mut w = vec![0.0; n];
        prop_assert!(!normalize(&mut w));
        let u = 1.0 / n as f64;
        prop_assert!(w.iter().all(|x| (x - u).abs() < 1e-12));
    }

    #[test]
    fn single_survivor_takes_all_samples(
        n in 2usize..64,
        survivor_frac in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let survivor = ((n - 1) as f64 * survivor_frac) as usize;
        let mut w = vec![0.0; n];
        w[survivor] = 123.4;
        prop_assert!(normalize(&mut w));
        let mut rng = Rng64::new(seed);
        let idx = systematic_indices(&w, n, &mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| i == survivor));
    }
}

/// The pre-pipeline systematic resampler, kept verbatim as the reference
/// the allocation-free implementation must match draw-for-draw.
fn reference_systematic(weights: &[f64], count: usize, rng: &mut Rng64) -> Vec<usize> {
    if weights.is_empty() || count == 0 {
        return Vec::new();
    }
    let step = 1.0 / count as f64;
    let mut target = rng.uniform() * step;
    let mut indices = Vec::with_capacity(count);
    let mut cum = weights[0];
    let mut i = 0usize;
    for _ in 0..count {
        while cum < target && i + 1 < weights.len() {
            i += 1;
            cum += weights[i];
        }
        indices.push(i);
        target += step;
    }
    indices
}

proptest! {
    // The in-place resampler is a refactor, not a behavior change: for any
    // weights, count, and seed it must produce exactly the reference
    // indices AND leave the RNG in the same state (so downstream draws —
    // recovery injection, the next resample — are unperturbed).
    #[test]
    fn in_place_resampler_matches_reference(
        mut w in hostile_weights(),
        count in 0usize..256,
        seed in 0u64..1000,
    ) {
        normalize(&mut w);
        let mut rng_ref = Rng64::new(seed);
        let expected = reference_systematic(&w, count, &mut rng_ref);

        let mut rng_into = Rng64::new(seed);
        // Pre-dirtied, under-sized buffer: `_into` must clear and refill.
        let mut out = vec![usize::MAX; 3];
        systematic_indices_into(&w, count, &mut rng_into, &mut out);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(rng_into.clone().next_u64(), rng_ref.clone().next_u64());

        // The allocating wrapper delegates to the same code.
        let mut rng_vec = Rng64::new(seed);
        prop_assert_eq!(systematic_indices(&w, count, &mut rng_vec), expected);
    }

    // Gathering through a reusable scratch buffer (what
    // `SynPf::resample_if_needed` does) equals the old take-and-collect.
    #[test]
    fn scratch_gather_matches_collect(
        mut w in hostile_weights(),
        seed in 0u64..1000,
    ) {
        normalize(&mut w);
        let particles: Vec<raceloc_core::Pose2> = (0..w.len())
            .map(|i| raceloc_core::Pose2::new(i as f64, -(i as f64), 0.1 * i as f64))
            .collect();
        let count = w.len();
        let mut rng_a = Rng64::new(seed);
        let idx = systematic_indices(&w, count, &mut rng_a);
        let collected: Vec<_> = idx.iter().map(|&src| particles[src]).collect();

        let mut rng_b = Rng64::new(seed);
        let mut idx_scratch = Vec::new();
        let mut gather_scratch = vec![raceloc_core::Pose2::IDENTITY; 2];
        systematic_indices_into(&w, count, &mut rng_b, &mut idx_scratch);
        gather_scratch.clear();
        gather_scratch.extend(idx_scratch.iter().map(|&src| particles[src]));
        prop_assert_eq!(gather_scratch, collected);
    }
}

/// A small free room with solid walls for end-to-end filter runs.
fn walled_room() -> OccupancyGrid {
    let mut grid = OccupancyGrid::new(40, 40, 0.25, raceloc_core::Point2::ORIGIN);
    grid.fill(CellState::Free);
    for i in 0..40i64 {
        grid.set((i, 0i64).into(), CellState::Occupied);
        grid.set((i, 39i64).into(), CellState::Occupied);
        grid.set((0i64, i).into(), CellState::Occupied);
        grid.set((39i64, i).into(), CellState::Occupied);
    }
    grid
}

proptest! {
    // End-to-end: a measurement that poisons every particle's likelihood
    // (NaN / zero / out-of-envelope ranges) must flow through the
    // normalize → resample guard without panicking, leaving a usable
    // filter. `cargo test` runs in the debug profile, so the
    // `debug_invariant!` checks in `SynPf::finish_correction` and the batch
    // caster are active throughout.
    #[test]
    fn filter_survives_poisoned_scans(
        kind in 0u32..3,
        seed in 0u64..100,
    ) {
        let grid = walled_room();
        let caster = BresenhamCasting::new(&grid, 10.0);
        let config = SynPfConfig::builder()
            .particles(50)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut pf = SynPf::new(caster, config);
        pf.reset(raceloc_core::Pose2::new(5.0, 5.0, 0.0));
        let n_beams = 30;
        let poison = match kind {
            0 => f64::NAN,
            1 => 0.0,
            _ => 1e12,
        };
        let scan = LaserScan::new(
            -1.5,
            3.0 / n_beams as f64,
            vec![poison; n_beams],
            10.0,
        );
        for _ in 0..3 {
            let est = pf.correct(&scan);
            prop_assert!(est.x.is_finite() && est.y.is_finite() && est.theta.is_finite());
            prop_assert!(!pf.particles().is_empty());
            let w = pf.weights();
            prop_assert!(w.iter().all(|x| x.is_finite() && *x >= 0.0));
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "weight sum = {sum}");
        }
    }
}
