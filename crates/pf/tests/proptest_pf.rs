//! Property-based tests of the particle-filter building blocks: weight
//! normalization, systematic resampling, sensor-model structure, and layout
//! invariants.

use proptest::prelude::*;
use raceloc_core::sensor_data::LaserScan;
use raceloc_core::Rng64;
use raceloc_pf::resample::{effective_sample_size, normalize, systematic_indices};
use raceloc_pf::{BeamModelConfig, BeamSensorModel, ScanLayout};

proptest! {
    #[test]
    fn normalize_produces_distribution(mut w in prop::collection::vec(0.0..100.0f64, 1..200)) {
        let ok = normalize(&mut w);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        if ok {
            prop_assert!(w.iter().all(|&x| x >= 0.0));
        } else {
            // Degenerate input resets to uniform.
            let u = 1.0 / w.len() as f64;
            prop_assert!(w.iter().all(|&x| (x - u).abs() < 1e-12));
        }
    }

    #[test]
    fn ess_is_bounded_by_count(mut w in prop::collection::vec(0.0..100.0f64, 1..200)) {
        normalize(&mut w);
        let ess = effective_sample_size(&w);
        prop_assert!(ess >= 1.0 - 1e-9);
        prop_assert!(ess <= w.len() as f64 + 1e-9);
    }

    #[test]
    fn systematic_resampling_is_unbiased_in_counts(
        seed in any::<u64>(),
        mut w in prop::collection::vec(0.0..10.0f64, 2..30),
    ) {
        if !normalize(&mut w) {
            return Ok(());
        }
        let n = 4000;
        let mut rng = Rng64::new(seed);
        let idx = systematic_indices(&w, n, &mut rng);
        prop_assert_eq!(idx.len(), n);
        let mut counts = vec![0usize; w.len()];
        for i in idx {
            prop_assert!(i < w.len());
            counts[i] += 1;
        }
        // Systematic resampling guarantees counts within ±1 of n·wᵢ … allow
        // a small slack for cumulative floating point.
        for (c, &wi) in counts.iter().zip(&w) {
            let expect = wi * n as f64;
            prop_assert!((*c as f64 - expect).abs() <= 2.0,
                "count {c} vs expectation {expect}");
        }
    }

    #[test]
    fn sensor_model_rows_are_distributions(
        sigma in 0.03..0.4f64,
        lambda in 0.2..3.0f64,
        expected in 0.0..9.9f64,
    ) {
        let model = BeamSensorModel::new(
            BeamModelConfig {
                sigma_hit: sigma,
                lambda_short: lambda,
                ..BeamModelConfig::default()
            },
            10.0,
        );
        // Row sums to ~1 and the mode is near the expected range.
        let bins = model.bins();
        let res = model.config().resolution;
        // Sample at bin centers so float flooring cannot alias bins.
        let sum: f64 = (0..bins)
            .map(|b| model.log_prob(expected, (b as f64 + 0.5) * res).exp())
            .sum();
        prop_assert!((sum - 1.0).abs() < 0.05, "row sums to {sum}");
        let peak_at = model.log_prob(expected, expected);
        let far = model.log_prob(expected, (expected + 5.0 * sigma + 1.0).min(9.9));
        prop_assert!(peak_at > far);
    }

    #[test]
    fn layouts_select_valid_unique_indices(
        beams in 2usize..1500,
        count in 1usize..200,
        aspect in 0.5..8.0f64,
    ) {
        let scan = LaserScan::new(
            -135.0f64.to_radians(),
            270.0f64.to_radians() / (beams - 1).max(1) as f64,
            vec![5.0; beams],
            10.0,
        );
        for layout in [
            ScanLayout::Uniform { count },
            ScanLayout::Boxed { count, aspect },
        ] {
            let sel = layout.select(&scan);
            prop_assert!(!sel.is_empty());
            prop_assert!(sel.len() <= count.max(1));
            prop_assert!(sel.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            prop_assert!(sel.iter().all(|&i| i < beams));
        }
    }
}
