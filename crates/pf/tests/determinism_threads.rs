//! Cross-thread-count determinism (ISSUE 3, satellite 4): a full SynPF
//! step sequence — motion sampling with per-chunk RNG streams, the fused
//! cast+weight kernel, ESS-gated resampling, KLD adaptation, and recovery
//! injection — must produce **bit-identical** results for any `threads`
//! value. This is the rule-R3 contract the parallel pipeline (DESIGN.md
//! §11) is built around: the chunk layout and the counter-derived motion
//! streams are pure functions of the configuration, never of the worker
//! count or scheduling.

use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Pose2, Twist2};
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_pf::{KldConfig, RecoveryConfig, SynPf, SynPfConfig};
use raceloc_range::{RangeMethod, RayMarching};

fn track() -> Track {
    TrackSpec::new(TrackShape::Oval {
        width: 12.0,
        height: 7.0,
    })
    .resolution(0.1)
    .build()
}

fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let beams = 181;
    let fov = 270.0f64.to_radians();
    let inc = fov / (beams - 1) as f64;
    let sensor = pose * mount;
    let ranges: Vec<f64> = (0..beams)
        .map(|i| {
            caster.range(
                sensor.x,
                sensor.y,
                sensor.theta - 0.5 * fov + i as f64 * inc,
            )
        })
        .collect();
    LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
}

/// Runs a predict/correct sequence and returns the full filter state:
/// every particle, every weight, and the estimate.
fn run_steps(config: SynPfConfig, steps: usize) -> (Vec<[f64; 3]>, Vec<f64>, [f64; 3]) {
    let t = track();
    let caster = RayMarching::new(&t.grid, 10.0);
    let mut pf = SynPf::new(caster, config);
    pf.reset(t.start_pose());
    let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
    let mut odom_pose = Pose2::IDENTITY;
    for i in 0..steps {
        let step = Pose2::new(0.03, 0.0, 0.005);
        odom_pose = odom_pose * step;
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.6, 0.0, 0.1),
            i as f64 * 0.05,
        ));
        pf.correct(&scan);
    }
    (
        pf.particles().iter().map(|p| p.to_array()).collect(),
        pf.weights().to_vec(),
        pf.pose().to_array(),
    )
}

#[test]
fn full_step_bitwise_identical_across_thread_counts() {
    let base = SynPfConfig::builder()
        .particles(500)
        .seed(23)
        .build()
        .expect("valid config");
    let reference = run_steps(base.clone(), 6);
    for threads in [2usize, 4, 8] {
        let config = SynPfConfig {
            threads,
            ..base.clone()
        };
        let got = run_steps(config, 6);
        assert_eq!(
            got.0, reference.0,
            "particles diverged at threads={threads}"
        );
        assert_eq!(got.1, reference.1, "weights diverged at threads={threads}");
        assert_eq!(got.2, reference.2, "estimate diverged at threads={threads}");
    }
}

#[test]
fn chunk_min_changes_streams_but_not_safety() {
    // chunk_min is part of the deterministic layout: different values give
    // different (but each internally reproducible) motion streams.
    let mk = |chunk_min: usize| {
        let config = SynPfConfig::builder()
            .particles(400)
            .chunk_min(chunk_min)
            .seed(5)
            .build()
            .expect("valid config");
        run_steps(config, 4)
    };
    assert_eq!(mk(64), mk(64), "same chunk_min must replay exactly");
    assert_eq!(mk(16), mk(16));
}

#[test]
fn kld_and_recovery_paths_stay_deterministic_across_threads() {
    let t = track();
    let run = |threads: usize| {
        let caster = RayMarching::new(&t.grid, 10.0);
        let config = SynPfConfig::builder()
            .particles(900)
            .threads(threads)
            .kld(KldConfig {
                min_particles: 120,
                ..KldConfig::default()
            })
            .recovery(RecoveryConfig::default())
            .seed(11)
            .build()
            .expect("valid config");
        let mut pf = SynPf::new(caster, config);
        pf.enable_recovery(&t.grid);
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        for i in 0..10 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.05,
            ));
            pf.correct(&scan);
        }
        (
            pf.particles().to_vec(),
            pf.weights().to_vec(),
            pf.pose().to_array(),
        )
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.0, par.0, "KLD-resized particle sets diverged");
    assert_eq!(seq.1, par.1);
    assert_eq!(seq.2, par.2);
}

#[test]
fn health_and_dropout_paths_stay_deterministic_across_threads() {
    // Health monitoring plus invalid (dropped) beams exercise every new
    // branch of the correction path: the finite-beam job filter, the
    // blackout coast, and the detector EMAs. All of it must stay
    // bit-identical across thread counts (rule R3).
    let t = track();
    let run = |threads: usize| {
        let caster = RayMarching::new(&t.grid, 10.0);
        let config = SynPfConfig::builder()
            .particles(600)
            .threads(threads)
            .recovery(RecoveryConfig::default())
            .health(raceloc_pf::HealthPolicy::default())
            .seed(17)
            .build()
            .expect("valid config");
        let mut pf = SynPf::new(caster, config);
        pf.enable_recovery(&t.grid);
        pf.reset(t.start_pose());
        let clean = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        for i in 0..12 {
            pf.predict(&Odometry::new(
                Pose2::IDENTITY,
                Twist2::ZERO,
                i as f64 * 0.05,
            ));
            let mut scan = clean.clone();
            scan.stamp = i as f64 * 0.05;
            if (4..6).contains(&i) {
                // Blackout window: every beam invalid.
                scan.ranges.iter_mut().for_each(|r| *r = f64::INFINITY);
            } else {
                // Deterministic partial dropout: every 7th beam invalid.
                for (b, r) in scan.ranges.iter_mut().enumerate() {
                    if b % 7 == 0 {
                        *r = f64::INFINITY;
                    }
                }
            }
            pf.correct(&scan);
        }
        (
            pf.particles().to_vec(),
            pf.weights().to_vec(),
            pf.pose().to_array(),
            pf.health(),
        )
    };
    let seq = run(1);
    for threads in [2usize, 4] {
        let par = run(threads);
        assert_eq!(seq.0, par.0, "particles diverged at threads={threads}");
        assert_eq!(seq.1, par.1, "weights diverged at threads={threads}");
        assert_eq!(seq.2, par.2, "estimate diverged at threads={threads}");
        assert_eq!(seq.3, par.3, "health state diverged at threads={threads}");
    }
}

#[test]
fn pool_spawns_only_in_threaded_mode_and_reports_stats() {
    let t = track();
    let mk = |threads: usize| {
        let caster = RayMarching::new(&t.grid, 10.0);
        let config = SynPfConfig::builder()
            .particles(300)
            .threads(threads)
            .seed(3)
            .build()
            .expect("valid config");
        let mut pf = SynPf::new(caster, config);
        pf.reset(t.start_pose());
        let scan = scan_from(&t, t.start_pose(), pf.config().lidar_mount);
        pf.correct(&scan);
        pf
    };
    assert!(mk(1).pool_stats().is_none(), "threads=1 must stay inline");
    let stats = mk(4).pool_stats().expect("pool spawned for threads=4");
    assert!(stats.batches >= 1);
    assert!(stats.jobs >= 1);
}
