//! Property-based pinning of the SoA particle pipeline (DESIGN.md §11):
//! for *randomized* configurations — particle count, seed, step count,
//! worker threads, resampling pressure — the chunked thread-pool execution
//! of the lane kernels must reproduce the sequential inline path
//! **bit-for-bit**, through the public `Localizer` API only. This is the
//! randomized companion to the fixed-configuration cases in
//! `determinism_threads.rs`: a chunk-boundary or accumulation-order bug
//! that happens to cancel at one tuned configuration has to survive every
//! sampled one here.

use proptest::prelude::*;
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Pose2, Twist2};
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{RangeMethod, RayMarching};

fn track() -> Track {
    TrackSpec::new(TrackShape::Oval {
        width: 12.0,
        height: 7.0,
    })
    .resolution(0.1)
    .build()
}

fn scan_from(track: &Track, pose: Pose2, mount: Pose2) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let beams = 181;
    let fov = 270.0f64.to_radians();
    let inc = fov / (beams - 1) as f64;
    let sensor = pose * mount;
    let ranges: Vec<f64> = (0..beams)
        .map(|i| {
            caster.range(
                sensor.x,
                sensor.y,
                sensor.theta - 0.5 * fov + i as f64 * inc,
            )
        })
        .collect();
    LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
}

/// Runs `steps` predict/correct cycles and returns the complete observable
/// filter state: every particle, every weight, and the pose estimate.
fn run_steps(
    track: &Track,
    particles: usize,
    seed: u64,
    threads: usize,
    ess_frac: f64,
    steps: usize,
) -> (Vec<[f64; 3]>, Vec<f64>, [f64; 3]) {
    let config = SynPfConfig::builder()
        .particles(particles)
        .seed(seed)
        .threads(threads)
        .resample_ess_frac(ess_frac)
        .build()
        .expect("sampled config is valid");
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut pf = SynPf::new(caster, config);
    pf.reset(track.start_pose());
    let scan = scan_from(track, track.start_pose(), pf.config().lidar_mount);
    let mut odom_pose = Pose2::IDENTITY;
    for i in 0..steps {
        odom_pose = odom_pose * Pose2::new(0.03, 0.0, 0.006);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.6, 0.0, 0.1),
            i as f64 * 0.025,
        ));
        pf.correct(&scan);
    }
    let est = pf.pose();
    (
        pf.particles().iter().map(|p| p.to_array()).collect(),
        pf.weights().to_vec(),
        [est.x, est.y, est.theta],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread-count invariance of the full pipeline, on random
    /// configurations. `ess_frac` is sampled across the whole range so a
    /// fair share of cases exercise the gather-based resampling path (at
    /// 1.0 every step resamples), not just cast+weight.
    #[test]
    fn pipeline_is_bitwise_thread_invariant(
        particles in 40usize..200,
        seed in any::<u64>(),
        threads in 2usize..6,
        ess_frac in 0.0..=1.0f64,
        steps in 1usize..5,
    ) {
        let t = track();
        let sequential = run_steps(&t, particles, seed, 1, ess_frac, steps);
        let pooled = run_steps(&t, particles, seed, threads, ess_frac, steps);
        // Bitwise equality — `==` on f64 is exactly the contract here.
        prop_assert_eq!(&sequential.0, &pooled.0, "particle lanes diverged");
        prop_assert_eq!(&sequential.1, &pooled.1, "weights diverged");
        prop_assert_eq!(sequential.2, pooled.2, "estimate diverged");
    }

    /// Re-running an identical configuration reproduces identical state:
    /// the pipeline holds no hidden global state (thread-pool scratch,
    /// lazily built tables) that could leak between runs.
    #[test]
    fn pipeline_is_reproducible_across_runs(
        particles in 40usize..150,
        seed in any::<u64>(),
        threads in 1usize..4,
    ) {
        let t = track();
        let a = run_steps(&t, particles, seed, threads, 0.5, 3);
        let b = run_steps(&t, particles, seed, threads, 0.5, 3);
        prop_assert_eq!(a, b);
    }
}
