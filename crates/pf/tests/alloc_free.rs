//! Steady-state allocation audit (ISSUE 3 acceptance): after a warm-up
//! phase that sizes every scratch buffer, a full SynPF predict/correct
//! step must perform **zero heap allocations** — the property the fused
//! pipeline, the beam-selection cache, the in-place resampler, and the
//! reusable chunk jobs (DESIGN.md §11) combine to deliver.
//!
//! The audit uses a counting `#[global_allocator]` wrapper, so everything
//! in this binary is counted; the measured window touches only the filter
//! step. A single `#[test]` keeps the global counter race-free.

use alloc_counter::CountingAlloc;
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Pose2, Twist2};
use raceloc_map::{TrackShape, TrackSpec};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{RangeMethod, RayMarching};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocation events (allocs + reallocs) observed while running `f`.
fn alloc_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC.total_events();
    let result = f();
    (ALLOC.total_events() - before, result)
}

fn drive(pf: &mut SynPf<RayMarching>, scan: &LaserScan, steps: usize, t0: usize) {
    let mut odom_pose = Pose2::IDENTITY;
    for i in 0..steps {
        odom_pose = odom_pose * Pose2::new(0.02, 0.0, 0.003);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.4, 0.0, 0.05),
            (t0 + i) as f64 * 0.05,
        ));
        pf.correct(scan);
    }
}

#[test]
fn steady_state_step_allocates_nothing() {
    let track = TrackSpec::new(TrackShape::Oval {
        width: 12.0,
        height: 7.0,
    })
    .resolution(0.1)
    .build();
    let scan = {
        let caster = RayMarching::new(&track.grid, 10.0);
        let beams = 181;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let sensor = track.start_pose() * Pose2::new(0.1, 0.0, 0.0);
        let ranges: Vec<f64> = (0..beams)
            .map(|i| {
                caster.range(
                    sensor.x,
                    sensor.y,
                    sensor.theta - 0.5 * fov + i as f64 * inc,
                )
            })
            .collect();
        LaserScan::new(-0.5 * fov, inc, ranges, 10.0)
    };

    // Sequential configuration: the strict paper setup (threads = 1,
    // default config — no KLD, no recovery, telemetry disabled).
    let caster = RayMarching::new(&track.grid, 10.0);
    let config = SynPfConfig::builder()
        .particles(600)
        .seed(9)
        .build()
        .expect("valid config");
    let mut pf = SynPf::new(caster, config);
    pf.reset(track.start_pose());
    // Warm-up: sizes the beam cache, chunk jobs, log-weight and resample
    // scratch, and triggers at least one resample.
    drive(&mut pf, &scan, 8, 0);

    let (events, ()) = alloc_events(|| drive(&mut pf, &scan, 20, 8));
    assert_eq!(
        events, 0,
        "sequential steady-state step must not touch the heap"
    );

    // Pooled configuration: the persistent worker pool exchanges owned job
    // buffers, so the multi-threaded path is allocation-free too.
    let caster = RayMarching::new(&track.grid, 10.0);
    let config = SynPfConfig::builder()
        .particles(600)
        .threads(2)
        .seed(9)
        .build()
        .expect("valid config");
    let mut pf = SynPf::new(caster, config);
    pf.reset(track.start_pose());
    drive(&mut pf, &scan, 8, 0);

    let (events, ()) = alloc_events(|| drive(&mut pf, &scan, 20, 8));
    assert_eq!(
        events, 0,
        "pooled steady-state step must not touch the heap"
    );
}
