//! Structural recovery over the [`crate::lex`] token stream: `fn` item
//! boundaries, call sites with their argument expressions, and the
//! `analyze:` comment directives.
//!
//! This is deliberately not a Rust parser. It recognizes exactly the
//! three shapes the R7/R8/R9 rules and the suppression machinery consume,
//! with delimiter balancing where nesting matters, and it degrades
//! gracefully on source it does not understand (an unrecognized region
//! simply contributes no facts — the token-level rules R1–R6 still see
//! every line through [`crate::mask`]).

use crate::lex::{Comment, Lexed, Token, TokenKind};

/// One `fn` item: its name, where it starts, and which token range holds
/// its body (braces included). Trait-method signatures without a body get
/// `body: None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range `[open, close]` of the body braces, when present.
    pub body: Option<(usize, usize)>,
}

/// One call site: a path or method call with balanced, comma-split
/// top-level argument token ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment, method name, or macro name).
    pub name: String,
    /// Leading path/receiver segments, callee included
    /// (`Rng64::stream(..)` → `["Rng64", "stream"]`;
    /// `self.tel.add(..)` → `["self", "tel", "add"]`).
    pub path: Vec<String>,
    /// Whether the call is a `.name(..)` method call.
    pub method: bool,
    /// Whether the call is a `name!(..)` macro invocation.
    pub macro_call: bool,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// Token index of the callee name (for innermost-fn attribution).
    pub tok: usize,
    /// Half-open token-index ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
}

/// One parsed `analyze:` directive from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// analyze:allow(RULE, reason = "...")` — suppress matching
    /// findings on this line or the next; the reason is mandatory.
    Allow {
        /// The rule identifier being suppressed.
        rule: String,
        /// The mandatory human rationale.
        reason: String,
        /// 1-based line of the comment.
        line: usize,
    },
    /// `// analyze:steady-state` — the next `fn` item is a steady-state
    /// kernel; rule R9 audits its allocations.
    SteadyState {
        /// 1-based line of the comment.
        line: usize,
    },
    /// Something started with `analyze:` but did not parse; always a deny
    /// finding (a typo must not silently disable a suppression).
    Malformed {
        /// 1-based line of the comment.
        line: usize,
        /// What went wrong.
        why: String,
    },
}

/// The structural view of one lexed file.
#[derive(Debug, Clone, Default)]
pub struct Syntax {
    /// The underlying token stream (owned; facts index into it).
    pub tokens: Vec<Token>,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnItem>,
    /// Every call site found, in source order.
    pub calls: Vec<CallSite>,
    /// Every `analyze:` directive found in comments.
    pub directives: Vec<Directive>,
}

/// Keywords that look like `name(`-calls but are control flow.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "else", "fn", "in", "move",
];

impl Syntax {
    /// Builds the structural view from a lexed file.
    pub fn build(lexed: Lexed) -> Self {
        let Lexed { tokens, comments } = lexed;
        let fns = find_fns(&tokens);
        let calls = find_calls(&tokens);
        let directives = find_directives(&comments);
        Self {
            tokens,
            fns,
            calls,
            directives,
        }
    }

    /// The source text of an argument range, tokens joined with spaces
    /// (string literals re-quoted), for diagnostics.
    pub fn arg_text(&self, range: (usize, usize)) -> String {
        let mut out = String::new();
        for t in &self.tokens[range.0..range.1] {
            let tight_before = matches!(
                t.text.as_str(),
                ")" | "]" | "," | "." | ":" | "(" | "[" | "!"
            );
            let tight_after = matches!(out.chars().next_back(), Some('(' | '[' | ':' | '.' | '!'));
            if !out.is_empty() && !tight_before && !tight_after {
                out.push(' ');
            }
            match t.kind {
                TokenKind::Str => {
                    out.push('"');
                    out.push_str(&t.text);
                    out.push('"');
                }
                _ => out.push_str(&t.text),
            }
        }
        out
    }

    /// When the range is exactly one string literal, its value.
    pub fn arg_str_literal(&self, range: (usize, usize)) -> Option<&str> {
        let slice = &self.tokens[range.0..range.1];
        match slice {
            [t] if t.kind == TokenKind::Str => Some(&t.text),
            _ => None,
        }
    }

    /// Every `::`-joined path (length ≥ 1) of identifiers appearing inside
    /// the range, maximal chains only (`a::b::c` yields one entry).
    pub fn paths_in(&self, range: (usize, usize)) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let mut i = range.0;
        while i < range.1 {
            if self.tokens[i].kind == TokenKind::Ident {
                let mut segs = vec![self.tokens[i].text.clone()];
                let mut j = i + 1;
                while j + 2 < range.1
                    && self.tokens[j].is_punct(':')
                    && self.tokens[j + 1].is_punct(':')
                    && self.tokens[j + 2].kind == TokenKind::Ident
                {
                    segs.push(self.tokens[j + 2].text.clone());
                    j += 3;
                }
                out.push(segs);
                i = j;
            } else {
                i += 1;
            }
        }
        out
    }

    /// The innermost `fn` item whose body contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span, fn index)
        for (idx, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if open < tok && tok < close {
                    let span = close - open;
                    if best.is_none_or(|(s, _)| span < s) {
                        best = Some((span, idx));
                    }
                }
            }
        }
        best.map(|(_, idx)| idx)
    }
}

/// Scans for `fn <name>` items and brace-balances their bodies.
fn find_fns(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // The first `{` or `;` after the signature opens the body (or
            // ends a bodyless trait signature). Signatures cannot contain
            // braces, so no balancing is needed to find the opener.
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if tokens[j].is_punct(';') {
                    break;
                }
                if tokens[j].is_punct('{') {
                    if let Some(close) = match_brace(tokens, j) {
                        body = Some((j, close));
                    }
                    break;
                }
                j += 1;
            }
            out.push(FnItem { name, line, body });
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// The index of the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Scans for `name(`, `path::name(`, `.name(` and `name!(` call shapes
/// and splits their top-level arguments.
fn find_calls(tokens: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        let (macro_call, open) = match tokens.get(i + 1) {
            Some(t) if t.is_punct('(') => (false, i + 1),
            Some(t)
                if t.is_punct('!')
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| t.is_punct('(') || t.is_punct('[')) =>
            {
                (true, i + 2)
            }
            _ => continue,
        };
        if !macro_call && NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        let method = i > 0 && tokens[i - 1].is_punct('.');
        let path = path_before(tokens, i);
        let args = split_args(tokens, open);
        out.push(CallSite {
            name: name.to_string(),
            path,
            method,
            macro_call,
            line: tokens[i].line,
            tok: i,
            args,
        });
    }
    out
}

/// Collects the `a::b.c` chain ending at the callee token `at`
/// (inclusive), walking `::` and `.` links backwards.
fn path_before(tokens: &[Token], at: usize) -> Vec<String> {
    let mut segs = vec![tokens[at].text.clone()];
    let mut i = at;
    while i >= 1 {
        let prev = &tokens[i - 1];
        if prev.is_punct('.') && i >= 2 && tokens[i - 2].kind == TokenKind::Ident {
            segs.push(tokens[i - 2].text.clone());
            i -= 2;
        } else if prev.is_punct(':')
            && i >= 3
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokenKind::Ident
        {
            segs.push(tokens[i - 3].text.clone());
            i -= 3;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Splits the delimiter-balanced argument list opened at `open` into
/// half-open top-level ranges. Empty argument lists yield no ranges.
fn split_args(tokens: &[Token], open: usize) -> Vec<(usize, usize)> {
    let close_ch = if tokens[open].is_punct('[') { ']' } else { ')' };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 && t.is_punct(close_ch) {
                if j > start {
                    out.push((start, j));
                }
                return out;
            }
        } else if depth == 1 && t.is_punct(',') {
            if j > start {
                out.push((start, j));
            }
            start = j + 1;
        }
    }
    // Unbalanced (truncated source): keep what we split so far.
    out
}

/// Parses `analyze:` directives out of comment texts.
fn find_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        // Anchored at the start of the comment: prose *mentioning*
        // `analyze:` (like this sentence, or a `raceloc_analyze::` path in
        // a doc example) is not a directive.
        let Some(rest) = c.text.trim_start().strip_prefix("analyze:") else {
            continue;
        };
        if let Some(args) = rest.strip_prefix("allow") {
            out.push(parse_allow(args.trim_start(), c.line));
        } else if rest.starts_with("steady-state") {
            out.push(Directive::SteadyState { line: c.line });
        } else {
            out.push(Directive::Malformed {
                line: c.line,
                why: format!(
                    "unknown analyze: directive `{}` (expected `allow(..)` or `steady-state`)",
                    rest.split_whitespace().next().unwrap_or(""),
                ),
            });
        }
    }
    out
}

/// Parses `(RULE, reason = "...")` after `analyze:allow`.
fn parse_allow(args: &str, line: usize) -> Directive {
    let malformed = |why: &str| Directive::Malformed {
        line,
        why: format!(
            "malformed analyze:allow — {why}; the grammar is \
             `analyze:allow(RULE, reason = \"...\")` with a non-empty reason"
        ),
    };
    let Some(inner) = args.strip_prefix('(') else {
        return malformed("missing `(`");
    };
    let Some(end) = inner.rfind(')') else {
        return malformed("missing closing `)`");
    };
    let inner = &inner[..end];
    let Some((rule, rest)) = inner.split_once(',') else {
        return malformed("missing `, reason = ...` (the reason is mandatory)");
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return malformed("bad rule identifier");
    }
    let rest = rest.trim();
    let Some(eq) = rest.strip_prefix("reason") else {
        return malformed("expected `reason = \"...\"`");
    };
    let Some(value) = eq.trim_start().strip_prefix('=') else {
        return malformed("expected `=` after `reason`");
    };
    let value = value.trim();
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return malformed("empty or unquoted reason");
    }
    Directive::Allow {
        rule: rule.to_string(),
        reason: reason.to_string(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn syn(src: &str) -> Syntax {
        Syntax::build(lex(src))
    }

    #[test]
    fn finds_fn_items_and_bodies() {
        let s =
            syn("fn a() { 1 }\nimpl T { fn b(&self) -> u32 { 2 } }\ntrait Q { fn c(&self); }\n");
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(s.fns[0].body.is_some());
        assert!(s.fns[1].body.is_some());
        assert!(s.fns[2].body.is_none(), "trait signature has no body");
        assert_eq!(s.fns[1].line, 2);
    }

    #[test]
    fn nested_fns_attribute_to_the_innermost_body() {
        let s = syn("fn outer() {\n    fn inner() { leak() }\n    keep()\n}\n");
        let call = |name: &str| s.calls.iter().find(|c| c.name == name).expect("call").tok;
        let inner_idx = s.fns.iter().position(|f| f.name == "inner").expect("inner");
        let outer_idx = s.fns.iter().position(|f| f.name == "outer").expect("outer");
        assert_eq!(s.enclosing_fn(call("leak")), Some(inner_idx));
        assert_eq!(s.enclosing_fn(call("keep")), Some(outer_idx));
    }

    #[test]
    fn call_sites_record_path_method_and_args() {
        let s = syn("let k = Rng64::stream(seed, stream_keys::pf_motion(e, c));\n");
        let stream = s.calls.iter().find(|c| c.name == "stream").expect("site");
        assert_eq!(stream.path, ["Rng64", "stream"]);
        assert!(!stream.method);
        assert_eq!(stream.args.len(), 2);
        let key = s.arg_text(stream.args[1]);
        assert!(key.contains("stream_keys::pf_motion"), "{key}");
        let paths = s.paths_in(stream.args[1]);
        assert!(paths.contains(&vec!["stream_keys".to_string(), "pf_motion".to_string()]));
    }

    #[test]
    fn method_calls_and_string_args() {
        let s = syn("tel.add(\"pf.motion\", n as u64);\nsnap.counter(\"pf.correct\");\n");
        let add = s.calls.iter().find(|c| c.name == "add").expect("add");
        assert!(add.method);
        assert_eq!(add.path, ["tel", "add"]);
        assert_eq!(s.arg_str_literal(add.args[0]), Some("pf.motion"));
        assert_eq!(s.arg_str_literal(add.args[1]), None);
        let counter = s
            .calls
            .iter()
            .find(|c| c.name == "counter")
            .expect("counter");
        assert_eq!(s.arg_str_literal(counter.args[0]), Some("pf.correct"));
    }

    #[test]
    fn nested_call_args_split_at_the_top_level_only() {
        let s = syn("f(g(a, b), h(c), [d, e]);\n");
        let f = s.calls.iter().find(|c| c.name == "f").expect("f");
        assert_eq!(f.args.len(), 3);
        assert_eq!(s.arg_text(f.args[0]), "g(a, b)");
    }

    #[test]
    fn macros_and_keywords() {
        let s = syn("if x(y) { format!(\"{n}\") } else { vec![1, 2] }\n");
        assert!(!s.calls.iter().any(|c| c.name == "if" || c.name == "else"));
        let fm = s
            .calls
            .iter()
            .find(|c| c.name == "format")
            .expect("format!");
        assert!(fm.macro_call);
        let v = s.calls.iter().find(|c| c.name == "vec").expect("vec!");
        assert!(v.macro_call);
        assert_eq!(v.args.len(), 2);
        // `x(y)` is still a call.
        assert!(s.calls.iter().any(|c| c.name == "x"));
    }

    #[test]
    fn allow_directive_parses_and_requires_a_reason() {
        let s = syn("// analyze:allow(R9, reason = \"chunk buffers are pre-reserved\")\n");
        assert_eq!(
            s.directives,
            [Directive::Allow {
                rule: "R9".to_string(),
                reason: "chunk buffers are pre-reserved".to_string(),
                line: 1,
            }]
        );
        for bad in [
            "// analyze:allow(R9)\n",
            "// analyze:allow(R9, reason = \"\")\n",
            "// analyze:allow(R9, reason = unquoted)\n",
            "// analyze:allow R9\n",
            "// analyze:suppress(R9)\n",
        ] {
            let s = syn(bad);
            assert!(
                matches!(s.directives[..], [Directive::Malformed { .. }]),
                "{bad:?} → {:?}",
                s.directives
            );
        }
    }

    #[test]
    fn steady_state_directive_parses_from_any_comment_style() {
        let s =
            syn("// analyze:steady-state\nfn kernel() {}\n/// analyze:steady-state\nfn k2() {}\n");
        assert_eq!(
            s.directives,
            [
                Directive::SteadyState { line: 1 },
                Directive::SteadyState { line: 3 }
            ]
        );
    }

    #[test]
    fn plain_comments_are_not_directives() {
        let s = syn("// the analyzer checks this\n// see DESIGN.md for analysis\nfn f() {}\n");
        assert!(s.directives.is_empty());
    }
}
