#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **raceloc-analyze** — the workspace's own static-analysis pass.
//!
//! The paper's robustness argument rests on numeric kernels that must never
//! silently produce NaN, panic mid-lap, or vary run-to-run. Clippy cannot
//! express those *project* rules, so this crate implements a zero-new-
//! dependency, comment/string-aware source scanner that can (the rule set
//! is documented in [`rules`] and DESIGN.md §10):
//!
//! - **R1** panic-freedom in the hot-path crates (`par`, `pf`, `range`,
//!   `slam`, `sim`), with an advisory slice-indexing audit (`R1-idx`);
//! - **R2** float total-order: `partial_cmp(..).unwrap()` → `total_cmp`;
//! - **R3** determinism: no hash containers, thread RNGs, or wall-clock
//!   reads in the localization/sim crates (timing goes through
//!   `raceloc_obs::Stopwatch`);
//! - **R4** `unsafe` ban plus the lint wall in every crate root;
//! - **R5** removed-API ratchet: the `cast_batch` shim is gone for good
//!   and its token must not reappear.
//!
//! Pre-existing violations live in a checked-in, ratcheted
//! [`baseline`](crate::baseline) (`analyze-baseline.json`): any *new*
//! violation fails `--check`, improvements are locked in with
//! `--update-baseline`, and counts can only go down.
//!
//! Run locally with `cargo run -p raceloc-analyze -- --check`.
//!
//! # Examples
//!
//! ```
//! use raceloc_analyze::{mask::MaskedFile, rules};
//!
//! let masked = MaskedFile::new("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
//! let violations = rules::scan_file("crates/pf/src/filter.rs", &masked);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "R1");
//! ```

pub mod baseline;
pub mod mask;
pub mod report;
pub mod rules;
pub mod workspace;

use std::path::Path;

use baseline::Baseline;
use mask::MaskedFile;
use report::Report;
use rules::Violation;

/// Scans every workspace source under `root` and compares against
/// `baseline`, producing the full [`Report`].
///
/// # Errors
///
/// Returns the first I/O error hit while reading sources.
pub fn run_scan(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let files = workspace::collect_sources(root)?;
    let mut violations: Vec<Violation> = Vec::new();
    for (path, text) in &files {
        let masked = MaskedFile::new(text);
        violations.extend(rules::scan_file(path, &masked));
    }
    let verdict = baseline.compare(&violations);
    Ok(Report {
        violations,
        verdict,
        files_scanned: files.len(),
    })
}
