#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! **raceloc-analyze** — the workspace's own static-analysis pass.
//!
//! The paper's robustness argument rests on numeric kernels that must never
//! silently produce NaN, panic mid-lap, or vary run-to-run. Clippy cannot
//! express those *project* rules, so this crate implements a zero-new-
//! dependency source analyzer that can (the rule set is documented in
//! [`rules`] and DESIGN.md §10). Two layers:
//!
//! **Token rules** over masked source ([`mask`] blanks comments, strings,
//! and `#[cfg(test)]` code):
//!
//! - **R1** panic-freedom in the hot-path crates, with an advisory
//!   slice-indexing audit (`R1-idx`);
//! - **R2** float total-order: `partial_cmp(..).unwrap()` → `total_cmp`;
//! - **R3** determinism: no hash containers, thread RNGs, or wall-clock
//!   reads in the localization/sim crates;
//! - **R4** `unsafe` ban plus the lint wall in every crate root;
//! - **R5**/**R6** removed/deprecated-API ratchets.
//!
//! **Structural rules** over a real token stream ([`lex`] → [`syntax`] →
//! per-file [`facts`], joined across files by [`crossfile`]):
//!
//! - **R7** every `Rng64::stream(seed, key)` call site must build `key`
//!   through the central `raceloc_core::stream_keys` registry, whose
//!   namespace regions the analyzer re-proves pairwise disjoint per seed
//!   domain;
//! - **R8** every telemetry name literal must be registered in the
//!   checked-in `telemetry-catalog.json`, and every catalog entry must
//!   still be alive in the tree;
//! - **R9** (ratcheted) allocation-shaped expressions inside
//!   `// analyze:steady-state` kernels and the fns they call.
//!
//! Findings are suppressed case-by-case with
//! `// analyze:allow(RULE, reason = "...")` — the reason is mandatory and
//! the tree-wide directive count is itself ratcheted. Pre-existing
//! violations live in a checked-in, ratcheted [`baseline`]
//! (`analyze-baseline.json`): any *new* violation fails `--check`, stale
//! allowances fail too until blessed with `--update-baseline`, and counts
//! only go down. Per-file extraction is cached by content hash
//! ([`cache`]), so a warm rescan re-lexes only edited files.
//!
//! Run locally with `cargo run -p raceloc-analyze -- --check`; add
//! `--format sarif` or `--sarif <path>` for SARIF 2.1.0 output.
//!
//! # Examples
//!
//! ```
//! use raceloc_analyze::{mask::MaskedFile, rules};
//!
//! let masked = MaskedFile::new("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
//! let violations = rules::scan_file("crates/pf/src/filter.rs", &masked);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "R1");
//! ```

pub mod baseline;
pub mod cache;
pub mod crossfile;
pub mod facts;
pub mod lex;
pub mod mask;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod syntax;
pub mod workspace;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use cache::ScanCache;
use crossfile::Catalog;
use facts::{AllowFact, FileFacts};
use report::Report;
use rules::Violation;

/// Knobs for [`run_scan_with`].
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Where the incremental cache lives; `None` scans cold and persists
    /// nothing.
    pub cache_path: Option<PathBuf>,
    /// Path of the telemetry catalog; defaults to
    /// `<root>/telemetry-catalog.json`.
    pub catalog_path: Option<PathBuf>,
}

/// Scans every workspace source under `root` and compares against
/// `baseline`, producing the full [`Report`]. Cold (uncached) variant.
///
/// # Errors
///
/// Returns the first I/O error hit while reading sources.
pub fn run_scan(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    run_scan_with(root, baseline, &ScanOptions::default())
}

/// [`run_scan`] with an incremental cache and/or a custom catalog path.
///
/// # Errors
///
/// Returns the first I/O error hit while reading sources. A missing or
/// corrupt cache is not an error (the scan runs cold); a missing catalog
/// is an R8 finding, not an error.
pub fn run_scan_with(
    root: &Path,
    baseline: &Baseline,
    opts: &ScanOptions,
) -> std::io::Result<Report> {
    let files = workspace::collect_sources(root)?;
    let mut scan_cache = opts
        .cache_path
        .as_deref()
        .map(ScanCache::load)
        .unwrap_or_default();

    // Per-file facts, from the cache when the content hash matches.
    let mut files_relexed = 0usize;
    let mut all_facts: Vec<(String, FileFacts)> = Vec::with_capacity(files.len());
    for (path, text) in &files {
        let hash = cache::fnv64(text);
        let facts = match scan_cache.lookup(path, hash) {
            Some(hit) => hit.clone(),
            None => {
                files_relexed += 1;
                let fresh = facts::extract(path, text);
                scan_cache.store(path, hash, fresh.clone());
                fresh
            }
        };
        all_facts.push((path.clone(), facts));
    }

    // Local findings plus the cross-file joins (cheap; run every pass).
    let mut violations: Vec<Violation> = all_facts
        .iter()
        .flat_map(|(_, f)| f.violations.iter().cloned())
        .collect();
    let registry: Vec<facts::RegistryFact> = all_facts
        .iter()
        .find(|(p, _)| p == crossfile::REGISTRY_FILE)
        .map(|(_, f)| f.registry.clone())
        .unwrap_or_default();
    violations.extend(crossfile::registry_violations(
        crossfile::REGISTRY_FILE,
        &registry,
    ));
    violations.extend(crossfile::stream_key_violations(&all_facts, &registry));
    let catalog_path = opts
        .catalog_path
        .clone()
        .unwrap_or_else(|| root.join(crossfile::CATALOG_FILE));
    let catalog = std::fs::read_to_string(&catalog_path)
        .ok()
        .and_then(|t| Catalog::from_json(&t).ok());
    violations.extend(crossfile::telemetry_violations(
        &all_facts,
        catalog.as_ref(),
    ));
    violations.extend(crossfile::steady_state_violations(&all_facts));

    // Suppressions, then the baseline diff.
    let allows: BTreeMap<String, Vec<AllowFact>> = all_facts
        .iter()
        .filter(|(_, f)| !f.allows.is_empty())
        .map(|(p, f)| (p.clone(), f.allows.clone()))
        .collect();
    let sup = crossfile::apply_allows(&allows, violations);
    let verdict = baseline.compare(&sup.violations, sup.directives);

    if let Some(path) = opts.cache_path.as_deref() {
        let scanned: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        scan_cache.retain_paths(&scanned);
        // Persistence failures only cost the next run time, never
        // correctness; surface nothing.
        let _ = scan_cache.save(path);
    }

    Ok(Report {
        violations: sup.violations,
        verdict,
        files_scanned: files.len(),
        files_relexed,
        suppressions: sup.directives,
        suppressed_findings: sup.matched,
    })
}
