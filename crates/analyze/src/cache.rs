//! The incremental-scan cache: per-file [`FileFacts`] keyed by an FNV-64
//! content hash, persisted as JSON under `target/`.
//!
//! Facts are a pure function of `(path, contents)`, so a file whose hash
//! is unchanged skips the lex/parse/extract pipeline entirely — a warm
//! rescan after a one-file edit re-lexes only that file. The cache is
//! invalidated wholesale when [`RULES_VERSION`] changes (rules read facts
//! differently) and degrades to a cold scan when missing or corrupt; it
//! never affects scan *results*, only scan *time*.

use std::collections::BTreeMap;
use std::path::Path;

use raceloc_obs::Json;

use crate::facts::FileFacts;

/// Bump on any change to fact extraction or rule semantics: stale facts
/// from an older analyzer must not satisfy a newer scan. Also part of the
/// CI cache key.
pub const RULES_VERSION: &str = "2026-08-07.r9";

/// The persisted cache: `path → (content hash, facts)`.
#[derive(Debug, Default)]
pub struct ScanCache {
    entries: BTreeMap<String, (u64, FileFacts)>,
    /// Whether the loaded document was usable (matching version).
    pub warm: bool,
}

/// FNV-1a over the file contents: fast, dependency-free, and stable
/// across platforms. Collisions only cost a stale-facts reuse within one
/// developer checkout; content hashes never cross machines.
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ScanCache {
    /// Loads the cache from `path`; missing, corrupt, or version-skewed
    /// documents yield a cold (empty) cache.
    pub fn load(path: &Path) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::default();
        };
        let Ok(doc) = Json::parse(&text) else {
            return Self::default();
        };
        if doc.get("rules_version").and_then(Json::as_str) != Some(RULES_VERSION) {
            return Self::default();
        }
        let Some(files) = doc.get("files").and_then(Json::as_object) else {
            return Self::default();
        };
        let mut entries = BTreeMap::new();
        for (file, entry) in files {
            let hash = entry
                .get("hash")
                .and_then(Json::as_str)
                .and_then(|h| h.strip_prefix("0x"))
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            let facts = entry.get("facts").and_then(FileFacts::from_json);
            if let (Some(hash), Some(facts)) = (hash, facts) {
                entries.insert(file.clone(), (hash, facts));
            }
        }
        Self {
            entries,
            warm: true,
        }
    }

    /// The cached facts for `path` when its content hash still matches.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<&FileFacts> {
        self.entries
            .get(path)
            .and_then(|(h, facts)| (*h == hash).then_some(facts))
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replaces the cache contents with this scan's facts (dropped files
    /// age out automatically — only scanned paths are written back).
    pub fn store(&mut self, path: &str, hash: u64, facts: FileFacts) {
        self.entries.insert(path.to_string(), (hash, facts));
    }

    /// Drops entries for paths not in `scanned` (deleted files).
    pub fn retain_paths(&mut self, scanned: &[&str]) {
        let keep: std::collections::BTreeSet<&str> = scanned.iter().copied().collect();
        self.entries.retain(|k, _| keep.contains(k.as_str()));
    }

    /// Serializes the cache document. Hashes go as hex strings: `Json`
    /// numbers are `f64` and would corrupt 64-bit hashes.
    pub fn to_json(&self) -> String {
        let files: Vec<(String, Json)> = self
            .entries
            .iter()
            .map(|(file, (hash, facts))| {
                (
                    file.clone(),
                    Json::Obj(vec![
                        ("hash".to_string(), Json::Str(format!("{hash:#x}"))),
                        ("facts".to_string(), facts.to_json()),
                    ]),
                )
            })
            .collect();
        let doc = Json::Obj(vec![
            (
                "rules_version".to_string(),
                Json::Str(RULES_VERSION.to_string()),
            ),
            ("files".to_string(), Json::Obj(files)),
        ]);
        format!("{doc}\n")
    }

    /// Persists to `path`, creating parent directories as needed. Save
    /// failures are non-fatal for the scan; the caller decides whether to
    /// surface them.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), fnv64("a"));
        assert_ne!(fnv64("a"), fnv64("b"));
    }

    #[test]
    fn round_trips_and_honors_hash_mismatches() {
        let src = "fn f(t: &T) { t.add(\"pf.motion\", 1); }\n";
        let facts = extract("crates/pf/src/x.rs", src);
        let mut cache = ScanCache::default();
        cache.store("crates/pf/src/x.rs", fnv64(src), facts.clone());

        let dir = std::env::temp_dir().join("raceloc-analyze-cache-test");
        let path = dir.join("cache.json");
        cache.save(&path).expect("writable temp dir");
        let back = ScanCache::load(&path);
        assert!(back.warm);
        assert_eq!(
            back.lookup("crates/pf/src/x.rs", fnv64(src)),
            Some(&facts),
            "hit on matching hash"
        );
        assert_eq!(
            back.lookup("crates/pf/src/x.rs", fnv64("edited")),
            None,
            "miss after an edit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_and_corruption_cold_start() {
        let dir = std::env::temp_dir().join("raceloc-analyze-cache-skew");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cache.json");
        std::fs::write(&path, "{\"rules_version\": \"older\", \"files\": {}}\n").expect("write");
        assert!(!ScanCache::load(&path).warm, "version skew → cold");
        std::fs::write(&path, "not json").expect("write");
        assert!(!ScanCache::load(&path).warm, "corruption → cold");
        assert!(!ScanCache::load(&dir.join("missing.json")).warm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retain_drops_deleted_files() {
        let mut cache = ScanCache::default();
        cache.store("a.rs", 1, FileFacts::default());
        cache.store("b.rs", 2, FileFacts::default());
        cache.retain_paths(&["a.rs"]);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("a.rs", 1).is_some());
    }
}
