//! Per-file structural *facts*: everything the cross-file rules (R7, R8,
//! R9) and the suppression machinery need to know about one source file,
//! extracted once per content hash and cached by [`crate::cache`].
//!
//! A [`FileFacts`] is a pure function of `(path, file contents)` — it
//! never looks at other files — which is what makes the incremental scan
//! sound: an unchanged file's facts can be reused verbatim, and only the
//! cheap cross-file joins re-run on every pass.

use raceloc_obs::Json;

use crate::lex::{self, TokenKind};
use crate::mask::MaskedFile;
use crate::rules::{self, intern_rule, Severity, Violation};
use crate::syntax::{Directive, Syntax};

/// Telemetry write/read APIs whose first string-literal argument is a
/// metric name rule R8 resolves against the catalog.
pub const TEL_APIS: [&str; 6] = ["span", "time", "record_span", "add", "counter", "histogram"];

/// One `Rng64::stream(seed, key)` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Source text of the key argument, for diagnostics.
    pub key_text: String,
    /// `stream_keys::<name>` constructors referenced by the key argument.
    pub key_names: Vec<String>,
    /// Whether the call sits in `#[cfg(test)]` code.
    pub in_test: bool,
}

/// One telemetry call with a literal metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Which API was called (`add`, `span`, …).
    pub api: String,
    /// The literal metric name.
    pub name: String,
    /// Whether the call sits in `#[cfg(test)]` code.
    pub in_test: bool,
}

/// One allocation-shaped expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocHit {
    /// 1-based line of the expression.
    pub line: usize,
    /// What was matched (`Vec::new`, `.push(..)`, `format!`, …).
    pub what: String,
}

/// The R9-relevant view of one `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFacts {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether an `analyze:steady-state` directive marks this fn.
    pub steady: bool,
    /// Whether the fn sits in `#[cfg(test)]` code.
    pub in_test: bool,
    /// Names this fn calls (deduplicated), for the one-level closure.
    pub callees: Vec<String>,
    /// Allocation-shaped expressions in the body.
    pub allocs: Vec<AllocHit>,
}

/// One well-formed `analyze:allow` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowFact {
    /// The suppressed rule.
    pub rule: String,
    /// The mandatory rationale.
    pub reason: String,
    /// 1-based line of the directive comment.
    pub line: usize,
}

/// One structurally parsed `StreamNamespace { .. }` registry entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryFact {
    /// Namespace name.
    pub name: String,
    /// Seed domain.
    pub domain: String,
    /// Region low bound (inclusive).
    pub lo: u64,
    /// Region high bound (inclusive).
    pub hi: u64,
    /// 1-based line of the entry.
    pub line: usize,
}

/// Everything the analyzer knows about one file in isolation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileFacts {
    /// Local findings: R1–R6 plus malformed-directive denials.
    pub violations: Vec<Violation>,
    /// `Rng64::stream` call sites (R7).
    pub stream_sites: Vec<StreamSite>,
    /// Telemetry calls with literal names (R8).
    pub tel_sites: Vec<TelSite>,
    /// Every string literal outside `#[cfg(test)]` code, as
    /// `(line, value)` — R8 liveness and the domain-prefix rule.
    pub literals: Vec<(usize, String)>,
    /// `fn` items with their callees and allocation hits (R9).
    pub fns: Vec<FnFacts>,
    /// Well-formed suppressions.
    pub allows: Vec<AllowFact>,
    /// `StreamNamespace` registry entries found in this file (only the
    /// stream-key registry module has any).
    pub registry: Vec<RegistryFact>,
}

/// How far below its comment an `analyze:steady-state` directive still
/// attaches to a `fn` item (attribute lines may sit in between).
const STEADY_ATTACH_WINDOW: usize = 3;

/// Extracts the facts for one file. `path` is workspace-relative with
/// `/` separators.
pub fn extract(path: &str, text: &str) -> FileFacts {
    let masked = MaskedFile::new(text);
    let syn = Syntax::build(lex::lex(text));
    let in_test = |line: usize| masked.is_test_line(line.saturating_sub(1));

    let mut facts = FileFacts {
        violations: rules::scan_file(path, &masked),
        ..FileFacts::default()
    };

    // Directives.
    let mut steady_lines = Vec::new();
    for d in &syn.directives {
        match d {
            Directive::Allow { rule, reason, line } => facts.allows.push(AllowFact {
                rule: rule.clone(),
                reason: reason.clone(),
                line: *line,
            }),
            Directive::SteadyState { line } => steady_lines.push(*line),
            Directive::Malformed { line, why } => {
                if !in_test(*line) {
                    facts.violations.push(Violation {
                        file: path.to_string(),
                        line: *line,
                        rule: "allow",
                        message: why.clone(),
                        severity: Severity::Deny,
                    });
                }
            }
        }
    }

    // String literals outside test code.
    for t in &syn.tokens {
        if t.kind == TokenKind::Str && !in_test(t.line) {
            facts.literals.push((t.line, t.text.clone()));
        }
    }

    // fn items with innermost-attributed callees and allocation hits.
    let mut fn_facts: Vec<FnFacts> = syn
        .fns
        .iter()
        .map(|f| FnFacts {
            name: f.name.clone(),
            line: f.line,
            steady: steady_lines
                .iter()
                .any(|l| f.line >= *l && f.line <= l + STEADY_ATTACH_WINDOW),
            in_test: in_test(f.line),
            callees: Vec::new(),
            allocs: Vec::new(),
        })
        .collect();

    for call in &syn.calls {
        // Stream sites (R7).
        if !call.method
            && !call.macro_call
            && call.name == "stream"
            && call.path.len() >= 2
            && call.path[call.path.len() - 2] == "Rng64"
        {
            let key = call.args.get(1).copied();
            let key_names = key
                .map(|k| {
                    syn.paths_in(k)
                        .iter()
                        .flat_map(|p| {
                            p.windows(2)
                                .filter(|w| w[0] == "stream_keys")
                                .map(|w| w[1].clone())
                                .collect::<Vec<_>>()
                        })
                        .collect()
                })
                .unwrap_or_default();
            facts.stream_sites.push(StreamSite {
                line: call.line,
                key_text: key.map(|k| syn.arg_text(k)).unwrap_or_default(),
                key_names,
                in_test: in_test(call.line),
            });
        }

        // Telemetry sites (R8).
        if call.method && TEL_APIS.contains(&call.name.as_str()) {
            if let Some(name) = call.args.first().and_then(|a| syn.arg_str_literal(*a)) {
                facts.tel_sites.push(TelSite {
                    line: call.line,
                    api: call.name.clone(),
                    name: name.to_string(),
                    in_test: in_test(call.line),
                });
            }
        }

        // Attribute the call to its innermost enclosing fn (R9).
        if let Some(idx) = syn.enclosing_fn(call.tok) {
            let f = &mut fn_facts[idx];
            if !f.callees.contains(&call.name) {
                f.callees.push(call.name.clone());
            }
            if let Some(what) = alloc_shape(call.method, call.macro_call, &call.name, &call.path) {
                f.allocs.push(AllocHit {
                    line: call.line,
                    what,
                });
            }
        }
    }
    facts.fns = fn_facts;

    // Registry entries (R7): `StreamNamespace { field: literal, .. }`.
    extract_registry(path, &syn, &in_test, &mut facts);

    facts
}

/// Classifies a call as allocation-shaped for R9, returning its label.
fn alloc_shape(method: bool, macro_call: bool, name: &str, path: &[String]) -> Option<String> {
    if macro_call {
        return matches!(name, "format" | "vec").then(|| format!("{name}!(..)"));
    }
    if method {
        return matches!(name, "to_vec" | "to_string" | "collect" | "clone" | "push")
            .then(|| format!(".{name}(..)"));
    }
    if path.len() >= 2 {
        let ty = &path[path.len() - 2];
        let ok = matches!(
            (ty.as_str(), name),
            ("Vec" | "Box" | "String", "new")
                | ("Vec" | "String", "with_capacity")
                | ("String", "from")
        );
        if ok {
            return Some(format!("{ty}::{name}"));
        }
    }
    None
}

/// Parses `StreamNamespace { name: "..", domain: "..", lo: N, hi: N, .. }`
/// struct literals (skipping the type's own definition and test code).
/// Non-literal field values are an R7 violation: the analyzer cannot
/// evaluate Rust, so the registry table must stay literal.
fn extract_registry(
    path: &str,
    syn: &Syntax,
    in_test: &dyn Fn(usize) -> bool,
    facts: &mut FileFacts,
) {
    let toks = &syn.tokens;
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_entry = toks[i].is_ident("StreamNamespace")
            && toks[i + 1].is_punct('{')
            && !(i > 0 && (toks[i - 1].is_ident("struct") || toks[i - 1].is_ident("impl")))
            && !in_test(toks[i].line);
        if !is_entry {
            i += 1;
            continue;
        }
        let entry_line = toks[i].line;
        let mut name = None;
        let mut domain = None;
        let mut lo = None;
        let mut hi = None;
        let mut bad = None;
        let mut j = i + 2;
        loop {
            match toks.get(j) {
                None => {
                    bad = bad.or(Some("unterminated entry".to_string()));
                    break;
                }
                Some(t) if t.is_punct('}') => {
                    j += 1;
                    break;
                }
                Some(field) if field.kind == TokenKind::Ident => {
                    let colon = toks.get(j + 1).is_some_and(|t| t.is_punct(':'));
                    let value = toks.get(j + 2);
                    let delim = toks
                        .get(j + 3)
                        .is_some_and(|t| t.is_punct(',') || t.is_punct('}'));
                    let lit =
                        value.is_some_and(|v| matches!(v.kind, TokenKind::Str | TokenKind::Number));
                    if !(colon && lit && delim) {
                        bad = bad.or(Some(format!(
                            "field `{}` of the `StreamNamespace` entry is not a plain \
                             string/integer literal; the registry table must stay literal \
                             so the analyzer can prove region disjointness",
                            field.text
                        )));
                        break;
                    }
                    let value = value.expect("checked above");
                    match field.text.as_str() {
                        "name" => name = Some(value.text.clone()),
                        "domain" => domain = Some(value.text.clone()),
                        "lo" => lo = lex::parse_u64_literal(&value.text),
                        "hi" => hi = lex::parse_u64_literal(&value.text),
                        _ => {}
                    }
                    j += 3;
                    if toks.get(j).is_some_and(|t| t.is_punct(',')) {
                        j += 1;
                    }
                }
                Some(_) => {
                    bad = bad.or(Some("unexpected token in entry".to_string()));
                    break;
                }
            }
        }
        if let Some(why) = bad {
            facts.violations.push(Violation {
                file: path.to_string(),
                line: entry_line,
                rule: "R7",
                message: why,
                severity: Severity::Deny,
            });
        } else {
            match (name, domain, lo, hi) {
                (Some(name), Some(domain), Some(lo), Some(hi)) => {
                    facts.registry.push(RegistryFact {
                        name,
                        domain,
                        lo,
                        hi,
                        line: entry_line,
                    });
                }
                _ => facts.violations.push(Violation {
                    file: path.to_string(),
                    line: entry_line,
                    rule: "R7",
                    message: "`StreamNamespace` entry is missing one of the required \
                              literal fields `name`, `domain`, `lo`, `hi`"
                        .to_string(),
                    severity: Severity::Deny,
                }),
            }
        }
        i = j.max(i + 1);
    }
}

// ---------------------------------------------------------------------
// Cache (de)serialization. Hand-rolled over `raceloc_obs::Json`, like
// every other persisted document in the workspace.
// ---------------------------------------------------------------------

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Deny => "deny",
        Severity::Advisory => "advisory",
        Severity::Ratchet => "ratchet",
    }
}

fn severity_of(s: &str) -> Option<Severity> {
    match s {
        "deny" => Some(Severity::Deny),
        "advisory" => Some(Severity::Advisory),
        "ratchet" => Some(Severity::Ratchet),
        _ => None,
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn n(v: usize) -> Json {
    Json::num(v as f64)
}

/// `u64` values round-trip as hex strings: `Json` numbers are `f64` and
/// would silently lose precision above 2^53 (registry bounds use the full
/// 64 bits).
fn hex(v: u64) -> Json {
    Json::Str(format!("{v:#x}"))
}

fn get_str(j: &Json, k: &str) -> Option<String> {
    j.get(k).and_then(Json::as_str).map(str::to_string)
}

fn get_usize(j: &Json, k: &str) -> Option<usize> {
    j.get(k).and_then(Json::as_u64).map(|v| v as usize)
}

fn get_hex(j: &Json, k: &str) -> Option<u64> {
    j.get(k)
        .and_then(Json::as_str)
        .and_then(|v| v.strip_prefix("0x"))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
}

impl FileFacts {
    /// Serializes to the cache's JSON value.
    pub fn to_json(&self) -> Json {
        obj(vec![
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            obj(vec![
                                ("file", s(&v.file)),
                                ("line", n(v.line)),
                                ("rule", s(v.rule)),
                                ("message", s(&v.message)),
                                ("severity", s(severity_str(v.severity))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stream_sites",
                Json::Arr(
                    self.stream_sites
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("line", n(t.line)),
                                ("key_text", s(&t.key_text)),
                                (
                                    "key_names",
                                    Json::Arr(t.key_names.iter().map(|k| s(k)).collect()),
                                ),
                                ("in_test", Json::Bool(t.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tel_sites",
                Json::Arr(
                    self.tel_sites
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("line", n(t.line)),
                                ("api", s(&t.api)),
                                ("name", s(&t.name)),
                                ("in_test", Json::Bool(t.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "literals",
                Json::Arr(
                    self.literals
                        .iter()
                        .map(|(line, v)| Json::Arr(vec![n(*line), s(v)]))
                        .collect(),
                ),
            ),
            (
                "fns",
                Json::Arr(
                    self.fns
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("name", s(&f.name)),
                                ("line", n(f.line)),
                                ("steady", Json::Bool(f.steady)),
                                ("in_test", Json::Bool(f.in_test)),
                                (
                                    "callees",
                                    Json::Arr(f.callees.iter().map(|c| s(c)).collect()),
                                ),
                                (
                                    "allocs",
                                    Json::Arr(
                                        f.allocs
                                            .iter()
                                            .map(|a| Json::Arr(vec![n(a.line), s(&a.what)]))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "allows",
                Json::Arr(
                    self.allows
                        .iter()
                        .map(|a| {
                            obj(vec![
                                ("rule", s(&a.rule)),
                                ("reason", s(&a.reason)),
                                ("line", n(a.line)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "registry",
                Json::Arr(
                    self.registry
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("name", s(&r.name)),
                                ("domain", s(&r.domain)),
                                ("lo", hex(r.lo)),
                                ("hi", hex(r.hi)),
                                ("line", n(r.line)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a cache value; `None` on any shape mismatch (the
    /// caller re-extracts from source, so corruption only costs time).
    pub fn from_json(j: &Json) -> Option<Self> {
        let mut out = FileFacts::default();
        for v in j.get("violations")?.as_array()? {
            let sev = severity_of(&get_str(v, "severity")?)?;
            out.violations.push(Violation {
                file: get_str(v, "file")?,
                line: get_usize(v, "line")?,
                rule: intern_rule(&get_str(v, "rule")?),
                message: get_str(v, "message")?,
                severity: sev,
            });
        }
        for t in j.get("stream_sites")?.as_array()? {
            out.stream_sites.push(StreamSite {
                line: get_usize(t, "line")?,
                key_text: get_str(t, "key_text")?,
                key_names: t
                    .get("key_names")?
                    .as_array()?
                    .iter()
                    .filter_map(|k| k.as_str().map(str::to_string))
                    .collect(),
                in_test: matches!(t.get("in_test"), Some(Json::Bool(true))),
            });
        }
        for t in j.get("tel_sites")?.as_array()? {
            out.tel_sites.push(TelSite {
                line: get_usize(t, "line")?,
                api: get_str(t, "api")?,
                name: get_str(t, "name")?,
                in_test: matches!(t.get("in_test"), Some(Json::Bool(true))),
            });
        }
        for l in j.get("literals")?.as_array()? {
            let pair = l.as_array()?;
            out.literals.push((
                pair.first()?.as_u64()? as usize,
                pair.get(1)?.as_str()?.to_string(),
            ));
        }
        for f in j.get("fns")?.as_array()? {
            let mut allocs = Vec::new();
            for a in f.get("allocs")?.as_array()? {
                let pair = a.as_array()?;
                allocs.push(AllocHit {
                    line: pair.first()?.as_u64()? as usize,
                    what: pair.get(1)?.as_str()?.to_string(),
                });
            }
            out.fns.push(FnFacts {
                name: get_str(f, "name")?,
                line: get_usize(f, "line")?,
                steady: matches!(f.get("steady"), Some(Json::Bool(true))),
                in_test: matches!(f.get("in_test"), Some(Json::Bool(true))),
                callees: f
                    .get("callees")?
                    .as_array()?
                    .iter()
                    .filter_map(|c| c.as_str().map(str::to_string))
                    .collect(),
                allocs,
            });
        }
        for a in j.get("allows")?.as_array()? {
            out.allows.push(AllowFact {
                rule: get_str(a, "rule")?,
                reason: get_str(a, "reason")?,
                line: get_usize(a, "line")?,
            });
        }
        for r in j.get("registry")?.as_array()? {
            out.registry.push(RegistryFact {
                name: get_str(r, "name")?,
                domain: get_str(r, "domain")?,
                lo: get_hex(r, "lo")?,
                hi: get_hex(r, "hi")?,
                line: get_usize(r, "line")?,
            });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_stream_sites_with_registry_names() {
        let f = extract(
            "crates/pf/src/x.rs",
            "fn f(seed: u64, e: u64, c: u64) {\n    let r = Rng64::stream(seed, stream_keys::pf_motion(e, c));\n    let bad = Rng64::stream(seed, (e << 32) | c);\n}\n",
        );
        assert_eq!(f.stream_sites.len(), 2);
        assert_eq!(f.stream_sites[0].key_names, ["pf_motion"]);
        assert!(f.stream_sites[1].key_names.is_empty());
        assert!(
            f.stream_sites[1].key_text.contains('<'),
            "{}",
            f.stream_sites[1].key_text
        );
    }

    #[test]
    fn extracts_tel_sites_and_literals_outside_tests() {
        let f = extract(
            "crates/sim/src/x.rs",
            "fn f(tel: &T) {\n    tel.add(\"sim.predict\", 1);\n    let name = \"faults.latency.steps\";\n}\n#[cfg(test)]\nmod tests {\n    fn t(tel: &T) { tel.add(\"test.only\", 1); }\n}\n",
        );
        assert_eq!(f.tel_sites.len(), 2);
        assert_eq!(f.tel_sites[0].name, "sim.predict");
        assert_eq!(f.tel_sites[0].api, "add");
        assert!(!f.tel_sites[0].in_test);
        // Test-code sites are recorded but flagged; crossfile skips them.
        assert_eq!(f.tel_sites[1].name, "test.only");
        assert!(f.tel_sites[1].in_test);
        let lits: Vec<&str> = f.literals.iter().map(|(_, v)| v.as_str()).collect();
        assert!(lits.contains(&"faults.latency.steps"));
        assert!(!lits.contains(&"test.only"));
    }

    #[test]
    fn steady_marker_attaches_through_attributes() {
        let f = extract(
            "crates/pf/src/x.rs",
            "// analyze:steady-state\n#[inline]\nfn kernel(v: &mut Vec<f64>) {\n    v.push(1.0);\n    let s = format!(\"x\");\n}\nfn other() { let v = Vec::new(); }\n",
        );
        let kernel = f.fns.iter().find(|f| f.name == "kernel").expect("kernel");
        assert!(kernel.steady);
        let whats: Vec<&str> = kernel.allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(whats, [".push(..)", "format!(..)"]);
        let other = f.fns.iter().find(|f| f.name == "other").expect("other");
        assert!(!other.steady);
        assert_eq!(other.allocs.len(), 1);
        assert_eq!(other.allocs[0].what, "Vec::new");
    }

    #[test]
    fn malformed_directives_are_deny_findings() {
        let f = extract("crates/pf/src/x.rs", "// analyze:allow(R1)\nfn f() {}\n");
        assert_eq!(f.violations.len(), 1);
        assert_eq!(f.violations[0].rule, "allow");
        assert_eq!(f.violations[0].severity, Severity::Deny);
        assert!(f.allows.is_empty());
    }

    #[test]
    fn parses_registry_entries_and_rejects_non_literals() {
        let good = extract(
            "crates/core/src/stream_keys.rs",
            "pub const REGISTRY: [StreamNamespace; 1] = [StreamNamespace {\n    name: \"pf_motion\",\n    domain: \"run\",\n    layout: \"x\",\n    lo: 0x0000_0001_0000_0000,\n    hi: 0x00FF_FFFF_FFFF_FFFF,\n}];\n",
        );
        assert_eq!(good.registry.len(), 1);
        let r = &good.registry[0];
        assert_eq!((r.name.as_str(), r.domain.as_str()), ("pf_motion", "run"));
        assert_eq!((r.lo, r.hi), (0x0000_0001_0000_0000, 0x00FF_FFFF_FFFF_FFFF));

        let bad = extract(
            "crates/core/src/stream_keys.rs",
            "const X: StreamNamespace = StreamNamespace { name: \"a\", domain: \"run\", lo: BASE, hi: 0xFF };\n",
        );
        assert!(bad.registry.is_empty());
        assert!(bad.violations.iter().any(|v| v.rule == "R7"));

        // The struct definition itself is not an entry.
        let def = extract(
            "crates/core/src/stream_keys.rs",
            "pub struct StreamNamespace {\n    pub name: &'static str,\n    pub lo: u64,\n}\n",
        );
        assert!(def.registry.is_empty());
        assert!(def.violations.is_empty());
    }

    #[test]
    fn facts_round_trip_through_cache_json() {
        let src = "// analyze:steady-state\nfn kernel(v: &mut Vec<u64>, seed: u64) {\n    v.push(Rng64::stream(seed, stream_keys::fault_scan(0)).next_u64());\n    tel.add(\"pf.motion\", 1); // analyze:allow(R8, reason = \"demo\")\n}\n";
        let f = extract("crates/pf/src/x.rs", src);
        assert!(!f.stream_sites.is_empty());
        assert!(!f.tel_sites.is_empty());
        assert!(!f.allows.is_empty());
        let back = FileFacts::from_json(&f.to_json()).expect("round-trips");
        assert_eq!(f, back);
    }

    #[test]
    fn registry_bounds_survive_the_full_u64_range() {
        let f = extract(
            "x.rs",
            "const R: [StreamNamespace; 1] = [StreamNamespace { name: \"w\", domain: \"m\", lo: 0x0, hi: 0xFFFF_FFFF_FFFF_FFFF }];\n",
        );
        let back = FileFacts::from_json(&f.to_json()).expect("round-trips");
        assert_eq!(
            back.registry[0].hi,
            u64::MAX,
            "hex strings keep 64-bit precision"
        );
    }
}
