//! Workspace file discovery: which `.rs` files the pass scans.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored third-party stubs,
/// and VCS metadata.
const SKIP_DIRS: [&str; 4] = ["target", "third_party", ".git", "node_modules"];

/// Workspace-relative directories never scanned: the analyzer's fixture
/// corpus is deliberately full of known-bad snippets and must not trip
/// the self-scan (the fixture table test reads those files itself).
const SKIP_RELATIVE: [&str; 1] = ["crates/analyze/tests/fixtures"];

/// Collects every workspace-owned `.rs` file under `root`, returned as
/// `(relative_path, contents)` with `/`-separated relative paths, sorted
/// for deterministic reports.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref())
                    || name.starts_with('.')
                    || SKIP_RELATIVE.contains(&relative(root, &path).as_str())
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let text = fs::read_to_string(&path)?;
                files.push((relative(root, &path), text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to find the workspace root: the first
/// directory containing both `Cargo.toml` and a `crates/` subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_real_workspace_root_from_the_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/analyze");
        assert!(root.join("crates/analyze/Cargo.toml").is_file());
    }

    #[test]
    fn collects_and_relativizes_sources() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect_sources(&root).expect("walk succeeds");
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"crates/analyze/src/workspace.rs"));
        assert!(paths.contains(&"src/lib.rs"));
        assert!(!paths.iter().any(|p| p.starts_with("target/")));
        assert!(!paths.iter().any(|p| p.starts_with("third_party/")));
        assert!(
            !paths
                .iter()
                .any(|p| p.starts_with("crates/analyze/tests/fixtures/")),
            "the known-bad fixture corpus must not reach the self-scan"
        );
        // Sorted and unique.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, paths);
    }
}
