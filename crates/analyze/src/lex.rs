//! A lightweight Rust lexer producing a token stream with *values*.
//!
//! [`crate::mask`] deliberately blanks comments and string literals so the
//! token-matching rules (R1–R6) cannot be fooled by prose. The structural
//! rules added in PR 7 need the opposite: R7 resolves call-site argument
//! expressions, R8 reads telemetry *name literals*, and the suppression /
//! steady-state directives live inside comments. This module lexes the
//! raw source into:
//!
//! - [`Token`]s — identifiers, numbers, string/char literals (with their
//!   decoded values), lifetimes, and single-character punctuation — each
//!   tagged with its 1-based line;
//! - [`Comment`]s — the inner text of every `//`-style and `/* */`-style
//!   comment (doc comments included), for directive parsing.
//!
//! The lexer is intentionally not a full Rust grammar: it recognizes
//! exactly the token shapes the analyzer's structural layer consumes, and
//! it must agree with [`crate::mask`] on where strings and comments begin
//! and end (the mask regression tests in `tests/mask_edge_cases.rs` pin
//! the shared edge cases: nested block comments, raw strings, byte
//! strings).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Rng64`, `stream_keys`, …).
    Ident,
    /// Numeric literal, suffix included (`3`, `0xFA00_0000u64`, `1.5e-3`).
    Number,
    /// String literal; [`Token::text`] holds the *decoded value* (raw and
    /// byte strings included, prefixes and quoting stripped).
    Str,
    /// Char or byte literal; [`Token::text`] holds the decoded value.
    Char,
    /// Lifetime (`'a`); [`Token::text`] holds the name without the quote.
    Lifetime,
    /// One punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexeme with its decoded text and source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// Identifier/number spelling, decoded string/char value, lifetime
    /// name, or the punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// The inner text of one comment (delimiters stripped), with the line it
/// starts on. Block comments keep their embedded newlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment opener.
    pub line: usize,
    /// Text between the delimiters (`//`, `///`, `//!`, `/* */`).
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs consume
/// to end of input rather than erroring: the analyzer must never panic on
/// weird-but-compiling (or even non-compiling) source.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines. Only called on ASCII
    /// boundaries; multi-byte chars are skipped with [`Self::bump_char`].
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_char(&mut self) {
        if let Some(c) = self.src[self.pos..].chars().next() {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += c.len_utf8();
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0),
                b'r' | b'b' => {
                    if let Some(hashes) = self.raw_string_open() {
                        self.raw_string(hashes);
                    } else if b == b'b' && self.peek(1) == Some(b'"') {
                        self.bump(); // the b prefix
                        self.string(0);
                    } else if b == b'b' && self.peek(1) == Some(b'\'') {
                        self.bump();
                        self.char_or_lifetime();
                    } else {
                        self.ident();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii() => {
                    if !b.is_ascii_whitespace() {
                        let line = self.line;
                        self.push(TokenKind::Punct, (b as char).to_string(), line);
                    }
                    self.bump();
                }
                _ => self.bump_char(),
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // Strip the doc marker so `/// analyze:...` parses the same.
        if matches!(self.peek(0), Some(b'/' | b'!')) {
            self.bump();
        }
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump_char();
        }
        self.out.comments.push(Comment {
            line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        if matches!(self.peek(0), Some(b'*' | b'!')) && self.peek(1) != Some(b'/') {
            self.bump();
        }
        let start = self.pos;
        let mut depth = 1usize;
        let mut end;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    self.out.comments.push(Comment {
                        line,
                        text: self.src[start..end].to_string(),
                    });
                    return;
                }
            } else {
                self.bump_char();
            }
        }
        // Unterminated: keep what we saw.
        self.out.comments.push(Comment {
            line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    /// Detects `r"`, `r#"`, `br"`, `br#"`… at the cursor; returns the hash
    /// count when it opens a raw string.
    fn raw_string_open(&self) -> Option<usize> {
        let mut i = 0usize;
        if self.peek(i) == Some(b'b') {
            i += 1;
        }
        if self.peek(i) != Some(b'r') {
            return None;
        }
        i += 1;
        let mut hashes = 0usize;
        while self.peek(i) == Some(b'#') {
            hashes += 1;
            i += 1;
        }
        (self.peek(i) == Some(b'"')).then_some(hashes)
    }

    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        // Skip prefix (b, r, hashes, quote).
        while self.peek(0) != Some(b'"') {
            self.bump();
        }
        self.bump();
        let start = self.pos;
        let mut value_end;
        loop {
            match self.peek(0) {
                None => {
                    value_end = self.pos;
                    break;
                }
                Some(b'"') => {
                    value_end = self.pos;
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                _ => self.bump_char(),
            }
        }
        let value = self.src[start..value_end].to_string();
        self.push(TokenKind::Str, value, line);
    }

    /// Lexes a (non-raw) string starting at the opening quote; `_prefix`
    /// bytes before it were already consumed by the caller.
    fn string(&mut self, _prefix: usize) {
        let line = self.line;
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    self.escape_into(&mut value);
                }
                Some(_) => {
                    if let Some(c) = self.src[self.pos..].chars().next() {
                        value.push(c);
                    }
                    self.bump_char();
                }
            }
        }
        self.push(TokenKind::Str, value, line);
    }

    /// Decodes one escape (cursor is just past the backslash).
    fn escape_into(&mut self, value: &mut String) {
        match self.peek(0) {
            Some(b'n') => {
                value.push('\n');
                self.bump();
            }
            Some(b't') => {
                value.push('\t');
                self.bump();
            }
            Some(b'r') => {
                value.push('\r');
                self.bump();
            }
            Some(b'0') => {
                value.push('\0');
                self.bump();
            }
            Some(b'\\') => {
                value.push('\\');
                self.bump();
            }
            Some(b'"') => {
                value.push('"');
                self.bump();
            }
            Some(b'\'') => {
                value.push('\'');
                self.bump();
            }
            Some(b'u') => {
                // \u{HEX}
                self.bump();
                if self.peek(0) == Some(b'{') {
                    self.bump();
                    let start = self.pos;
                    while self.peek(0).is_some_and(|b| b != b'}') {
                        self.bump();
                    }
                    if let Ok(cp) = u32::from_str_radix(&self.src[start..self.pos], 16) {
                        if let Some(c) = char::from_u32(cp) {
                            value.push(c);
                        }
                    }
                    if self.peek(0) == Some(b'}') {
                        self.bump();
                    }
                }
            }
            Some(b'x') => {
                // \xNN
                self.bump();
                let start = self.pos;
                for _ in 0..2 {
                    if self.peek(0).is_some_and(|b| b.is_ascii_hexdigit()) {
                        self.bump();
                    }
                }
                if let Ok(b) = u8::from_str_radix(&self.src[start..self.pos], 16) {
                    value.push(b as char);
                }
            }
            Some(b'\n') => {
                // Line-continuation escape: swallow the newline and
                // following indentation, contributing nothing.
                self.bump();
                while self.peek(0).is_some_and(|b| b == b' ' || b == b'\t') {
                    self.bump();
                }
            }
            Some(_) => self.bump_char(),
            None => {}
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal)
    /// with the same lookahead rule as [`crate::mask`].
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.src[self.pos + 1..].chars().next();
        if let Some(c) = next {
            if (c.is_alphabetic() || c == '_') && c != '\'' {
                // Find the char after the ident run; a closing quote makes
                // it a char literal ('a'), anything else a lifetime ('a).
                let rest = &self.src[self.pos + 1..];
                let ident_len: usize = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .map(char::len_utf8)
                    .sum();
                if !rest[ident_len..].starts_with('\'') {
                    self.bump(); // quote
                    let start = self.pos;
                    for _ in 0..rest[..ident_len].chars().count() {
                        self.bump_char();
                    }
                    let name = self.src[start..self.pos].to_string();
                    self.push(TokenKind::Lifetime, name, line);
                    return;
                }
            }
        }
        // Char literal.
        self.bump(); // opening quote
        let mut value = String::new();
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                self.escape_into(&mut value);
            }
            Some(_) => {
                if let Some(c) = self.src[self.pos..].chars().next() {
                    value.push(c);
                }
                self.bump_char();
            }
            None => {}
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        self.push(TokenKind::Char, value, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut prev = b'0';
        while let Some(b) = self.peek(0) {
            let keep = b.is_ascii_alphanumeric()
                || b == b'_'
                // A decimal point, but not the start of a `..` range and
                // only after a digit (so `xs[0].iter()` stops at the dot).
                || (b == b'.'
                    && prev.is_ascii_digit()
                    && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
                // Exponent sign.
                || ((b == b'+' || b == b'-') && matches!(prev, b'e' | b'E')
                    && self.src[start..self.pos].contains('.'));
            if !keep {
                break;
            }
            prev = b;
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokenKind::Ident, text, line);
    }
}

/// Parses a Rust integer literal (`0xFA00_0000u64`, `42`, `0b1010usize`)
/// into its value. Returns `None` for floats and malformed spellings;
/// used by the R7 registry parser, which requires `lo`/`hi` to be plain
/// integer literals.
pub fn parse_u64_literal(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let t = t
        .strip_suffix("usize")
        .or_else(|| t.strip_suffix("u64"))
        .or_else(|| t.strip_suffix("u32"))
        .or_else(|| t.strip_suffix("u16"))
        .or_else(|| t.strip_suffix("u8"))
        .unwrap_or(&t);
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_numbers_and_punct_with_lines() {
        let l = lex("fn f() {\n    x + 0xFA_u64\n}\n");
        let f = &l.tokens[1];
        assert_eq!(
            (f.kind, f.text.as_str(), f.line),
            (TokenKind::Ident, "f", 1)
        );
        let num = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Number)
            .expect("number");
        assert_eq!((num.text.as_str(), num.line), ("0xFA_u64", 2));
    }

    #[test]
    fn string_values_are_decoded() {
        assert_eq!(
            kinds(r##"("pf.motion", "a\"b", b"raw", r#"r"v"#)"##)
                .into_iter()
                .filter(|(k, _)| *k == TokenKind::Str)
                .map(|(_, v)| v)
                .collect::<Vec<_>>(),
            ["pf.motion", "a\"b", "raw", "r\"v"],
        );
    }

    #[test]
    fn comments_keep_their_text_and_line() {
        let l = lex("let a = 1; // analyze:steady-state\n/* block\nspans */\n/// doc note\n");
        let texts: Vec<(usize, &str)> =
            l.comments.iter().map(|c| (c.line, c.text.trim())).collect();
        assert_eq!(
            texts,
            [
                (1, "analyze:steady-state"),
                (2, "block\nspans"),
                (4, "doc note")
            ]
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* a /* b */ c */ token\n");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, " a /* b */ c ");
        assert!(l.tokens.iter().any(|t| t.is_ident("token")));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".to_string())));
        assert!(toks.contains(&(TokenKind::Char, "x".to_string())));
        assert!(toks.contains(&(TokenKind::Char, "\n".to_string())));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = kinds("for i in 0..n { let y = 1.5e-3; }");
        assert!(toks.contains(&(TokenKind::Number, "0".to_string())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3".to_string())));
        // The two range dots survive as punctuation.
        assert_eq!(toks.iter().filter(|(_, t)| t == ".").count(), 2);
    }

    #[test]
    fn integer_literal_parsing_handles_the_registry_spellings() {
        assert_eq!(
            parse_u64_literal("0xFA00_0000_0000_0000"),
            Some(0xFA00_0000_0000_0000)
        );
        assert_eq!(parse_u64_literal("0x0000_0000_0000_00F1"), Some(0xF1));
        assert_eq!(parse_u64_literal("42u64"), Some(42));
        assert_eq!(parse_u64_literal("0b101"), Some(5));
        assert_eq!(parse_u64_literal("1.5"), None);
        assert_eq!(parse_u64_literal("xyz"), None);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("\"open string\n");
        lex("/* open block\n");
        lex("r#\"open raw\n");
        lex("'");
    }
}
