//! The ratcheted baseline: a checked-in allowlist of pre-existing
//! violations that lets the pass land green and then be tightened to zero.
//!
//! `analyze-baseline.json` stores per-`(file, rule)` *counts*, not line
//! numbers, so unrelated edits that shift lines do not invalidate it. The
//! ratchet semantics:
//!
//! - more violations in a `(file, rule)` group than its baselined count →
//!   **new violations**, the run fails under `--check`;
//! - fewer → the baseline is **stale**; `--update-baseline` rewrites it
//!   with the lower count so the improvement is locked in;
//! - a baselined count can never grow back without a human editing the
//!   checked-in file in review.

use raceloc_obs::Json;
use std::collections::BTreeMap;

use crate::rules::{Severity, Violation};

/// Allowed violation counts, keyed by `(file, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// The comparison of a scan against a [`Baseline`].
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// Deny violations beyond the baselined count, i.e. regressions.
    pub new_violations: Vec<Violation>,
    /// Deny violations covered by the baseline (grandfathered).
    pub baselined: Vec<Violation>,
    /// `(file, rule, allowed, found)` groups where the code now does
    /// better than the baseline — candidates for `--update-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Baseline {
    /// An empty baseline: every deny violation is new.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of `(file, rule)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline allows nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the JSON document produced by [`Baseline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the document is not valid
    /// JSON or does not follow the baseline schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let mut entries = BTreeMap::new();
        let list = doc
            .get("entries")
            .and_then(|e| e.as_array())
            .ok_or("baseline must have an `entries` array")?;
        for item in list {
            let file = item
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry missing `file`")?;
            let rule = item
                .get("rule")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry missing `rule`")?;
            let count = item
                .get("count")
                .and_then(|v| v.as_u64())
                .ok_or("baseline entry missing `count`")?;
            entries.insert((file.to_string(), rule.to_string()), count as usize);
        }
        Ok(Self { entries })
    }

    /// Builds the baseline that exactly covers the given violations
    /// (advisory findings are never baselined).
    pub fn covering(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            if v.severity == Severity::Deny {
                *entries
                    .entry((v.file.clone(), v.rule.to_string()))
                    .or_insert(0) += 1;
            }
        }
        Self { entries }
    }

    /// Serializes to the checked-in JSON document (stable order, so diffs
    /// in review are minimal).
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|((file, rule), count)| {
                Json::Obj(vec![
                    ("file".to_string(), Json::Str(file.clone())),
                    ("rule".to_string(), Json::Str(rule.clone())),
                    ("count".to_string(), Json::num(*count as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("version".to_string(), Json::num(1.0)),
            ("entries".to_string(), Json::Arr(entries)),
        ]);
        format!("{doc}\n")
    }

    /// Splits a scan's violations into new / baselined / stale per the
    /// ratchet semantics. Advisory findings are passed through untouched
    /// (they are neither new nor baselined).
    pub fn compare(&self, violations: &[Violation]) -> Verdict {
        let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
        for v in violations {
            if v.severity == Severity::Deny {
                groups
                    .entry((v.file.clone(), v.rule.to_string()))
                    .or_default()
                    .push(v);
            }
        }
        let mut verdict = Verdict::default();
        for (key, group) in &groups {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if group.len() > allowed {
                // More findings than grandfathered: the first `allowed` are
                // treated as covered, the excess as regressions.
                for v in &group[..allowed] {
                    verdict.baselined.push((*v).clone());
                }
                for v in &group[allowed..] {
                    verdict.new_violations.push((*v).clone());
                }
            } else {
                for v in group {
                    verdict.baselined.push((*v).clone());
                }
                if group.len() < allowed {
                    verdict
                        .stale
                        .push((key.0.clone(), key.1.clone(), allowed, group.len()));
                }
            }
        }
        // Entries whose file no longer has any finding at all.
        for (key, &allowed) in &self.entries {
            if allowed > 0 && !groups.contains_key(key) {
                verdict
                    .stale
                    .push((key.0.clone(), key.1.clone(), allowed, 0));
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(file: &str, rule: &'static str, line: usize) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            severity: Severity::Deny,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::covering(&[viol("a.rs", "R1", 3), viol("a.rs", "R1", 9)]);
        let text = b.to_json();
        let back = Baseline::from_json(&text).expect("parses");
        assert_eq!(b, back);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn empty_baseline_makes_everything_new() {
        let vs = vec![viol("a.rs", "R1", 1)];
        let verdict = Baseline::empty().compare(&vs);
        assert_eq!(verdict.new_violations.len(), 1);
        assert!(verdict.baselined.is_empty());
        assert!(verdict.stale.is_empty());
    }

    #[test]
    fn covered_counts_are_grandfathered_and_excess_fails() {
        let b = Baseline::covering(&[viol("a.rs", "R1", 1)]);
        let vs = vec![viol("a.rs", "R1", 1), viol("a.rs", "R1", 2)];
        let verdict = b.compare(&vs);
        assert_eq!(verdict.baselined.len(), 1);
        assert_eq!(verdict.new_violations.len(), 1);
    }

    #[test]
    fn improvement_is_reported_stale() {
        let b = Baseline::covering(&[viol("a.rs", "R1", 1), viol("a.rs", "R1", 2)]);
        let verdict = b.compare(&[viol("a.rs", "R1", 1)]);
        assert!(verdict.new_violations.is_empty());
        assert_eq!(verdict.stale, vec![("a.rs".into(), "R1".into(), 2, 1)]);
        // Fully fixed file still reports its stale entry.
        let verdict = b.compare(&[]);
        assert_eq!(verdict.stale, vec![("a.rs".into(), "R1".into(), 2, 0)]);
    }

    #[test]
    fn advisory_findings_never_enter_the_baseline() {
        let adv = Violation {
            severity: Severity::Advisory,
            ..viol("a.rs", "R1-idx", 5)
        };
        assert!(Baseline::covering(std::slice::from_ref(&adv)).is_empty());
        let verdict = Baseline::empty().compare(&[adv]);
        assert!(verdict.new_violations.is_empty());
        assert!(verdict.baselined.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("{\"version\": 1}").is_err());
        assert!(Baseline::from_json("{\"entries\": [{\"file\": \"a\"}]}").is_err());
    }
}
