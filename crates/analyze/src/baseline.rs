//! The ratcheted baseline: a checked-in allowlist of pre-existing
//! violations that lets the pass land green and then be tightened to zero.
//!
//! `analyze-baseline.json` (version 2) has two sections:
//!
//! - `entries`: per-`(file, rule)` *counts* of grandfathered **deny**
//!   violations. Counts, not line numbers, so unrelated edits that shift
//!   lines do not invalidate the baseline.
//! - `ratchets`: per-rule workspace-wide counts for **ratchet**-severity
//!   rules (R9 steady-state allocations) plus the pseudo-rule `allow`
//!   (the total number of `analyze:allow` suppression directives in the
//!   tree). These audit quantities may shrink but never silently grow.
//!
//! The ratchet semantics, for both sections:
//!
//! - more findings than the baselined count → **regression**, the run
//!   fails under `--check`;
//! - fewer → the baseline is **stale**; under `--check` this *also*
//!   fails, so improvements must be locked in with `--update-baseline`
//!   (a stale allowance left behind would let the next regression hide);
//! - a baselined count can never grow back without a human editing the
//!   checked-in file in review.

use raceloc_obs::Json;
use std::collections::BTreeMap;

use crate::rules::{Severity, Violation};

/// Allowed violation counts, keyed by `(file, rule)`, plus per-rule
/// ratchet counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
    ratchets: BTreeMap<String, usize>,
}

/// One ratchet comparison: the baselined allowance vs. what the scan
/// found, for a given rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// The ratcheted rule (`R9`, or the pseudo-rule `allow`).
    pub rule: String,
    /// The baselined count.
    pub allowed: usize,
    /// What this scan found.
    pub found: usize,
}

/// The comparison of a scan against a [`Baseline`].
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// Deny violations beyond the baselined count, i.e. regressions.
    pub new_violations: Vec<Violation>,
    /// Deny violations covered by the baseline (grandfathered).
    pub baselined: Vec<Violation>,
    /// `(file, rule, allowed, found)` groups where the code now does
    /// better than the baseline. Fails under `--check` until blessed with
    /// `--update-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Ratchet rules whose count grew past the baseline (regressions).
    pub ratchet_regressions: Vec<RatchetDelta>,
    /// Ratchet rules whose count shrank below the baseline (bless with
    /// `--update-baseline`).
    pub ratchet_stale: Vec<RatchetDelta>,
}

impl Verdict {
    /// Whether the scan passes `--check`.
    pub fn passes_check(&self) -> bool {
        self.new_violations.is_empty()
            && self.stale.is_empty()
            && self.ratchet_regressions.is_empty()
            && self.ratchet_stale.is_empty()
    }
}

/// Per-rule counts of ratchet-severity findings, with the suppression
/// directive count folded in as the pseudo-rule `allow`.
fn ratchet_counts(violations: &[Violation], suppressions: usize) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in violations {
        if v.severity == Severity::Ratchet {
            *counts.entry(v.rule.to_string()).or_insert(0) += 1;
        }
    }
    if suppressions > 0 {
        counts.insert("allow".to_string(), suppressions);
    }
    counts
}

impl Baseline {
    /// An empty baseline: every deny violation is new, every nonzero
    /// ratchet count is a regression.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of `(file, rule)` deny entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline allows nothing (ratchets included).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.ratchets.iter().all(|(_, c)| *c == 0)
    }

    /// The baselined allowance for a ratchet rule.
    pub fn ratchet(&self, rule: &str) -> usize {
        self.ratchets.get(rule).copied().unwrap_or(0)
    }

    /// Parses the JSON document produced by [`Baseline::to_json`]
    /// (version 2) or by older analyzers (version 1, no `ratchets`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the document is not valid
    /// JSON or does not follow the baseline schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let mut entries = BTreeMap::new();
        let list = doc
            .get("entries")
            .and_then(|e| e.as_array())
            .ok_or("baseline must have an `entries` array")?;
        for item in list {
            let file = item
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry missing `file`")?;
            let rule = item
                .get("rule")
                .and_then(|v| v.as_str())
                .ok_or("baseline entry missing `rule`")?;
            let count = item
                .get("count")
                .and_then(|v| v.as_u64())
                .ok_or("baseline entry missing `count`")?;
            entries.insert((file.to_string(), rule.to_string()), count as usize);
        }
        let mut ratchets = BTreeMap::new();
        if let Some(list) = doc.get("ratchets").and_then(|r| r.as_array()) {
            for item in list {
                let rule = item
                    .get("rule")
                    .and_then(|v| v.as_str())
                    .ok_or("ratchet entry missing `rule`")?;
                let count = item
                    .get("count")
                    .and_then(|v| v.as_u64())
                    .ok_or("ratchet entry missing `count`")?;
                ratchets.insert(rule.to_string(), count as usize);
            }
        }
        Ok(Self { entries, ratchets })
    }

    /// Builds the baseline that exactly covers the given scan: deny
    /// findings per `(file, rule)`, ratchet findings per rule, and the
    /// suppression-directive count (advisory findings are never
    /// baselined).
    pub fn covering(violations: &[Violation], suppressions: usize) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            if v.severity == Severity::Deny {
                *entries
                    .entry((v.file.clone(), v.rule.to_string()))
                    .or_insert(0) += 1;
            }
        }
        Self {
            entries,
            ratchets: ratchet_counts(violations, suppressions),
        }
    }

    /// Serializes to the checked-in JSON document (stable order, so diffs
    /// in review are minimal).
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|((file, rule), count)| {
                Json::Obj(vec![
                    ("file".to_string(), Json::Str(file.clone())),
                    ("rule".to_string(), Json::Str(rule.clone())),
                    ("count".to_string(), Json::num(*count as f64)),
                ])
            })
            .collect();
        let ratchets: Vec<Json> = self
            .ratchets
            .iter()
            .filter(|(_, count)| **count > 0)
            .map(|(rule, count)| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::Str(rule.clone())),
                    ("count".to_string(), Json::num(*count as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("version".to_string(), Json::num(2.0)),
            ("entries".to_string(), Json::Arr(entries)),
            ("ratchets".to_string(), Json::Arr(ratchets)),
        ]);
        format!("{doc}\n")
    }

    /// Splits a scan's findings into new / baselined / stale per the
    /// ratchet semantics, and diffs the ratchet counts. Advisory findings
    /// are passed through untouched (neither new nor baselined);
    /// `suppressions` is the tree-wide `analyze:allow` directive count.
    pub fn compare(&self, violations: &[Violation], suppressions: usize) -> Verdict {
        let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
        for v in violations {
            if v.severity == Severity::Deny {
                groups
                    .entry((v.file.clone(), v.rule.to_string()))
                    .or_default()
                    .push(v);
            }
        }
        let mut verdict = Verdict::default();
        for (key, group) in &groups {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if group.len() > allowed {
                // More findings than grandfathered: the first `allowed` are
                // treated as covered, the excess as regressions.
                for v in &group[..allowed] {
                    verdict.baselined.push((*v).clone());
                }
                for v in &group[allowed..] {
                    verdict.new_violations.push((*v).clone());
                }
            } else {
                for v in group {
                    verdict.baselined.push((*v).clone());
                }
                if group.len() < allowed {
                    verdict
                        .stale
                        .push((key.0.clone(), key.1.clone(), allowed, group.len()));
                }
            }
        }
        // Entries whose file no longer has any finding at all.
        for (key, &allowed) in &self.entries {
            if allowed > 0 && !groups.contains_key(key) {
                verdict
                    .stale
                    .push((key.0.clone(), key.1.clone(), allowed, 0));
            }
        }
        // Ratchets: union of baselined and found rules.
        let found = ratchet_counts(violations, suppressions);
        let rules: std::collections::BTreeSet<&String> =
            self.ratchets.keys().chain(found.keys()).collect();
        for rule in rules {
            let allowed = self.ratchets.get(rule).copied().unwrap_or(0);
            let got = found.get(rule).copied().unwrap_or(0);
            let delta = RatchetDelta {
                rule: rule.clone(),
                allowed,
                found: got,
            };
            if got > allowed {
                verdict.ratchet_regressions.push(delta);
            } else if got < allowed {
                verdict.ratchet_stale.push(delta);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(file: &str, rule: &'static str, line: usize) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            severity: Severity::Deny,
        }
    }

    fn ratchet(file: &str, rule: &'static str, line: usize) -> Violation {
        Violation {
            severity: Severity::Ratchet,
            ..viol(file, rule, line)
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::covering(
            &[
                viol("a.rs", "R1", 3),
                viol("a.rs", "R1", 9),
                ratchet("k.rs", "R9", 4),
            ],
            2,
        );
        let text = b.to_json();
        let back = Baseline::from_json(&text).expect("parses");
        assert_eq!(b, back);
        assert_eq!(back.len(), 1);
        assert_eq!(back.ratchet("R9"), 1);
        assert_eq!(back.ratchet("allow"), 2);
    }

    #[test]
    fn parses_version_1_documents_without_ratchets() {
        let v1 = "{\"version\": 1, \"entries\": []}";
        let b = Baseline::from_json(v1).expect("v1 parses");
        assert!(b.is_empty());
        assert_eq!(b.ratchet("R9"), 0);
    }

    #[test]
    fn empty_baseline_makes_everything_new() {
        let vs = vec![viol("a.rs", "R1", 1)];
        let verdict = Baseline::empty().compare(&vs, 0);
        assert_eq!(verdict.new_violations.len(), 1);
        assert!(verdict.baselined.is_empty());
        assert!(verdict.stale.is_empty());
        assert!(!verdict.passes_check());
    }

    #[test]
    fn covered_counts_are_grandfathered_and_excess_fails() {
        let b = Baseline::covering(&[viol("a.rs", "R1", 1)], 0);
        let vs = vec![viol("a.rs", "R1", 1), viol("a.rs", "R1", 2)];
        let verdict = b.compare(&vs, 0);
        assert_eq!(verdict.baselined.len(), 1);
        assert_eq!(verdict.new_violations.len(), 1);
    }

    #[test]
    fn improvement_is_reported_stale_and_fails_check_until_blessed() {
        let b = Baseline::covering(&[viol("a.rs", "R1", 1), viol("a.rs", "R1", 2)], 0);
        let verdict = b.compare(&[viol("a.rs", "R1", 1)], 0);
        assert!(verdict.new_violations.is_empty());
        assert_eq!(verdict.stale, vec![("a.rs".into(), "R1".into(), 2, 1)]);
        assert!(!verdict.passes_check(), "stale entries fail --check");
        // Fully fixed file still reports its stale entry.
        let verdict = b.compare(&[], 0);
        assert_eq!(verdict.stale, vec![("a.rs".into(), "R1".into(), 2, 0)]);
        // Blessing with --update-baseline (covering) passes again.
        let blessed = Baseline::covering(&[viol("a.rs", "R1", 1)], 0);
        assert!(blessed.compare(&[viol("a.rs", "R1", 1)], 0).passes_check());
    }

    #[test]
    fn ratchet_counts_may_shrink_but_not_grow() {
        let b = Baseline::covering(&[ratchet("k.rs", "R9", 1), ratchet("h.rs", "R9", 2)], 3);
        // Same counts: clean.
        let same = b.compare(&[ratchet("k.rs", "R9", 1), ratchet("x.rs", "R9", 9)], 3);
        assert!(same.passes_check(), "{same:?}");
        // Growth: regression.
        let grown = b.compare(
            &[
                ratchet("k.rs", "R9", 1),
                ratchet("h.rs", "R9", 2),
                ratchet("h.rs", "R9", 3),
            ],
            3,
        );
        assert_eq!(grown.ratchet_regressions.len(), 1);
        assert_eq!(grown.ratchet_regressions[0].rule, "R9");
        assert!(!grown.passes_check());
        // Suppression growth is a regression too.
        let more_allows = b.compare(&[ratchet("k.rs", "R9", 1), ratchet("h.rs", "R9", 2)], 4);
        assert_eq!(more_allows.ratchet_regressions[0].rule, "allow");
        // Shrinkage: stale until blessed.
        let shrunk = b.compare(&[ratchet("k.rs", "R9", 1)], 3);
        assert_eq!(shrunk.ratchet_stale.len(), 1);
        assert!(!shrunk.passes_check());
    }

    #[test]
    fn ratchet_findings_never_enter_deny_entries() {
        let b = Baseline::covering(&[ratchet("k.rs", "R9", 1)], 0);
        assert_eq!(b.len(), 0, "no (file, rule) entry for ratchet findings");
        assert_eq!(b.ratchet("R9"), 1);
        // And ratchet findings are never new_violations.
        let verdict = Baseline::empty().compare(&[ratchet("k.rs", "R9", 1)], 0);
        assert!(verdict.new_violations.is_empty());
        assert_eq!(verdict.ratchet_regressions.len(), 1);
    }

    #[test]
    fn advisory_findings_never_enter_the_baseline() {
        let adv = Violation {
            severity: Severity::Advisory,
            ..viol("a.rs", "R1-idx", 5)
        };
        assert!(Baseline::covering(std::slice::from_ref(&adv), 0).is_empty());
        let verdict = Baseline::empty().compare(&[adv], 0);
        assert!(verdict.new_violations.is_empty());
        assert!(verdict.baselined.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("{\"version\": 1}").is_err());
        assert!(Baseline::from_json("{\"entries\": [{\"file\": \"a\"}]}").is_err());
        assert!(
            Baseline::from_json("{\"entries\": [], \"ratchets\": [{\"rule\": \"R9\"}]}").is_err()
        );
    }
}
