//! Comment- and string-aware masking of Rust source, plus `#[cfg(test)]`
//! region detection.
//!
//! The rule matchers in [`crate::rules`] are substring searches; running
//! them over raw source would flag patterns that only occur in doc
//! comments, string literals, or test modules. [`MaskedFile`] solves this
//! with a small lexer: every comment, string, char, and byte literal is
//! replaced by spaces (newlines preserved, so line numbers survive), and a
//! second pass marks the line ranges covered by `#[cfg(test)]` items.

/// A source file after masking, ready for rule matching.
#[derive(Debug)]
pub struct MaskedFile {
    /// Code-only text: comments and literal contents blanked to spaces,
    /// line structure identical to the input.
    pub code: String,
    /// `test_lines[i]` is `true` when 0-based line `i` lies inside a
    /// `#[cfg(test)]` item body.
    pub test_lines: Vec<bool>,
}

impl MaskedFile {
    /// Lexes `source` into masked code and test-region flags.
    pub fn new(source: &str) -> Self {
        let code = mask_source(source);
        let test_lines = test_regions(&code);
        Self { code, test_lines }
    }

    /// The masked lines (same count and byte layout as the input lines).
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.code.lines()
    }

    /// Whether 0-based line `i` is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, i: usize) -> bool {
        self.test_lines.get(i).copied().unwrap_or(false)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Replaces comments and literal contents (including delimiters) with
/// spaces, preserving newlines.
fn mask_source(source: &str) -> String {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw/byte string start: r", r#", br", b"…
                    let (consumed, hashes) = raw_string_open(&bytes[i..]);
                    if consumed > 0 {
                        state = if hashes == u32::MAX {
                            State::Str
                        } else {
                            State::RawStr(hashes)
                        };
                        for _ in 0..consumed {
                            out.push(' ');
                        }
                        i += consumed;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a literal is 'x' or an
                    // escape; a lifetime is '<ident> with no closing quote.
                    if next == Some('\\') {
                        state = State::Char;
                        out.push(' ');
                        i += 1;
                    } else if bytes.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                        out.push(' ');
                        out.push(' ');
                        out.push(' ');
                        i += 3;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes[i..], hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && next.is_some() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// Detects a raw/byte string opener at the cursor: returns the number of
/// chars in the opener and the hash count, or `(0, 0)` when there is none.
/// A plain `b"` (byte string, no hashes) reports `u32::MAX` hashes as a
/// sentinel meaning "terminate like a normal string".
fn raw_string_open(rest: &[char]) -> (usize, u32) {
    let mut j = 0usize;
    if rest.first() == Some(&'b') {
        j += 1;
    }
    let raw = rest.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while rest.get(j + hashes as usize) == Some(&'#') {
        hashes += 1;
    }
    let quote_at = j + hashes as usize;
    if rest.get(quote_at) != Some(&'"') {
        return (0, 0);
    }
    if !raw {
        if hashes > 0 || j == 0 {
            return (0, 0); // `b#` is not a string, bare `"` handled elsewhere
        }
        return (quote_at + 1, u32::MAX); // b"…": escapes like a normal string
    }
    (quote_at + 1, hashes)
}

/// Whether the `"` at the cursor closes a raw string with `hashes` hashes.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

/// Marks the 0-based lines covered by `#[cfg(test)]` item bodies.
///
/// Works on *masked* text, so an occurrence inside a doc comment or string
/// cannot open a region. The body is taken to be the first balanced
/// `{ … }` block after the attribute (skipping further attributes); an
/// attribute followed by `;` before any `{` covers nothing.
fn test_regions(code: &str) -> Vec<bool> {
    let n_lines = code.lines().count();
    let mut flags = vec![false; n_lines];
    let chars: Vec<char> = code.chars().collect();
    let mut search_from = 0usize;
    while let Some(rel) = find_sub(&chars, "#[cfg(test)]", search_from) {
        let attr_end = rel + "#[cfg(test)]".len();
        search_from = attr_end;
        // Find the item body start: first `{` outside `[...]` attribute
        // brackets; bail at a top-level `;`.
        let mut j = attr_end;
        let mut bracket = 0i32;
        let mut body_start = None;
        while j < chars.len() {
            match chars[j] {
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' if bracket == 0 => {
                    body_start = Some(j);
                    break;
                }
                ';' if bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_start else { continue };
        let mut depth = 0i32;
        let mut close = chars.len().saturating_sub(1);
        for (k, &c) in chars.iter().enumerate().skip(open) {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        let first_line = line_of(&chars, rel);
        let last_line = line_of(&chars, close);
        for f in flags
            .iter_mut()
            .take((last_line + 1).min(n_lines))
            .skip(first_line)
        {
            *f = true;
        }
        search_from = close.max(attr_end);
    }
    flags
}

/// Finds `needle` in `haystack` starting at `from`; returns the char index.
fn find_sub(haystack: &[char], needle: &str, from: usize) -> Option<usize> {
    let needle: Vec<char> = needle.chars().collect();
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&s| haystack[s..s + needle.len()] == needle[..])
}

/// 0-based line number of char index `at`.
fn line_of(chars: &[char], at: usize) -> usize {
    chars[..at.min(chars.len())]
        .iter()
        .filter(|&&c| c == '\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = MaskedFile::new("let x = 1; // unwrap() here\n/// docs with panic!()\nfn f() {}\n");
        assert!(m.code.contains("let x = 1;"));
        assert!(!m.code.contains("unwrap"));
        assert!(!m.code.contains("panic"));
        assert!(m.code.contains("fn f() {}"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = MaskedFile::new("a /* outer /* inner unwrap() */ still */ b\n");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.starts_with('a'));
        assert!(m.code.contains('b'));
    }

    #[test]
    fn masks_strings_with_escapes() {
        let m = MaskedFile::new(r#"let s = "quote \" unwrap()"; let t = 2;"#);
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let t = 2;"));
    }

    #[test]
    fn masks_raw_strings() {
        let src = "let s = r#\"raw \" unwrap() \"#; let u = 3;";
        let m = MaskedFile::new(src);
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let u = 3;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = MaskedFile::new("fn f<'a>(x: &'a str) -> char { 'y' }\nlet e = '\\n';\n");
        // Lifetimes survive as code; char literal contents are blanked.
        assert!(m.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.code.contains('y'));
    }

    #[test]
    fn preserves_line_structure() {
        let src = "line1 /* c\nc2 */ line2\n\"s\n2\" line3\n";
        let m = MaskedFile::new(src);
        assert_eq!(m.code.lines().count(), src.lines().count());
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "\
fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}

fn also_live() {}
";
        let m = MaskedFile::new(src);
        assert!(!m.is_test_line(0));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(8));
    }

    #[test]
    fn cfg_test_in_comment_is_ignored() {
        let src = "// #[cfg(test)]\nfn live() {}\n";
        let m = MaskedFile::new(src);
        assert!(!m.is_test_line(0));
        assert!(!m.is_test_line(1));
    }

    #[test]
    fn cfg_test_on_use_item_covers_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let m = MaskedFile::new(src);
        assert!(!m.is_test_line(2));
    }
}
