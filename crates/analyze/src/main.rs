#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `raceloc-analyze` CLI: scan the workspace, diff against the ratcheted
//! baseline, and report.
//!
//! ```text
//! cargo run -p raceloc-analyze -- [--check] [--json <path>] [--advisory]
//!                                 [--update-baseline] [--root <dir>]
//!                                 [--baseline <path>] [--format human|sarif]
//!                                 [--sarif <path>] [--cache <path>]
//!                                 [--no-cache] [--catalog <path>]
//! ```
//!
//! The incremental cache defaults to `<root>/target/analyze-cache.json`
//! (disable with `--no-cache`); it only affects scan time, never results.
//!
//! Exit codes: `0` clean (or report-only mode), `1` regressions or stale
//! baseline entries under `--check`, `2` usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use raceloc_analyze::baseline::Baseline;
use raceloc_analyze::{run_scan_with, sarif, workspace, ScanOptions};

struct Options {
    check: bool,
    advisory: bool,
    update_baseline: bool,
    json_path: Option<PathBuf>,
    sarif_path: Option<PathBuf>,
    format: Format,
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    cache_path: Option<PathBuf>,
    no_cache: bool,
    catalog_path: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Sarif,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        advisory: false,
        update_baseline: false,
        json_path: None,
        sarif_path: None,
        format: Format::Human,
        root: None,
        baseline_path: None,
        cache_path: None,
        no_cache: false,
        catalog_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |flag: &str| {
            args.next()
                .map(PathBuf::from)
                .ok_or(format!("{flag} requires a path"))
        };
        match arg.as_str() {
            "--check" => opts.check = true,
            "--advisory" => opts.advisory = true,
            "--update-baseline" => opts.update_baseline = true,
            "--no-cache" => opts.no_cache = true,
            "--json" => opts.json_path = Some(path_arg("--json")?),
            "--sarif" => opts.sarif_path = Some(path_arg("--sarif")?),
            "--root" => opts.root = Some(path_arg("--root")?),
            "--baseline" => opts.baseline_path = Some(path_arg("--baseline")?),
            "--cache" => opts.cache_path = Some(path_arg("--cache")?),
            "--catalog" => opts.catalog_path = Some(path_arg("--catalog")?),
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format must be `human` or `sarif`, got {other:?}"
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                return Err(
                    "usage: raceloc-analyze [--check] [--json <path>] [--advisory] \
                            [--update-baseline] [--root <dir>] [--baseline <path>] \
                            [--format human|sarif] [--sarif <path>] [--cache <path>] \
                            [--no-cache] [--catalog <path>]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("raceloc-analyze: could not locate the workspace root (use --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("analyze-baseline.json"));
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::from_json(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "raceloc-analyze: bad baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::empty()
    };

    let scan_opts = ScanOptions {
        cache_path: if opts.no_cache {
            None
        } else {
            Some(
                opts.cache_path
                    .clone()
                    .unwrap_or_else(|| root.join("target/analyze-cache.json")),
            )
        },
        catalog_path: opts.catalog_path.clone(),
    };
    let report = match run_scan_with(&root, &baseline, &scan_opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("raceloc-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let next = Baseline::covering(&report.violations, report.suppressions);
        if let Err(e) = std::fs::write(&baseline_path, next.to_json()) {
            eprintln!(
                "raceloc-analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "raceloc-analyze: wrote {} with {} entr{} (R9 ratchet {}, allow ratchet {})",
            baseline_path.display(),
            next.len(),
            if next.len() == 1 { "y" } else { "ies" },
            next.ratchet("R9"),
            next.ratchet("allow"),
        );
        return ExitCode::SUCCESS;
    }

    if let Some(json_path) = &opts.json_path {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("raceloc-analyze: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &opts.sarif_path {
        if let Err(e) = std::fs::write(sarif_path, sarif::to_sarif(&report)) {
            eprintln!(
                "raceloc-analyze: cannot write {}: {e}",
                sarif_path.display()
            );
            return ExitCode::from(2);
        }
    }
    match opts.format {
        Format::Human => print!("{}", report.human_summary(opts.advisory)),
        Format::Sarif => print!("{}", sarif::to_sarif(&report)),
    }
    if opts.check && !report.verdict.passes_check() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
