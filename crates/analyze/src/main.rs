#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `raceloc-analyze` CLI: scan the workspace, diff against the ratcheted
//! baseline, and report.
//!
//! ```text
//! cargo run -p raceloc-analyze -- [--check] [--json <path>] [--advisory]
//!                                 [--update-baseline] [--root <dir>]
//!                                 [--baseline <path>]
//! ```
//!
//! Exit codes: `0` clean (or report-only mode), `1` new violations under
//! `--check`, `2` usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use raceloc_analyze::baseline::Baseline;
use raceloc_analyze::{run_scan, workspace};

struct Options {
    check: bool,
    advisory: bool,
    update_baseline: bool,
    json_path: Option<PathBuf>,
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        advisory: false,
        update_baseline: false,
        json_path: None,
        root: None,
        baseline_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--advisory" => opts.advisory = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => {
                let v = args.next().ok_or("--json requires a path")?;
                opts.json_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline requires a path")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: raceloc-analyze [--check] [--json <path>] [--advisory] \
                            [--update-baseline] [--root <dir>] [--baseline <path>]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("raceloc-analyze: could not locate the workspace root (use --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("analyze-baseline.json"));
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::from_json(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "raceloc-analyze: bad baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::empty()
    };

    let report = match run_scan(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("raceloc-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let next = Baseline::covering(&report.violations);
        if let Err(e) = std::fs::write(&baseline_path, next.to_json()) {
            eprintln!(
                "raceloc-analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "raceloc-analyze: wrote {} with {} entr{}",
            baseline_path.display(),
            next.len(),
            if next.len() == 1 { "y" } else { "ies" },
        );
        return ExitCode::SUCCESS;
    }

    if let Some(json_path) = &opts.json_path {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("raceloc-analyze: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.human_summary(opts.advisory));
    if opts.check && !report.verdict.new_violations.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
