//! SARIF 2.1.0 rendering of a [`Report`], so CI annotations and editor
//! integrations can consume the analyzer's findings without bespoke
//! parsing. Built on the vendored `raceloc_obs::Json` writer — no new
//! dependencies.

use raceloc_obs::Json;

use crate::report::Report;
use crate::rules::{Severity, Violation};

/// Rule metadata shown in SARIF viewers. Keep in sync with
/// [`crate::rules::ALL_RULES`] and DESIGN.md §10.
const RULE_HELP: [(&str, &str); 11] = [
    ("R1", "panic-freedom in hot-path crates"),
    ("R1-idx", "direct slice indexing audit (advisory)"),
    ("R2", "float total-order: no partial_cmp().unwrap()"),
    (
        "R3",
        "determinism: no hash containers, thread RNGs, or wall-clock reads",
    ),
    ("R4", "unsafe ban and crate-root lint wall"),
    ("R5", "removed-API ratchet: cast_batch must not reappear"),
    (
        "R6",
        "deprecated-API ratchet: with_owned_map only in compat shims",
    ),
    (
        "R7",
        "RNG stream keys must come from the stream_keys registry",
    ),
    ("R8", "telemetry names must be in telemetry-catalog.json"),
    ("R9", "steady-state allocation lint (ratcheted)"),
    ("allow", "analyze:allow directive hygiene"),
];

/// The SARIF `level` for a finding.
fn level(v: &Violation) -> &'static str {
    match v.severity {
        Severity::Deny => "error",
        Severity::Ratchet => "warning",
        Severity::Advisory => "note",
    }
}

fn result(v: &Violation, baselined: bool) -> Json {
    let mut fields = vec![
        ("ruleId".to_string(), Json::Str(v.rule.to_string())),
        ("level".to_string(), Json::Str(level(v).to_string())),
        (
            "message".to_string(),
            Json::Obj(vec![("text".to_string(), Json::Str(v.message.clone()))]),
        ),
        (
            "locations".to_string(),
            Json::Arr(vec![Json::Obj(vec![(
                "physicalLocation".to_string(),
                Json::Obj(vec![
                    (
                        "artifactLocation".to_string(),
                        Json::Obj(vec![("uri".to_string(), Json::Str(v.file.clone()))]),
                    ),
                    (
                        "region".to_string(),
                        Json::Obj(vec![(
                            "startLine".to_string(),
                            Json::num(v.line.max(1) as f64),
                        )]),
                    ),
                ]),
            )])]),
        ),
    ];
    if baselined {
        // SARIF's own suppression model, so viewers hide grandfathered
        // findings by default.
        fields.push((
            "suppressions".to_string(),
            Json::Arr(vec![Json::Obj(vec![
                ("kind".to_string(), Json::Str("external".to_string())),
                (
                    "justification".to_string(),
                    Json::Str("grandfathered in analyze-baseline.json".to_string()),
                ),
            ])]),
        ));
    }
    Json::Obj(fields)
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Json> = RULE_HELP
        .iter()
        .map(|(id, desc)| {
            Json::Obj(vec![
                ("id".to_string(), Json::Str(id.to_string())),
                (
                    "shortDescription".to_string(),
                    Json::Obj(vec![("text".to_string(), Json::Str(desc.to_string()))]),
                ),
            ])
        })
        .collect();
    let mut results: Vec<Json> = Vec::new();
    for v in &report.verdict.new_violations {
        results.push(result(v, false));
    }
    for v in &report.verdict.baselined {
        results.push(result(v, true));
    }
    for v in report.ratchets() {
        results.push(result(v, false));
    }
    for v in report.advisories() {
        results.push(result(v, false));
    }
    let doc = Json::Obj(vec![
        (
            "$schema".to_string(),
            Json::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
        ),
        ("version".to_string(), Json::Str("2.1.0".to_string())),
        (
            "runs".to_string(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".to_string(),
                    Json::Obj(vec![(
                        "driver".to_string(),
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str("raceloc-analyze".to_string())),
                            (
                                "informationUri".to_string(),
                                Json::Str("DESIGN.md".to_string()),
                            ),
                            ("rules".to_string(), Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".to_string(), Json::Arr(results)),
            ])]),
        ),
    ]);
    format!("{doc}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;

    #[test]
    fn sarif_document_shape() {
        let violations = vec![
            Violation {
                file: "crates/pf/src/filter.rs".to_string(),
                line: 12,
                rule: "R1",
                message: "`unwrap()` can panic".to_string(),
                severity: Severity::Deny,
            },
            Violation {
                file: "crates/pf/src/parstep.rs".to_string(),
                line: 3,
                rule: "R9",
                message: "allocates".to_string(),
                severity: Severity::Ratchet,
            },
        ];
        let verdict = Baseline::empty().compare(&violations, 0);
        let report = Report {
            violations,
            verdict,
            files_scanned: 1,
            files_relexed: 1,
            suppressions: 0,
            suppressed_findings: 0,
        };
        let doc = Json::parse(&to_sarif(&report)).expect("valid json");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Json::as_array)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").and_then(Json::as_str), Some("R1"));
        assert_eq!(
            results[0].get("level").and_then(Json::as_str),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(Json::as_str),
            Some("warning")
        );
        let loc = results[0]
            .get("locations")
            .and_then(Json::as_array)
            .expect("locations");
        let uri = loc[0]
            .get("physicalLocation")
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str);
        assert_eq!(uri, Some("crates/pf/src/filter.rs"));
        let driver_rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_array)
            .expect("rules");
        assert_eq!(driver_rules.len(), RULE_HELP.len());
    }
}
