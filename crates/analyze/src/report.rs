//! Human-readable and JSON rendering of a scan's outcome.

use raceloc_obs::Json;

use crate::baseline::Verdict;
use crate::rules::{Severity, Violation};

/// The full outcome of one pass over the workspace.
#[derive(Debug)]
pub struct Report {
    /// Every surviving finding, including advisory, ratchet, and
    /// baselined ones (suppressed findings are gone).
    pub violations: Vec<Violation>,
    /// The split against the baseline.
    pub verdict: Verdict,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// How many files were actually re-lexed this pass (the rest came
    /// from the incremental cache).
    pub files_relexed: usize,
    /// Total `analyze:allow` directives in the tree.
    pub suppressions: usize,
    /// How many findings those directives suppressed.
    pub suppressed_findings: usize,
}

impl Report {
    /// Advisory findings (never affect the exit code).
    pub fn advisories(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Advisory)
    }

    /// Ratchet findings (counted against the baseline's `ratchets`).
    pub fn ratchets(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Ratchet)
    }

    /// The `file:line: rule: message` diagnostics for regressions, the
    /// lines CI prints on failure.
    pub fn human_new_violations(&self) -> Vec<String> {
        self.verdict
            .new_violations
            .iter()
            .map(|v| format!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message))
            .collect()
    }

    /// Renders the one-screen human summary.
    pub fn human_summary(&self, show_advisories: bool) -> String {
        let mut out = String::new();
        for line in self.human_new_violations() {
            out.push_str(&line);
            out.push('\n');
        }
        for v in &self.verdict.baselined {
            out.push_str(&format!(
                "{}:{}: {}: baselined: {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for (file, rule, allowed, found) in &self.verdict.stale {
            out.push_str(&format!(
                "{file}: {rule}: baseline is stale (allows {allowed}, found {found}); \
                 run with --update-baseline to ratchet down\n"
            ));
        }
        for d in &self.verdict.ratchet_regressions {
            out.push_str(&format!(
                "{}: ratchet regressed (allows {}, found {}); fix or suppress with a reason\n",
                d.rule, d.allowed, d.found
            ));
            for v in self.ratchets().filter(|v| v.rule == d.rule) {
                out.push_str(&format!(
                    "{}:{}: {}: {}\n",
                    v.file, v.line, v.rule, v.message
                ));
            }
        }
        for d in &self.verdict.ratchet_stale {
            out.push_str(&format!(
                "{}: ratchet is stale (allows {}, found {}); \
                 run with --update-baseline to ratchet down\n",
                d.rule, d.allowed, d.found
            ));
        }
        let advisories = self.advisories().count();
        if show_advisories {
            for v in self.advisories() {
                out.push_str(&format!(
                    "{}:{}: {}: advisory: {}\n",
                    v.file, v.line, v.rule, v.message
                ));
            }
        } else if advisories > 0 {
            out.push_str(&format!(
                "{advisories} advisory finding(s); rerun with --advisory to list\n"
            ));
        }
        out.push_str(&format!(
            "raceloc-analyze: {} file(s) ({} re-lexed), {} new violation(s), {} baselined, \
             {} stale entr{}, {} ratchet finding(s), {} suppression(s)\n",
            self.files_scanned,
            self.files_relexed,
            self.verdict.new_violations.len(),
            self.verdict.baselined.len(),
            self.verdict.stale.len(),
            if self.verdict.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
            self.ratchets().count(),
            self.suppressions,
        ));
        out
    }

    /// The machine-readable report uploaded as a CI artifact.
    pub fn to_json(&self) -> String {
        fn viol(v: &Violation, status: &str) -> Json {
            Json::Obj(vec![
                ("file".to_string(), Json::Str(v.file.clone())),
                ("line".to_string(), Json::num(v.line as f64)),
                ("rule".to_string(), Json::Str(v.rule.to_string())),
                ("message".to_string(), Json::Str(v.message.clone())),
                ("status".to_string(), Json::Str(status.to_string())),
            ])
        }
        let mut findings: Vec<Json> = Vec::new();
        for v in &self.verdict.new_violations {
            findings.push(viol(v, "new"));
        }
        for v in &self.verdict.baselined {
            findings.push(viol(v, "baselined"));
        }
        for v in self.ratchets() {
            findings.push(viol(v, "ratchet"));
        }
        for v in self.advisories() {
            findings.push(viol(v, "advisory"));
        }
        let stale: Vec<Json> = self
            .verdict
            .stale
            .iter()
            .map(|(file, rule, allowed, found)| {
                Json::Obj(vec![
                    ("file".to_string(), Json::Str(file.clone())),
                    ("rule".to_string(), Json::Str(rule.clone())),
                    ("allowed".to_string(), Json::num(*allowed as f64)),
                    ("found".to_string(), Json::num(*found as f64)),
                ])
            })
            .collect();
        let ratchet_delta = |d: &crate::baseline::RatchetDelta| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(d.rule.clone())),
                ("allowed".to_string(), Json::num(d.allowed as f64)),
                ("found".to_string(), Json::num(d.found as f64)),
            ])
        };
        let doc = Json::Obj(vec![
            ("version".to_string(), Json::num(2.0)),
            (
                "files_scanned".to_string(),
                Json::num(self.files_scanned as f64),
            ),
            (
                "files_relexed".to_string(),
                Json::num(self.files_relexed as f64),
            ),
            (
                "new_violations".to_string(),
                Json::num(self.verdict.new_violations.len() as f64),
            ),
            (
                "suppressions".to_string(),
                Json::num(self.suppressions as f64),
            ),
            (
                "suppressed_findings".to_string(),
                Json::num(self.suppressed_findings as f64),
            ),
            ("findings".to_string(), Json::Arr(findings)),
            ("stale_baseline".to_string(), Json::Arr(stale)),
            (
                "ratchet_regressions".to_string(),
                Json::Arr(
                    self.verdict
                        .ratchet_regressions
                        .iter()
                        .map(ratchet_delta)
                        .collect(),
                ),
            ),
            (
                "ratchet_stale".to_string(),
                Json::Arr(
                    self.verdict
                        .ratchet_stale
                        .iter()
                        .map(ratchet_delta)
                        .collect(),
                ),
            ),
        ]);
        format!("{doc}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;

    fn sample() -> Report {
        let violations = vec![
            Violation {
                file: "crates/pf/src/filter.rs".to_string(),
                line: 12,
                rule: "R1",
                message: "`unwrap()` can panic".to_string(),
                severity: Severity::Deny,
            },
            Violation {
                file: "crates/pf/src/filter.rs".to_string(),
                line: 30,
                rule: "R1-idx",
                message: "direct indexing".to_string(),
                severity: Severity::Advisory,
            },
            Violation {
                file: "crates/pf/src/parstep.rs".to_string(),
                line: 7,
                rule: "R9",
                message: "`.push(..)` allocates".to_string(),
                severity: Severity::Ratchet,
            },
        ];
        let verdict = Baseline::empty().compare(&violations, 1);
        Report {
            violations,
            verdict,
            files_scanned: 2,
            files_relexed: 2,
            suppressions: 1,
            suppressed_findings: 0,
        }
    }

    #[test]
    fn human_diagnostic_has_file_line_rule_shape() {
        let r = sample();
        let lines = r.human_new_violations();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("crates/pf/src/filter.rs:12: R1: "),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn summary_counts_advisories_without_listing_by_default() {
        let r = sample();
        let quiet = r.human_summary(false);
        assert!(quiet.contains("1 advisory finding(s)"));
        assert!(!quiet.contains("direct indexing"));
        let loud = r.human_summary(true);
        assert!(loud.contains("direct indexing"));
    }

    #[test]
    fn summary_lists_ratchet_regressions_with_their_findings() {
        let r = sample();
        let text = r.human_summary(false);
        assert!(
            text.contains("R9: ratchet regressed (allows 0, found 1)"),
            "{text}"
        );
        assert!(text.contains("crates/pf/src/parstep.rs:7: R9: "), "{text}");
        assert!(
            text.contains("allow: ratchet regressed (allows 0, found 1)"),
            "{text}"
        );
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let r = sample();
        let doc = Json::parse(&r.to_json()).expect("valid json");
        assert_eq!(doc.get("new_violations").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("files_relexed").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("suppressions").and_then(Json::as_u64), Some(1));
        let findings = doc
            .get("findings")
            .and_then(Json::as_array)
            .expect("findings");
        assert_eq!(findings.len(), 3);
        assert_eq!(
            findings[0].get("status").and_then(Json::as_str),
            Some("new")
        );
        assert!(findings
            .iter()
            .any(|f| f.get("status").and_then(Json::as_str) == Some("ratchet")));
        let regressions = doc
            .get("ratchet_regressions")
            .and_then(Json::as_array)
            .expect("ratchet section");
        assert_eq!(regressions.len(), 2, "R9 + allow");
    }
}
