//! Human-readable and JSON rendering of a scan's outcome.

use raceloc_obs::Json;

use crate::baseline::Verdict;
use crate::rules::{Severity, Violation};

/// The full outcome of one pass over the workspace.
#[derive(Debug)]
pub struct Report {
    /// Every finding, including advisory and baselined ones.
    pub violations: Vec<Violation>,
    /// The split against the baseline.
    pub verdict: Verdict,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Advisory findings (never affect the exit code).
    pub fn advisories(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Advisory)
    }

    /// The `file:line: rule: message` diagnostics for regressions, the
    /// lines CI prints on failure.
    pub fn human_new_violations(&self) -> Vec<String> {
        self.verdict
            .new_violations
            .iter()
            .map(|v| format!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message))
            .collect()
    }

    /// Renders the one-screen human summary.
    pub fn human_summary(&self, show_advisories: bool) -> String {
        let mut out = String::new();
        for line in self.human_new_violations() {
            out.push_str(&line);
            out.push('\n');
        }
        for v in &self.verdict.baselined {
            out.push_str(&format!(
                "{}:{}: {}: baselined: {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for (file, rule, allowed, found) in &self.verdict.stale {
            out.push_str(&format!(
                "{file}: {rule}: baseline is stale (allows {allowed}, found {found}); \
                 run with --update-baseline to ratchet down\n"
            ));
        }
        let advisories = self.advisories().count();
        if show_advisories {
            for v in self.advisories() {
                out.push_str(&format!(
                    "{}:{}: {}: advisory: {}\n",
                    v.file, v.line, v.rule, v.message
                ));
            }
        } else if advisories > 0 {
            out.push_str(&format!(
                "{advisories} advisory finding(s) (slice indexing); rerun with --advisory to list\n"
            ));
        }
        out.push_str(&format!(
            "raceloc-analyze: {} file(s), {} new violation(s), {} baselined, {} stale entr{}\n",
            self.files_scanned,
            self.verdict.new_violations.len(),
            self.verdict.baselined.len(),
            self.verdict.stale.len(),
            if self.verdict.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
        ));
        out
    }

    /// The machine-readable report uploaded as a CI artifact.
    pub fn to_json(&self) -> String {
        fn viol(v: &Violation, status: &str) -> Json {
            Json::Obj(vec![
                ("file".to_string(), Json::Str(v.file.clone())),
                ("line".to_string(), Json::num(v.line as f64)),
                ("rule".to_string(), Json::Str(v.rule.to_string())),
                ("message".to_string(), Json::Str(v.message.clone())),
                ("status".to_string(), Json::Str(status.to_string())),
            ])
        }
        let mut findings: Vec<Json> = Vec::new();
        for v in &self.verdict.new_violations {
            findings.push(viol(v, "new"));
        }
        for v in &self.verdict.baselined {
            findings.push(viol(v, "baselined"));
        }
        for v in self.advisories() {
            findings.push(viol(v, "advisory"));
        }
        let stale: Vec<Json> = self
            .verdict
            .stale
            .iter()
            .map(|(file, rule, allowed, found)| {
                Json::Obj(vec![
                    ("file".to_string(), Json::Str(file.clone())),
                    ("rule".to_string(), Json::Str(rule.clone())),
                    ("allowed".to_string(), Json::num(*allowed as f64)),
                    ("found".to_string(), Json::num(*found as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("version".to_string(), Json::num(1.0)),
            (
                "files_scanned".to_string(),
                Json::num(self.files_scanned as f64),
            ),
            (
                "new_violations".to_string(),
                Json::num(self.verdict.new_violations.len() as f64),
            ),
            ("findings".to_string(), Json::Arr(findings)),
            ("stale_baseline".to_string(), Json::Arr(stale)),
        ]);
        format!("{doc}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;

    fn sample() -> Report {
        let violations = vec![
            Violation {
                file: "crates/pf/src/filter.rs".to_string(),
                line: 12,
                rule: "R1",
                message: "`unwrap()` can panic".to_string(),
                severity: Severity::Deny,
            },
            Violation {
                file: "crates/pf/src/filter.rs".to_string(),
                line: 30,
                rule: "R1-idx",
                message: "direct indexing".to_string(),
                severity: Severity::Advisory,
            },
        ];
        let verdict = Baseline::empty().compare(&violations);
        Report {
            violations,
            verdict,
            files_scanned: 2,
        }
    }

    #[test]
    fn human_diagnostic_has_file_line_rule_shape() {
        let r = sample();
        let lines = r.human_new_violations();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("crates/pf/src/filter.rs:12: R1: "),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn summary_counts_advisories_without_listing_by_default() {
        let r = sample();
        let quiet = r.human_summary(false);
        assert!(quiet.contains("1 advisory finding(s)"));
        assert!(!quiet.contains("direct indexing"));
        let loud = r.human_summary(true);
        assert!(loud.contains("direct indexing"));
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let r = sample();
        let doc = Json::parse(&r.to_json()).expect("valid json");
        assert_eq!(doc.get("new_violations").and_then(Json::as_u64), Some(1));
        let findings = doc
            .get("findings")
            .and_then(Json::as_array)
            .expect("findings");
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("status").and_then(Json::as_str),
            Some("new")
        );
    }
}
