//! The rule set: project-specific invariants the stock toolchain cannot
//! express, matched over masked source (see [`crate::mask`]).
//!
//! | Rule | Severity | Scope | Meaning |
//! |---|---|---|---|
//! | `R1` | deny | hot-path crates | panic-freedom: no `unwrap` / `expect` / `panic!` family outside `#[cfg(test)]` |
//! | `R1-idx` | advisory | hot-path crates | direct slice indexing (heuristic; audit, don't fail) |
//! | `R2` | deny | whole workspace | float total-order: no `partial_cmp(..).unwrap()/expect()` — use `total_cmp` |
//! | `R3` | deny | hot-path crates | determinism: no hash containers, `thread_rng`, or wall-clock reads outside `raceloc-obs` |
//! | `R4` | deny | whole workspace | `unsafe` ban + lint wall (`#![forbid(unsafe_code)]`, `#![deny(missing_docs)]`) in crate roots |
//! | `R5` | deny | whole workspace | removed-API ratchet: the `cast_batch` shim is gone for good; the token must not reappear |
//! | `R6` | deny | whole workspace | deprecated-API ratchet: the owning `with_owned_map` constructors live only in `compat.rs` shims; new uses are banned |

use crate::mask::MaskedFile;

/// The crates whose kernels must be panic-free and deterministic (R1, R3):
/// the particle filter, ray casting, the worker pool, SLAM, the
/// simulator, the fault-injection engine (whose schedules must replay
/// bit-identically from `(seed, step)` alone), the fleet-evaluation
/// engine (whose reports must be byte-identical for any pool width), and
/// the multi-session serve engine (whose session streams must replay
/// bit-identically for any thread count).
pub const HOT_PATH_CRATES: [&str; 8] = [
    "eval", "faults", "par", "pf", "range", "serve", "slam", "sim",
];

/// How a diagnostic participates in the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `--check` unless baselined.
    Deny,
    /// Reported for audit; never fails and never baselined.
    Advisory,
    /// Counted per rule against the baseline's `ratchets` section: the
    /// workspace-wide count may shrink (bless with `--update-baseline`)
    /// but never grow. Used by R9 and the suppression-count ratchet.
    Ratchet,
}

/// Every rule identifier the analyzer can emit, used to re-intern rule
/// names read back from the incremental-scan cache ([`crate::cache`]).
pub const ALL_RULES: [&str; 11] = [
    "R1", "R1-idx", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "allow",
];

/// Maps a rule name to its canonical `&'static str` (cache entries store
/// plain strings). Unknown names — a cache written by a different rules
/// version — intern as `"R?"`, which never matches a baseline entry and
/// therefore fails loudly instead of silently passing.
pub fn intern_rule(name: &str) -> &'static str {
    ALL_RULES
        .iter()
        .find(|r| **r == name)
        .copied()
        .unwrap_or("R?")
}

/// One finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`R1`, `R1-idx`, `R2`, `R3`, `R4`, `R5`, `R6`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Whether the finding is denying or advisory.
    pub severity: Severity,
}

/// Whether `path` (workspace-relative, `/`-separated) lies in a hot-path
/// crate's `src/` tree.
fn in_hot_path_src(path: &str) -> bool {
    HOT_PATH_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Whether `path` is one of the crate roots R4 requires a lint wall in.
pub fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Is `text[at]` preceded by an identifier character (or underscore)?
fn ident_before(text: &str, at: usize) -> bool {
    text[..at]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Is the character right after the match an identifier character?
fn ident_after(text: &str, end: usize) -> bool {
    text[end..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// All match positions of `needle` in `line` that are standalone tokens:
/// an identifier-edge of the needle must not continue into a longer
/// identifier (`.unwrap()` matches after `x`; `unsafe` does not match
/// inside `unsafe_code`).
fn token_positions(line: &str, needle: &str) -> Vec<usize> {
    let first_is_ident = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let last_is_ident = needle
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let end = at + needle.len();
        if (!first_is_ident || !ident_before(line, at))
            && (!last_is_ident || !ident_after(line, end))
        {
            out.push(at);
        }
        from = end;
    }
    out
}

/// Scans one masked file; `path` is workspace-relative with `/` separators.
pub fn scan_file(path: &str, masked: &MaskedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = masked.lines().collect();
    let hot = in_hot_path_src(path);
    let in_obs = path.starts_with("crates/obs/");
    let in_analyze = path.starts_with("crates/analyze/");

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if masked.is_test_line(i) {
            continue;
        }

        // R1: panic-freedom in the hot-path kernels.
        if hot {
            for (needle, what) in [
                (".unwrap()", "`unwrap()` can panic"),
                (".unwrap_err()", "`unwrap_err()` can panic"),
                (".expect(", "`expect(..)` can panic"),
                ("panic!", "explicit `panic!`"),
                ("unreachable!", "`unreachable!` can panic"),
                ("todo!", "`todo!` panics"),
                ("unimplemented!", "`unimplemented!` panics"),
            ] {
                for _ in token_positions(line, needle) {
                    out.push(Violation {
                        file: path.to_string(),
                        line: lineno,
                        rule: "R1",
                        message: format!(
                            "{what} in a hot-path crate; return an Option/Result or guard the case"
                        ),
                        severity: Severity::Deny,
                    });
                }
            }
            // R1-idx (advisory): direct indexing `expr[..]` can panic on an
            // out-of-bounds index. Heuristic: `[` directly after an
            // identifier character, `)`, or `]`.
            for (at, c) in line.char_indices() {
                if c == '['
                    && line[..at]
                        .chars()
                        .next_back()
                        .is_some_and(|p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']')
                {
                    out.push(Violation {
                        file: path.to_string(),
                        line: lineno,
                        rule: "R1-idx",
                        message: "direct indexing can panic; consider `get` or an iterator"
                            .to_string(),
                        severity: Severity::Advisory,
                    });
                }
            }
        }

        // R2: float total-order. `partial_cmp` chained into unwrap/expect
        // (same line or the continuation line) instead of `total_cmp`.
        if !in_analyze {
            if let Some(pc) = line.find("partial_cmp") {
                let window = format!("{}{}", &line[pc..], lines.get(i + 1).copied().unwrap_or(""));
                if window.contains(".unwrap()") || window.contains(".expect(") {
                    out.push(Violation {
                        file: path.to_string(),
                        line: lineno,
                        rule: "R2",
                        message: "`partial_cmp(..).unwrap()/expect(..)` is not a total order; \
                                  use `f64::total_cmp`/`f32::total_cmp`"
                            .to_string(),
                        severity: Severity::Deny,
                    });
                }
            }
        }

        // R3: determinism in the localization/sim crates. Hash containers
        // iterate in randomized order; thread RNGs and wall-clock reads make
        // runs non-reproducible. Timing goes through `raceloc_obs::Stopwatch`.
        if hot && !in_obs {
            for (needle, what, hint) in [
                ("HashMap", "randomized-iteration container", "use BTreeMap"),
                ("HashSet", "randomized-iteration container", "use BTreeSet"),
                ("thread_rng", "non-seedable RNG", "use raceloc_core::Rng64"),
                (
                    "Instant::now",
                    "direct wall-clock read",
                    "use raceloc_obs::Stopwatch",
                ),
                (
                    "SystemTime",
                    "direct wall-clock read",
                    "use raceloc_obs::Stopwatch",
                ),
            ] {
                for _ in token_positions(line, needle) {
                    out.push(Violation {
                        file: path.to_string(),
                        line: lineno,
                        rule: "R3",
                        message: format!("{what} (`{needle}`) breaks determinism; {hint}"),
                        severity: Severity::Deny,
                    });
                }
            }
        }

        // R4 (part 1): no `unsafe` anywhere in the workspace.
        for _ in token_positions(line, "unsafe") {
            out.push(Violation {
                file: path.to_string(),
                line: lineno,
                rule: "R4",
                message: "`unsafe` is banned workspace-wide (#![forbid(unsafe_code)])".to_string(),
                severity: Severity::Deny,
            });
        }

        // R5: removed-API ratchet. The deprecated `cast_batch` shim has
        // been deleted; the token must never reappear anywhere — not even
        // in `crates/range/src/batch.rs`, which used to host it. (String
        // literals, comments, and `#[cfg(test)]` code are already masked.)
        for _ in token_positions(line, "cast_batch") {
            out.push(Violation {
                file: path.to_string(),
                line: lineno,
                rule: "R5",
                message: "the removed `cast_batch` shim must not come back; \
                          use `RangeMethod::par_ranges_into`"
                    .to_string(),
                severity: Severity::Deny,
            });
        }

        // R6: deprecated-API ratchet. The owning `with_owned_map`
        // constructors are frozen inside the `compat.rs` shim modules;
        // everything else builds localizers over a shared artifact bundle
        // (`ArtifactStore::get_or_build` + `from_artifacts`). New uses —
        // or new definitions outside a shim module — must not appear.
        if !path.ends_with("/compat.rs") {
            for _ in token_positions(line, "with_owned_map") {
                out.push(Violation {
                    file: path.to_string(),
                    line: lineno,
                    rule: "R6",
                    message: "the deprecated `with_owned_map` shim is frozen in `compat.rs`; \
                              use `ArtifactStore::get_or_build` + `from_artifacts` instead"
                        .to_string(),
                    severity: Severity::Deny,
                });
            }
        }
    }

    // R4 (part 2): lint wall in crate roots. Matched on masked text so a
    // doc-comment mention cannot satisfy the check.
    if is_crate_root(path) {
        for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !masked.code.contains(attr) {
                out.push(Violation {
                    file: path.to_string(),
                    line: 1,
                    rule: "R4",
                    message: format!("crate root is missing the lint wall attribute `{attr}`"),
                    severity: Severity::Deny,
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Violation> {
        scan_file(path, &MaskedFile::new(src))
    }

    fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn r1_flags_unwrap_in_hot_crate() {
        let vs = scan("crates/pf/src/filter.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&vs), ["R1"]);
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[0].severity, Severity::Deny);
    }

    #[test]
    fn r1_ignores_cold_crates_and_tests() {
        assert!(scan("crates/metrics/src/lap.rs", "fn f() { x.unwrap(); }\n").is_empty());
        let vs = scan(
            "crates/pf/src/filter.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        let vs = scan(
            "crates/pf/src/filter.rs",
            "/// call .unwrap() freely\nfn f() { let s = \"panic!\"; }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn r1_does_not_flag_debug_invariant() {
        let vs = scan(
            "crates/pf/src/filter.rs",
            "fn f() { raceloc_core::debug_invariant!(x > 0.0, \"msg\"); }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn r1_idx_is_advisory() {
        let vs = scan("crates/pf/src/filter.rs", "fn f() { let y = xs[3]; }\n");
        assert_eq!(rules_of(&vs), ["R1-idx"]);
        assert_eq!(vs[0].severity, Severity::Advisory);
    }

    #[test]
    fn r1_idx_skips_attributes_and_macros() {
        let vs = scan(
            "crates/pf/src/filter.rs",
            "#[derive(Debug)]\nfn f() { let v = vec![1, 2]; let a: [f64; 2] = [0.0, 0.0]; }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn r2_flags_partial_cmp_unwrap_everywhere() {
        let vs = scan(
            "crates/metrics/src/lap.rs",
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        );
        assert_eq!(rules_of(&vs), ["R2"]);
    }

    #[test]
    fn r2_catches_split_lines() {
        let vs = scan(
            "crates/map/src/path.rs",
            "let i = c.partial_cmp(&s)\n    .expect(\"finite\");\n",
        );
        assert_eq!(rules_of(&vs), ["R2"]);
    }

    #[test]
    fn r2_allows_total_cmp_and_bare_partial_cmp() {
        assert!(scan("crates/map/src/a.rs", "v.sort_by(f64::total_cmp);\n").is_empty());
        assert!(scan(
            "crates/map/src/a.rs",
            "let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);\n"
        )
        .is_empty());
    }

    #[test]
    fn r3_flags_hash_and_clock_in_hot_crates_only() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let vs = scan("crates/slam/src/slam.rs", src);
        assert_eq!(rules_of(&vs), ["R3", "R3"]);
        assert!(scan("crates/obs/src/telemetry.rs", src).is_empty());
        assert!(scan("crates/metrics/src/latency.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_unsafe_everywhere_but_not_the_lint_attr() {
        let vs = scan("crates/metrics/src/lap.rs", "unsafe { *p }\n");
        assert_eq!(rules_of(&vs), ["R4"]);
        assert!(scan("crates/metrics/src/lap.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn r4_requires_lint_wall_in_crate_roots() {
        let vs = scan("crates/map/src/lib.rs", "//! docs\npub mod grid;\n");
        assert_eq!(rules_of(&vs), ["R4", "R4"]);
        let ok = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! docs\n";
        assert!(scan("crates/map/src/lib.rs", ok).is_empty());
        // A doc-comment mention is not a lint wall.
        let fake = "//! has #![forbid(unsafe_code)] and #![deny(missing_docs)] in docs\n";
        assert_eq!(scan("crates/map/src/lib.rs", fake).len(), 2);
    }

    #[test]
    fn r5_flags_the_removed_shim_token_everywhere() {
        let vs = scan(
            "crates/bench/src/bin/latency.rs",
            "cast_batch(&m, &q, &mut o, 4);\n",
        );
        assert_eq!(rules_of(&vs), ["R5"]);
        // Gone for good: even its former home may not reintroduce it, as a
        // call or as a definition.
        assert_eq!(
            rules_of(&scan(
                "crates/range/src/batch.rs",
                "pub fn cast_batch() {}\n"
            )),
            ["R5"]
        );
        // But only as a standalone token — and never in masked positions.
        assert!(scan("crates/range/src/lut.rs", "chunked_cast_batched(q);\n").is_empty());
        assert!(scan(
            "crates/range/src/lut.rs",
            "// cast_batch used to live here\nlet s = \"cast_batch\";\n"
        )
        .is_empty());
    }

    #[test]
    fn r6_flags_the_deprecated_shim_outside_compat_modules() {
        let vs = scan(
            "crates/bench/src/faults.rs",
            "let pf = SynPf::with_owned_map(&grid, config);\n",
        );
        assert_eq!(rules_of(&vs), ["R6"]);
        assert_eq!(vs[0].severity, Severity::Deny);
        // A new definition outside a shim module is just as banned.
        assert_eq!(
            rules_of(&scan(
                "crates/pf/src/filter.rs",
                "pub fn with_owned_map() {}\n"
            )),
            ["R6"]
        );
    }

    #[test]
    fn r6_allows_the_shim_inside_compat_modules_only() {
        // The frozen shims themselves live in compat.rs and stay legal.
        assert!(scan("crates/pf/src/compat.rs", "pub fn with_owned_map() {}\n").is_empty());
        assert!(scan("crates/slam/src/compat.rs", "pub fn with_owned_map() {}\n").is_empty());
        // Only as a standalone token, and never in masked positions.
        assert!(scan("crates/pf/src/filter.rs", "let x = with_owned_mapping;\n").is_empty());
        assert!(scan(
            "crates/pf/src/filter.rs",
            "// with_owned_map is deprecated\nlet s = \"with_owned_map\";\n"
        )
        .is_empty());
    }

    #[test]
    fn serve_is_a_hot_path_crate() {
        let vs = scan("crates/serve/src/engine.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&vs), ["R1"]);
        let vs = scan(
            "crates/serve/src/engine.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(rules_of(&vs), ["R3"]);
    }
}
