//! The cross-file rules: R7 (stream-key registry), R8 (telemetry
//! catalog), R9 (steady-state allocations), and the suppression pass.
//!
//! Everything here is a cheap join over per-file [`FileFacts`] — the
//! expensive lexing is cached by content hash ([`crate::cache`]), so these
//! passes re-run on every scan.

use std::collections::{BTreeMap, BTreeSet};

use raceloc_obs::Json;

use crate::facts::{AllowFact, FileFacts, RegistryFact};
use crate::rules::{Severity, Violation};

/// The canonical home of the stream-key registry, exempt from R7 call-site
/// checks (its doc examples and the `Rng64` implementation itself may
/// spell raw keys).
pub const REGISTRY_FILE: &str = "crates/core/src/stream_keys.rs";

/// Files whose `Rng64::stream` call sites R7 does not police.
const R7_EXEMPT: [&str; 2] = [REGISTRY_FILE, "crates/core/src/rng.rs"];

/// Path prefixes R8 does not police: the telemetry implementation itself
/// and the analyzer (whose rule tables spell metric names as data).
const R8_EXEMPT_PREFIXES: [&str; 2] = ["crates/obs/", "crates/analyze/"];

/// The checked-in telemetry catalog's workspace-relative path.
pub const CATALOG_FILE: &str = "telemetry-catalog.json";

/// Callee names never followed by the R9 one-level closure: ubiquitous
/// std / math names whose workspace-wide name-match would pull in
/// unrelated functions.
const CLOSURE_STOPLIST: [&str; 30] = [
    "new",
    "default",
    "from",
    "clone",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "enumerate",
    "map",
    "filter",
    "collect",
    "clear",
    "resize",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "to_vec",
    "to_string",
    "with_capacity",
    "as_ref",
    "as_slice",
    "min",
    "max",
    "abs",
    "sqrt",
];

/// The parsed `telemetry-catalog.json`: the declared name domains and the
/// registered metric names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// First-segment prefixes the workspace owns (`pf`, `sim`, …): any
    /// dotted literal starting with one must be a registered name.
    pub domains: Vec<String>,
    /// Registered metric names → kind (`counter`, `span`, `histogram`).
    pub names: BTreeMap<String, String>,
}

impl Catalog {
    /// Parses the checked-in catalog document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on JSON or schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let domains = doc
            .get("domains")
            .and_then(Json::as_array)
            .ok_or("catalog must have a `domains` array")?
            .iter()
            .filter_map(|d| d.as_str().map(str::to_string))
            .collect();
        let mut names = BTreeMap::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("catalog must have an `entries` array")?
        {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or("catalog entry missing `name`")?;
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("catalog entry missing `kind`")?;
            if names.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("catalog entry `{name}` is duplicated"));
            }
        }
        Ok(Self { domains, names })
    }
}

fn deny(file: &str, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        message,
        severity: Severity::Deny,
    }
}

/// R7 (registry side): every region must be a valid interval, names must
/// be unique, and no two namespaces in the same seed domain may overlap.
/// `file` is where the entries live (diagnostics point there).
pub fn registry_violations(file: &str, entries: &[RegistryFact]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        if e.lo > e.hi {
            out.push(deny(
                file,
                e.line,
                "R7",
                format!(
                    "namespace `{}` has an empty region (lo {:#x} > hi {:#x})",
                    e.name, e.lo, e.hi
                ),
            ));
        }
        for prev in &entries[..i] {
            if prev.name == e.name {
                out.push(deny(
                    file,
                    e.line,
                    "R7",
                    format!("namespace `{}` is registered twice", e.name),
                ));
            }
            if prev.domain == e.domain && prev.lo <= e.hi && e.lo <= prev.hi {
                out.push(deny(
                    file,
                    e.line,
                    "R7",
                    format!(
                        "namespace `{}` [{:#x}, {:#x}] overlaps `{}` [{:#x}, {:#x}] in seed \
                         domain `{}`; overlapping streams under a shared seed correlate",
                        e.name, e.lo, e.hi, prev.name, prev.lo, prev.hi, e.domain
                    ),
                ));
            }
        }
    }
    out
}

/// R7 (call-site side): every non-test `Rng64::stream(seed, key)` call
/// outside the exempt files must build `key` through a registered
/// `stream_keys::` constructor.
pub fn stream_key_violations(
    files: &[(String, FileFacts)],
    registry: &[RegistryFact],
) -> Vec<Violation> {
    let names: BTreeSet<&str> = registry.iter().map(|r| r.name.as_str()).collect();
    let mut out = Vec::new();
    for (path, facts) in files {
        if R7_EXEMPT.contains(&path.as_str()) {
            continue;
        }
        for site in &facts.stream_sites {
            if site.in_test {
                continue;
            }
            if site.key_names.is_empty() {
                out.push(deny(
                    path,
                    site.line,
                    "R7",
                    format!(
                        "`Rng64::stream` key `{}` is not built through the stream-key \
                         registry; use a `raceloc_core::stream_keys::*` constructor \
                         (register a namespace if none fits)",
                        site.key_text
                    ),
                ));
            } else {
                for name in &site.key_names {
                    if !names.contains(name.as_str()) {
                        out.push(deny(
                            path,
                            site.line,
                            "R7",
                            format!(
                                "`stream_keys::{name}` is not a registered namespace \
                                 (registry: {REGISTRY_FILE})"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Whether a string literal is shaped like a dotted metric name
/// (`seg.seg[.seg…]`, lowercase snake segments).
fn is_metric_shaped(s: &str) -> bool {
    let mut segs = s.split('.');
    let Some(first) = segs.next() else {
        return false;
    };
    let seg_ok = |seg: &str, digits_ok: bool| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || (digits_ok && c.is_ascii_digit()))
            && seg.starts_with(|c: char| c.is_ascii_lowercase())
    };
    let mut rest = 0usize;
    for seg in segs {
        if !seg_ok(seg, true) {
            return false;
        }
        rest += 1;
    }
    rest >= 1 && seg_ok(first, false)
}

/// R8: telemetry names at call sites must be cataloged; dotted literals
/// under a declared domain must be cataloged; catalog entries must still
/// be alive in the tree.
pub fn telemetry_violations(
    files: &[(String, FileFacts)],
    catalog: Option<&Catalog>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(catalog) = catalog else {
        out.push(deny(
            CATALOG_FILE,
            1,
            "R8",
            format!("missing or unreadable telemetry catalog `{CATALOG_FILE}`"),
        ));
        return out;
    };
    let exempt = |path: &str| R8_EXEMPT_PREFIXES.iter().any(|p| path.starts_with(p));

    // Liveness: every literal occurrence of a cataloged name anywhere in
    // scanned non-test code keeps the entry alive (fault counter names,
    // for instance, live in `FaultKind` match arms, not at obs call
    // sites). The analyzer's own sources do not count — its fixtures and
    // rule tables spell names as data.
    let mut alive: BTreeSet<&str> = BTreeSet::new();

    for (path, facts) in files {
        let skip = exempt(path);
        if !path.starts_with("crates/analyze/") {
            for (_, lit) in &facts.literals {
                if catalog.names.contains_key(lit.as_str()) {
                    alive.insert(lit);
                }
            }
        }
        if skip {
            continue;
        }
        for site in &facts.tel_sites {
            if site.in_test {
                continue;
            }
            if !catalog.names.contains_key(&site.name) {
                out.push(deny(
                    path,
                    site.line,
                    "R8",
                    format!(
                        "telemetry name `{}` (passed to `.{}(..)`) is not in `{CATALOG_FILE}`; \
                         register it or fix the typo",
                        site.name, site.api
                    ),
                ));
            }
        }
        // Domain-prefix rule: a dotted literal under a declared domain is
        // a metric name wherever it appears. Literals already reported as
        // call-site names on the same line are not double-reported.
        for (line, lit) in &facts.literals {
            if !is_metric_shaped(lit) || catalog.names.contains_key(lit.as_str()) {
                continue;
            }
            if facts
                .tel_sites
                .iter()
                .any(|t| t.line == *line && t.name == *lit)
            {
                continue;
            }
            let first = lit.split('.').next().unwrap_or("");
            if catalog.domains.iter().any(|d| d == first) {
                out.push(deny(
                    path,
                    *line,
                    "R8",
                    format!(
                        "literal `{lit}` uses the telemetry domain `{first}.` but is not in \
                         `{CATALOG_FILE}`; register it or rename it out of the domain"
                    ),
                ));
            }
        }
    }

    for name in catalog.names.keys() {
        if !alive.contains(name.as_str()) {
            out.push(deny(
                CATALOG_FILE,
                1,
                "R8",
                format!("catalog entry `{name}` matches no literal in the tree; delete it"),
            ));
        }
    }
    out
}

/// R9: allocation-shaped expressions in steady-state kernels — every fn
/// marked `// analyze:steady-state` plus, one level deep, every
/// workspace fn a marked fn calls by name (stoplisted std names
/// excluded). Ratchet severity: counted, never failing outright.
pub fn steady_state_violations(files: &[(String, FileFacts)]) -> Vec<Violation> {
    // Pass 1: the marked set and the callee-name frontier.
    let mut frontier: BTreeSet<&str> = BTreeSet::new();
    for (_, facts) in files {
        for f in &facts.fns {
            if f.steady && !f.in_test {
                for c in &f.callees {
                    if !CLOSURE_STOPLIST.contains(&c.as_str()) {
                        frontier.insert(c);
                    }
                }
            }
        }
    }
    // Pass 2: flag allocations in marked fns and frontier fns.
    let mut out = Vec::new();
    for (path, facts) in files {
        for f in &facts.fns {
            if f.in_test {
                continue;
            }
            let why = if f.steady {
                "marked steady-state"
            } else if frontier.contains(f.name.as_str()) {
                "called from a steady-state kernel"
            } else {
                continue;
            };
            for a in &f.allocs {
                out.push(Violation {
                    file: path.clone(),
                    line: a.line,
                    rule: "R9",
                    message: format!(
                        "`{}` allocates inside `{}` ({why}); hoist the buffer into the owning \
                         struct or suppress with an `analyze:allow(R9, ..)` reason",
                        a.what, f.name
                    ),
                    severity: Severity::Ratchet,
                });
            }
        }
    }
    out
}

/// The result of the suppression pass.
#[derive(Debug, Default)]
pub struct Suppressed {
    /// Violations that survived.
    pub violations: Vec<Violation>,
    /// Total `analyze:allow` directives in the tree (the ratcheted
    /// suppression count).
    pub directives: usize,
    /// How many findings were suppressed.
    pub matched: usize,
}

/// Applies `analyze:allow(RULE, ..)` directives: a directive at line `L`
/// of file `F` suppresses findings of that rule in `F` at `L` (trailing
/// comment) or `L+1` (comment-above form). A directive that suppresses
/// nothing becomes an advisory finding so dead suppressions get cleaned
/// up.
pub fn apply_allows(
    allows: &BTreeMap<String, Vec<AllowFact>>,
    violations: Vec<Violation>,
) -> Suppressed {
    let mut used: BTreeMap<(String, usize), bool> = BTreeMap::new();
    let mut directives = 0usize;
    for (file, list) in allows {
        for a in list {
            directives += 1;
            used.insert((file.clone(), a.line), false);
        }
    }
    let mut kept = Vec::new();
    let mut matched = 0usize;
    'viol: for v in violations {
        if let Some(list) = allows.get(&v.file) {
            for a in list {
                if a.rule == v.rule && (v.line == a.line || v.line == a.line + 1) {
                    matched += 1;
                    if let Some(flag) = used.get_mut(&(v.file.clone(), a.line)) {
                        *flag = true;
                    }
                    continue 'viol;
                }
            }
        }
        kept.push(v);
    }
    for (file, list) in allows {
        for a in list {
            if used.get(&(file.clone(), a.line)) == Some(&false) {
                kept.push(Violation {
                    file: file.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!(
                        "`analyze:allow({}, ..)` suppresses nothing here; remove it",
                        a.rule
                    ),
                    severity: Severity::Advisory,
                });
            }
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Suppressed {
        violations: kept,
        directives,
        matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;

    fn reg(name: &str, domain: &str, lo: u64, hi: u64) -> RegistryFact {
        RegistryFact {
            name: name.to_string(),
            domain: domain.to_string(),
            lo,
            hi,
            line: 1,
        }
    }

    #[test]
    fn registry_overlap_and_inversion_are_denied() {
        let vs = registry_violations(
            REGISTRY_FILE,
            &[
                reg("a", "run", 0x100, 0x1FF),
                reg("b", "run", 0x180, 0x2FF),
                reg("c", "other", 0x100, 0x1FF), // other domain: fine
                reg("d", "run", 0x500, 0x400),   // inverted
            ],
        );
        let msgs: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert_eq!(msgs, ["R7", "R7"]);
        assert!(vs[0].message.contains("overlaps"));
        assert!(vs[1].message.contains("empty region"));
    }

    #[test]
    fn unregistered_stream_sites_are_denied_and_exempt_files_skipped() {
        let registry = [reg(
            "pf_motion",
            "run",
            0x1_0000_0000,
            0x00FF_FFFF_FFFF_FFFF,
        )];
        let good = extract(
            "crates/pf/src/a.rs",
            "fn f(s: u64) { Rng64::stream(s, stream_keys::pf_motion(1, 2)); }\n",
        );
        let raw = extract(
            "crates/pf/src/b.rs",
            "fn f(s: u64) { Rng64::stream(s, 0xF1); }\n",
        );
        let unknown = extract(
            "crates/pf/src/c.rs",
            "fn f(s: u64) { Rng64::stream(s, stream_keys::bogus(1)); }\n",
        );
        let exempt = extract(
            "crates/core/src/rng.rs",
            "fn f(s: u64) { Rng64::stream(s, 7); }\n",
        );
        let files = vec![
            ("crates/pf/src/a.rs".to_string(), good),
            ("crates/pf/src/b.rs".to_string(), raw),
            ("crates/pf/src/c.rs".to_string(), unknown),
            ("crates/core/src/rng.rs".to_string(), exempt),
        ];
        let vs = stream_key_violations(&files, &registry);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert_eq!(vs[0].file, "crates/pf/src/b.rs");
        assert!(vs[0].message.contains("not built through"));
        assert_eq!(vs[1].file, "crates/pf/src/c.rs");
        assert!(vs[1].message.contains("bogus"));
    }

    fn catalog(domains: &[&str], names: &[&str]) -> Catalog {
        Catalog {
            domains: domains.iter().map(|s| s.to_string()).collect(),
            names: names
                .iter()
                .map(|s| (s.to_string(), "counter".to_string()))
                .collect(),
        }
    }

    #[test]
    fn uncataloged_names_dead_entries_and_domain_literals() {
        let cat = catalog(&["pf", "sim"], &["pf.motion", "pf.dead"]);
        let a = extract(
            "crates/pf/src/a.rs",
            "fn f(t: &T) { t.add(\"pf.motion\", 1); t.add(\"pf.typo\", 1); }\n",
        );
        let b = extract(
            "crates/sim/src/b.rs",
            "const NAMES: [&str; 1] = [\"sim.rogue\"];\nfn g() { let msg = \"sim crashed hard\"; }\n",
        );
        let files = vec![
            ("crates/pf/src/a.rs".to_string(), a),
            ("crates/sim/src/b.rs".to_string(), b),
        ];
        let vs = telemetry_violations(&files, Some(&cat));
        let summary: Vec<(&str, bool)> = vs
            .iter()
            .map(|v| (v.file.as_str(), v.message.contains("pf.typo")))
            .collect();
        assert_eq!(vs.len(), 3, "{vs:?}");
        // Call site with uncataloged name.
        assert!(summary.contains(&("crates/pf/src/a.rs", true)));
        // Domain-shaped literal not registered.
        assert!(vs.iter().any(|v| v.message.contains("sim.rogue")));
        // Dead catalog entry (prose literal "sim crashed hard" is not
        // metric-shaped and does not trip the domain rule).
        assert!(vs
            .iter()
            .any(|v| v.file == CATALOG_FILE && v.message.contains("pf.dead")));
    }

    #[test]
    fn missing_catalog_is_one_denial() {
        let vs = telemetry_violations(&[], None);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "R8");
    }

    #[test]
    fn metric_shape_grammar() {
        assert!(is_metric_shaped("pf.motion"));
        assert!(is_metric_shaped("faults.lidar_blackout.activations"));
        assert!(is_metric_shaped("par.pool.chunk_le_64"));
        assert!(!is_metric_shaped("plain"));
        assert!(!is_metric_shaped("Not.a.metric"));
        assert!(!is_metric_shaped("has space.x"));
        assert!(!is_metric_shaped(".leading"));
        assert!(!is_metric_shaped("trailing."));
    }

    #[test]
    fn steady_state_closure_is_one_level_and_ratchet() {
        let kernel = extract(
            "crates/pf/src/k.rs",
            "// analyze:steady-state\nfn run_kernel(v: &mut Vec<f64>) {\n    v.push(1.0);\n    helper();\n}\n",
        );
        let helpers = extract(
            "crates/range/src/h.rs",
            "fn helper() { let v = Vec::new(); deeper(); }\nfn deeper() { let b = Box::new(1); }\nfn unrelated() { let s = format!(\"x\"); }\n",
        );
        let files = vec![
            ("crates/pf/src/k.rs".to_string(), kernel),
            ("crates/range/src/h.rs".to_string(), helpers),
        ];
        let vs = steady_state_violations(&files);
        assert!(vs
            .iter()
            .all(|v| v.severity == Severity::Ratchet && v.rule == "R9"));
        // push in the kernel + Vec::new in helper; NOT deeper (two levels)
        // and NOT unrelated.
        let files_hit: Vec<&str> = vs.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(vs.len(), 2, "{files_hit:?}");
        assert!(vs.iter().any(|v| v.message.contains(".push(..)")));
        assert!(vs
            .iter()
            .any(|v| v.message.contains("Vec::new") && v.message.contains("helper")));
    }

    #[test]
    fn allows_suppress_same_line_and_next_line_only() {
        let facts = extract(
            "crates/pf/src/x.rs",
            "fn f(v: &[f64]) {\n    // analyze:allow(R1, reason = \"bounds checked above\")\n    let a = v.first().unwrap();\n    let b = v.last().unwrap();\n}\n",
        );
        let mut allows = BTreeMap::new();
        allows.insert("crates/pf/src/x.rs".to_string(), facts.allows.clone());
        let sup = apply_allows(&allows, facts.violations);
        assert_eq!(sup.directives, 1);
        assert_eq!(sup.matched, 1, "{:?}", sup.violations);
        // Line 4's unwrap survives.
        assert_eq!(
            sup.violations
                .iter()
                .filter(|v| v.rule == "R1")
                .map(|v| v.line)
                .collect::<Vec<_>>(),
            [4]
        );
    }

    #[test]
    fn unused_allow_becomes_advisory() {
        let facts = extract(
            "crates/metrics/src/x.rs",
            "// analyze:allow(R1, reason = \"nothing here panics\")\nfn f() {}\n",
        );
        let mut allows = BTreeMap::new();
        allows.insert("crates/metrics/src/x.rs".to_string(), facts.allows.clone());
        let sup = apply_allows(&allows, facts.violations);
        assert_eq!(sup.matched, 0);
        let adv: Vec<&Violation> = sup
            .violations
            .iter()
            .filter(|v| v.severity == Severity::Advisory)
            .collect();
        assert_eq!(adv.len(), 1);
        assert!(adv[0].message.contains("suppresses nothing"));
    }
}
