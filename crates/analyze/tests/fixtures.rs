//! Table-driven fixture corpus: one known-bad and one known-clean snippet
//! per rule R1–R9 (plus the `analyze:allow` grammar), each run through the
//! same per-file + cross-file pipeline `run_scan` uses. The fixture files
//! live in `tests/fixtures/` and are excluded from the workspace walk, so
//! the known-bad snippets never reach the self-scan.

use std::collections::BTreeMap;
use std::path::PathBuf;

use raceloc_analyze::crossfile::{self, Catalog};
use raceloc_analyze::facts::{self, RegistryFact};
use raceloc_analyze::rules::Violation;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A registry the R7 call-site check resolves against: `pf_motion` is the
/// one blessed namespace.
fn test_registry() -> Vec<RegistryFact> {
    vec![RegistryFact {
        name: "pf_motion".to_string(),
        domain: "run".to_string(),
        lo: 0,
        hi: u64::MAX,
        line: 1,
    }]
}

/// A catalog with one registered name (`pf.motion`) under the `pf` domain.
fn test_catalog() -> Catalog {
    Catalog::from_json(
        r#"{"domains": ["pf"], "entries": [{"name": "pf.motion", "kind": "counter"}]}"#,
    )
    .expect("test catalog parses")
}

/// Runs one fixture through the full pipeline (local rules, registry,
/// stream keys, telemetry, steady-state, suppressions) as if it were the
/// only file in the workspace, keeping findings attributed to it.
fn scan_fixture(fixture: &str, scan_path: &str) -> crossfile::Suppressed {
    let text = std::fs::read_to_string(fixture_dir().join(fixture))
        .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
    let f = facts::extract(scan_path, &text);
    let mut violations = f.violations.clone();
    violations.extend(crossfile::registry_violations(scan_path, &f.registry));
    let files = vec![(scan_path.to_string(), f.clone())];
    violations.extend(crossfile::stream_key_violations(&files, &test_registry()));
    violations.extend(crossfile::telemetry_violations(
        &files,
        Some(&test_catalog()),
    ));
    violations.extend(crossfile::steady_state_violations(&files));
    // Dead-catalog-entry findings point at the catalog, not the fixture.
    violations.retain(|v| v.file == scan_path);
    let mut allows = BTreeMap::new();
    if !f.allows.is_empty() {
        allows.insert(scan_path.to_string(), f.allows.clone());
    }
    crossfile::apply_allows(&allows, violations)
}

fn rules_found(sup: &crossfile::Suppressed, rule: &str) -> Vec<Violation> {
    sup.violations
        .iter()
        .filter(|v| v.rule == rule)
        .cloned()
        .collect()
}

#[test]
fn fixture_table_covers_every_rule() {
    // (fixture file, path the rules see, rule under test, expect findings)
    const HOT: &str = "crates/pf/src/fixture.rs";
    let table: &[(&str, &str, &str, bool)] = &[
        ("r1_bad.rs", HOT, "R1", true),
        ("r1_clean.rs", HOT, "R1", false),
        ("r1_idx_bad.rs", HOT, "R1-idx", true),
        ("r1_idx_clean.rs", HOT, "R1-idx", false),
        ("r2_bad.rs", HOT, "R2", true),
        ("r2_clean.rs", HOT, "R2", false),
        ("r3_bad.rs", HOT, "R3", true),
        ("r3_clean.rs", HOT, "R3", false),
        ("r4_bad.rs", HOT, "R4", true),
        ("r4_clean.rs", "crates/pf/src/lib.rs", "R4", false),
        // The lint wall is required in crate roots: a clean non-root file
        // scanned *as* a root without the wall is an R4 finding.
        ("r1_clean.rs", "crates/pf/src/lib.rs", "R4", true),
        ("r5_bad.rs", HOT, "R5", true),
        ("r5_clean.rs", HOT, "R5", false),
        ("r6_bad.rs", HOT, "R6", true),
        ("r6_clean.rs", HOT, "R6", false),
        ("r7_bad.rs", HOT, "R7", true),
        ("r7_clean.rs", HOT, "R7", false),
        (
            "r7_registry_bad.rs",
            "crates/core/src/fixture.rs",
            "R7",
            true,
        ),
        (
            "r7_registry_clean.rs",
            "crates/core/src/fixture.rs",
            "R7",
            false,
        ),
        ("r8_bad.rs", HOT, "R8", true),
        ("r8_clean.rs", HOT, "R8", false),
        ("r9_bad.rs", HOT, "R9", true),
        ("r9_clean.rs", HOT, "R9", false),
        ("allow_bad.rs", HOT, "allow", true),
        ("allow_clean.rs", HOT, "R1", false),
    ];
    for (fixture, scan_path, rule, expect_bad) in table {
        let sup = scan_fixture(fixture, scan_path);
        let found = rules_found(&sup, rule);
        if *expect_bad {
            assert!(
                !found.is_empty(),
                "{fixture}: expected at least one {rule} finding, got none \
                 (all findings: {:?})",
                sup.violations
            );
        } else {
            assert!(
                found.is_empty(),
                "{fixture}: expected no {rule} findings, got {found:?}"
            );
        }
    }
}

#[test]
fn clean_fixtures_are_clean_of_every_deny_rule() {
    // The clean half of the corpus must not trip *any* deny rule, not just
    // the one it exercises (advisory findings like R1-idx are fine).
    for fixture in [
        "r1_clean.rs",
        "r2_clean.rs",
        "r3_clean.rs",
        "r4_clean.rs",
        "r5_clean.rs",
        "r6_clean.rs",
        "r7_clean.rs",
        "r7_registry_clean.rs",
        "r8_clean.rs",
        "r9_clean.rs",
        "allow_clean.rs",
    ] {
        let scan_path = if fixture == "r4_clean.rs" {
            "crates/pf/src/lib.rs"
        } else {
            "crates/pf/src/fixture.rs"
        };
        let sup = scan_fixture(fixture, scan_path);
        let denies: Vec<&Violation> = sup
            .violations
            .iter()
            .filter(|v| v.severity == raceloc_analyze::rules::Severity::Deny)
            .collect();
        assert!(denies.is_empty(), "{fixture}: deny findings {denies:?}");
    }
}

#[test]
fn r1_idx_suppression_matches_and_counts() {
    let sup = scan_fixture("r1_idx_allowed.rs", "crates/pf/src/fixture.rs");
    assert!(
        rules_found(&sup, "R1-idx").is_empty(),
        "the reasoned directive must suppress the indexing advisory"
    );
    assert_eq!(sup.directives, 1, "one allow directive in the fixture");
    assert_eq!(sup.matched, 1, "it must match exactly one finding");
    assert!(
        rules_found(&sup, "allow").is_empty(),
        "a matching directive is not itself a finding"
    );
}

#[test]
fn allow_suppression_is_case_by_case_not_blanket() {
    // allow_clean.rs suppresses the single R1 on the directive's next
    // line; a second unsuppressed violation elsewhere must still surface.
    let sup = scan_fixture("allow_clean.rs", "crates/pf/src/fixture.rs");
    assert_eq!(sup.directives, 1);
    assert_eq!(sup.matched, 1);
    let sup_bad = scan_fixture("r1_bad.rs", "crates/pf/src/fixture.rs");
    assert!(!rules_found(&sup_bad, "R1").is_empty());
}

#[test]
fn dead_catalog_entries_are_flagged_at_the_catalog() {
    // r1_clean.rs never mentions `pf.motion`, so the catalog's only entry
    // is dead — reported against the catalog file itself.
    let text = std::fs::read_to_string(fixture_dir().join("r1_clean.rs")).expect("fixture");
    let f = facts::extract("crates/pf/src/fixture.rs", &text);
    let files = vec![("crates/pf/src/fixture.rs".to_string(), f)];
    let viols = crossfile::telemetry_violations(&files, Some(&test_catalog()));
    assert!(
        viols
            .iter()
            .any(|v| v.rule == "R8" && v.file == crossfile::CATALOG_FILE),
        "{viols:?}"
    );
}
