// Known-bad for R1: `unwrap()` on the hot path can panic mid-lap.
pub fn pick(best: Option<f64>) -> f64 {
    best.unwrap()
}
