// Known-bad for R2: partial_cmp().unwrap() is not a total order over NaN.
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
