// Known-bad for the suppression grammar: the reason is mandatory.
// analyze:allow(R1)
pub fn pick(best: Option<f64>) -> f64 {
    best.unwrap_or(0.0)
}
