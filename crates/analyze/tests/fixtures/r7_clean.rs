// Known-clean for R7: the key comes from the central registry.
pub fn noise(seed: u64, epoch: u64, chunk: u64) -> f64 {
    let mut rng = Rng64::stream(seed, stream_keys::pf_motion(epoch, chunk));
    rng.next_f64()
}
