// Known-clean for R1: the missing case is handled, not panicked on.
pub fn pick(best: Option<f64>) -> f64 {
    best.unwrap_or(0.0)
}
