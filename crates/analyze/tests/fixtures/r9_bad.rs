// Known-bad for R9: per-step allocations inside a steady-state kernel.
// analyze:steady-state
pub fn step(&mut self) {
    let mut scratch = Vec::new();
    scratch.push(self.acc);
    self.msg = format!("step {}", self.n);
}
