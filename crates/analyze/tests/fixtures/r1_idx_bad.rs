// Known-bad for R1-idx (advisory): direct indexing can panic.
pub fn third(xs: &[f64]) -> f64 {
    xs[2]
}
