// Known-bad for R7: an ad-hoc stream key outside the registry.
pub fn noise(seed: u64, epoch: u64, chunk: u64) -> f64 {
    let mut rng = Rng64::stream(seed, (epoch << 32) | chunk);
    rng.next_f64()
}
