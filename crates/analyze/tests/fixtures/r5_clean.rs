// Known-clean for R5: the supported batched entry point.
pub fn refresh(m: &Map, q: &[Query], o: &mut [f64]) {
    m.par_ranges_into(q, o);
}
