// Known-clean for R8: the name is registered in the catalog.
pub fn observe(tel: &Telemetry) {
    tel.add("pf.motion", 1);
}
