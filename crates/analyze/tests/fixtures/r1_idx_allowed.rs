// R1-idx finding suppressed with a reasoned directive (satellite: the
// suppression grammar applies to the advisory indexing audit too).
pub fn third(xs: &[f64]) -> f64 {
    // analyze:allow(R1-idx, reason = "index 2 is bounds-checked by the caller's arity contract")
    xs[2]
}
