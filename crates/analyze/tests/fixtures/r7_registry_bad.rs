// Known-bad for R7 (registry side): two namespaces in the same seed
// domain with overlapping key regions.
pub const A: StreamNamespace = StreamNamespace {
    name: "fixture_a",
    domain: "run",
    lo: 0x0000_0000_0000_0000,
    hi: 0x00FF_FFFF_FFFF_FFFF,
};
pub const B: StreamNamespace = StreamNamespace {
    name: "fixture_b",
    domain: "run",
    lo: 0x0080_0000_0000_0000,
    hi: 0x01FF_FFFF_FFFF_FFFF,
};
