// Known-bad for R4: `unsafe` is banned workspace-wide.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
