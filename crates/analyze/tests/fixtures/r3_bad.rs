// Known-bad for R3: randomized iteration order and wall-clock reads.
use std::collections::HashMap;
pub fn timing() -> std::time::Instant {
    std::time::Instant::now()
}
