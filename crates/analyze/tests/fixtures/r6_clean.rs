// Known-clean for R6: localizers built over the shared artifact bundle.
pub fn build(store: &mut ArtifactStore, cfg: Config) -> SynPf {
    SynPf::from_artifacts(store.get_or_build(cfg.map_id), cfg)
}
