// Known-clean for R9: the kernel reuses owned buffers.
// analyze:steady-state
pub fn step(&mut self) {
    self.buf.clear();
    self.acc = integrate(self.acc, self.dt);
}
