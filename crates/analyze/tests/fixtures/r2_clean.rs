// Known-clean for R2: total_cmp is defined for every float bit pattern.
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
