// Known-clean for the suppression grammar: a reasoned directive
// suppressing a real finding on the next line.
pub fn pick(best: Option<f64>) -> f64 {
    // analyze:allow(R1, reason = "fixture: demonstrates a reasoned suppression")
    best.unwrap()
}
