// Known-clean for R1-idx: checked access.
pub fn third(xs: &[f64]) -> Option<f64> {
    xs.get(2).copied()
}
