// Known-clean for R3: ordered container, no clock reads.
use std::collections::BTreeMap;
pub fn collect(names: &[String]) -> BTreeMap<String, usize> {
    names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect()
}
