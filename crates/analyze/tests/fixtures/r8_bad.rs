// Known-bad for R8: a telemetry name missing from the catalog.
pub fn observe(tel: &Telemetry) {
    tel.add("pf.unregistered_counter", 1);
}
