// Known-bad for R6: the deprecated owning constructor outside compat.rs.
pub fn build(grid: &Grid, cfg: Config) -> SynPf {
    SynPf::with_owned_map(grid, cfg)
}
