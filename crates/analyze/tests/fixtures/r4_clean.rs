#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Known-clean for R4: lint wall present, no unsafe.
pub fn id(x: u8) -> u8 {
    x
}
