// Known-bad for R5: the removed `cast_batch` shim must not reappear.
pub fn refresh(m: &Map, q: &[Query], o: &mut [f64]) {
    cast_batch(m, q, o, 4);
}
