//! The pass applied to its own workspace: the repository must stay clean
//! against the checked-in baseline, and a seeded violation must be caught
//! with a `file:line` diagnostic.
//!
//! This makes `cargo test` enforce the same gate CI's `analyze` step does,
//! so a regression cannot land even when only the tier-1 command runs.

use std::path::Path;

use raceloc_analyze::baseline::Baseline;
use raceloc_analyze::mask::MaskedFile;
use raceloc_analyze::rules::{scan_file, Severity};
use raceloc_analyze::{run_scan, run_scan_with, workspace, ScanOptions};

fn repo_root() -> std::path::PathBuf {
    workspace::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analyze")
}

fn checked_in_baseline(root: &Path) -> Baseline {
    let path = root.join("analyze-baseline.json");
    let text = std::fs::read_to_string(&path).expect("analyze-baseline.json is checked in");
    Baseline::from_json(&text).expect("baseline parses")
}

#[test]
fn workspace_is_clean_against_the_checked_in_baseline() {
    let root = repo_root();
    let baseline = checked_in_baseline(&root);
    let report = run_scan(&root, &baseline).expect("scan succeeds");
    assert!(
        report.verdict.new_violations.is_empty(),
        "new static-analysis violations:\n{}",
        report.human_new_violations().join("\n")
    );
    assert!(
        report.verdict.passes_check(),
        "the checked-in baseline does not pass --check: stale {:?}, ratchet \
         regressions {:?}, ratchet stale {:?}",
        report.verdict.stale,
        report.verdict.ratchet_regressions,
        report.verdict.ratchet_stale,
    );
    assert!(
        report.files_scanned >= 90,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn warm_rescan_relexes_nothing_until_a_file_changes() {
    let root = repo_root();
    let baseline = checked_in_baseline(&root);
    let cache = std::env::temp_dir().join(format!(
        "raceloc-analyze-selfscan-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let opts = ScanOptions {
        cache_path: Some(cache.clone()),
        catalog_path: None,
    };
    let cold = run_scan_with(&root, &baseline, &opts).expect("cold scan");
    assert_eq!(
        cold.files_relexed, cold.files_scanned,
        "first pass against an empty cache must lex everything"
    );
    let warm = run_scan_with(&root, &baseline, &opts).expect("warm scan");
    assert_eq!(
        warm.files_relexed, 0,
        "nothing changed, so nothing should re-lex"
    );
    // Identical results either way.
    assert_eq!(warm.violations.len(), cold.violations.len());
    assert_eq!(warm.suppressions, cold.suppressions);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn baseline_is_ratcheted_small() {
    let root = repo_root();
    let baseline = checked_in_baseline(&root);
    // Acceptance criterion: the shipped baseline has at most 5 entries.
    assert!(
        baseline.len() <= 5,
        "baseline has grown to {} entries; fix the violations instead",
        baseline.len()
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = repo_root();
    let baseline = checked_in_baseline(&root);
    let report = run_scan(&root, &baseline).expect("scan succeeds");
    assert!(
        report.verdict.stale.is_empty(),
        "stale baseline entries (run --update-baseline): {:?}",
        report.verdict.stale
    );
}

#[test]
fn seeded_unwrap_in_pf_filter_is_caught_with_file_and_line() {
    // The acceptance scenario from ISSUE 2, run in memory: an `unwrap()`
    // slipped into `crates/pf/src/filter.rs` must fail with a file:line
    // diagnostic.
    let seeded = "\
fn estimate(&self) -> Pose2 {
    let best = self.weights.iter().copied().reduce(f64::max);
    best.unwrap()
}
";
    let violations = scan_file("crates/pf/src/filter.rs", &MaskedFile::new(seeded));
    let deny: Vec<_> = violations
        .iter()
        .filter(|v| v.severity == Severity::Deny)
        .collect();
    assert_eq!(deny.len(), 1, "{violations:?}");
    assert_eq!(deny[0].rule, "R1");
    assert_eq!(deny[0].line, 3);
    // And the empty baseline cannot absorb it.
    let verdict = Baseline::empty().compare(&violations, 0);
    assert_eq!(verdict.new_violations.len(), 1);
}

#[test]
fn every_crate_root_carries_the_lint_wall() {
    let root = repo_root();
    let files = workspace::collect_sources(&root).expect("walk succeeds");
    let roots: Vec<_> = files
        .iter()
        .filter(|(p, _)| raceloc_analyze::rules::is_crate_root(p))
        .collect();
    // 15 = 14 workspace crates (including this one) + the root facade crate.
    assert_eq!(roots.len(), 15, "unexpected crate-root set: {:?}", {
        let names: Vec<&str> = roots.iter().map(|(p, _)| p.as_str()).collect();
        names
    });
    for (path, text) in roots {
        assert!(
            text.contains("#![forbid(unsafe_code)]") && text.contains("#![deny(missing_docs)]"),
            "{path} is missing the lint wall"
        );
    }
}
