//! Regression corpus for `MaskedFile` (ISSUE 7 satellite): raw strings,
//! nested block comments, and `#[cfg(test)]` module boundaries. Every case
//! here is a shape that once mis-masked (or plausibly could) and whose
//! failure mode is silent — a rule matcher scanning text that should have
//! been blanked, or test code policed as production code.

use raceloc_analyze::mask::MaskedFile;

// ---------------------------------------------------------------- raw strings

#[test]
fn raw_string_with_hashes_hides_inner_quote() {
    let src = "let s = r#\"has \" quote and unwrap()\"#; let after = 1;";
    let m = MaskedFile::new(src);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.contains("let after = 1;"), "{}", m.code);
}

#[test]
fn raw_string_with_two_hashes_does_not_close_on_one() {
    // `"#` appears inside an `r##"…"##` literal and must not terminate it.
    let src = "let s = r##\"inner \"# still literal unwrap()\"##; let z = 2;";
    let m = MaskedFile::new(src);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.contains("let z = 2;"), "{}", m.code);
}

#[test]
fn byte_and_raw_byte_strings_are_masked() {
    let src = "let a = b\"unwrap()\"; let b2 = br#\"panic!()\"#; let c = 3;";
    let m = MaskedFile::new(src);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(!m.code.contains("panic"), "{}", m.code);
    assert!(m.code.contains("let c = 3;"), "{}", m.code);
}

#[test]
fn identifier_ending_in_r_is_not_a_raw_string_opener() {
    // `caster` ends in `r`; the following separate string must mask, and
    // the identifier itself must survive.
    let src = "let caster = lookup(\"unwrap()\"); let done = 4;";
    let m = MaskedFile::new(src);
    assert!(m.code.contains("let caster = lookup("), "{}", m.code);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.contains("let done = 4;"), "{}", m.code);
}

#[test]
fn unterminated_raw_string_masks_to_eof_without_panic() {
    let src = "let s = r#\"never closed unwrap()\nstill inside\n";
    let m = MaskedFile::new(src);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert_eq!(m.code.lines().count(), src.lines().count());
}

#[test]
fn multiline_raw_string_preserves_line_numbers() {
    let src = "line0();\nlet s = r#\"a\nb\nc\"#;\nline4();\n";
    let m = MaskedFile::new(src);
    assert_eq!(m.code.lines().count(), 5);
    let lines: Vec<&str> = m.code.lines().collect();
    assert!(lines[0].contains("line0();"));
    assert!(lines[4].contains("line4();"));
}

#[test]
fn binary_literal_is_not_a_byte_string() {
    let src = "let x = 0b1010; let s = \"unwrap()\";";
    let m = MaskedFile::new(src);
    assert!(m.code.contains("0b1010"), "{}", m.code);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
}

// ------------------------------------------------------- nested block comments

#[test]
fn triply_nested_block_comment_masks_everything() {
    let src = "a /* 1 /* 2 /* 3 unwrap() */ 2 */ 1 */ b\n";
    let m = MaskedFile::new(src);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.trim().starts_with('a'), "{}", m.code);
    assert!(m.code.trim().ends_with('b'), "{}", m.code);
}

#[test]
fn unterminated_nested_block_comment_masks_to_eof() {
    let src = "code(); /* outer /* inner closes */ but outer never does\nunwrap()\n";
    let m = MaskedFile::new(src);
    assert!(m.code.contains("code();"), "{}", m.code);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert_eq!(m.code.lines().count(), src.lines().count());
}

#[test]
fn quote_inside_block_comment_does_not_open_a_string() {
    // If the `"` inside the comment leaked into string state, `after()`
    // would be swallowed as literal text.
    let src = "/* has a \" quote */ after(); \"real string unwrap()\" tail();";
    let m = MaskedFile::new(src);
    assert!(m.code.contains("after();"), "{}", m.code);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.contains("tail();"), "{}", m.code);
}

#[test]
fn comment_openers_inside_strings_are_inert() {
    let src = "let s = \"/* not a comment\"; live(); // real comment unwrap()\nnext();\n";
    let m = MaskedFile::new(src);
    assert!(m.code.contains("live();"), "{}", m.code);
    assert!(!m.code.contains("unwrap"), "{}", m.code);
    assert!(m.code.contains("next();"), "{}", m.code);
}

#[test]
fn block_comment_across_lines_preserves_line_count() {
    let src = "a();\n/* one\ntwo\nthree */\nb();\n";
    let m = MaskedFile::new(src);
    assert_eq!(m.code.lines().count(), 5);
    let lines: Vec<&str> = m.code.lines().collect();
    assert!(lines[0].contains("a();"));
    assert!(lines[4].contains("b();"));
}

// --------------------------------------------------- cfg(test) module bounds

#[test]
fn code_after_test_module_is_not_flagged() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() {}
}
fn live() {}
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(0));
    assert!(m.is_test_line(2));
    assert!(!m.is_test_line(4), "live fn after the test mod was flagged");
}

#[test]
fn attributes_between_cfg_test_and_the_item_are_covered() {
    let src = "\
#[cfg(test)]
#[allow(dead_code)]
mod tests {
    fn t() {}
}
fn live() {}
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(2), "mod line");
    assert!(m.is_test_line(3), "body line");
    assert!(!m.is_test_line(5), "live fn");
}

#[test]
fn nested_braces_inside_test_module_do_not_end_the_region_early() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() {
        if a { b() } else { c() }
    }
    fn u() {}
}
fn live() {}
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(5), "second test fn still inside the region");
    assert!(!m.is_test_line(7), "live fn after the region");
}

#[test]
fn two_test_modules_flag_two_disjoint_regions() {
    let src = "\
#[cfg(test)]
mod a { fn t() {} }
fn live() {}
#[cfg(test)]
mod b { fn u() {} }
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(1));
    assert!(!m.is_test_line(2), "live fn between the two test mods");
    assert!(m.is_test_line(4));
}

#[test]
fn cfg_test_on_a_braceless_item_covers_nothing() {
    let src = "\
#[cfg(test)]
use helper::Thing;
fn live() { x() }
";
    let m = MaskedFile::new(src);
    assert!(
        !m.is_test_line(2),
        "braceless item must not swallow live code"
    );
}

#[test]
fn cfg_test_spelled_in_a_string_is_ignored() {
    let src = "let s = \"#[cfg(test)]\";\nfn live() { y() }\n";
    let m = MaskedFile::new(src);
    assert!(!m.is_test_line(0));
    assert!(!m.is_test_line(1));
}

#[test]
fn cfg_test_fn_item_covers_exactly_its_body() {
    let src = "\
#[cfg(test)]
fn helper() {
    inner();
}
fn live() {}
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(1));
    assert!(m.is_test_line(2));
    assert!(!m.is_test_line(4));
}

#[test]
fn cfg_not_test_is_not_a_test_region() {
    let src = "#[cfg(not(test))]\nfn live() { z() }\n";
    let m = MaskedFile::new(src);
    assert!(!m.is_test_line(1));
}

#[test]
fn test_region_with_string_containing_brace_keeps_balance() {
    // The `{` inside the string is masked before brace balancing, so the
    // region must still end at the real closing brace.
    let src = "\
#[cfg(test)]
mod tests {
    const S: &str = \"{\";
    fn t() {}
}
fn live() {}
";
    let m = MaskedFile::new(src);
    assert!(m.is_test_line(3));
    assert!(
        !m.is_test_line(5),
        "unbalanced-brace leak past the test mod"
    );
}
