//! Property-based cross-validation of the range-query methods: every
//! accelerated method must agree with exact Bresenham casting within its
//! documented error envelope, on randomly generated enclosed maps.

use proptest::prelude::*;
use raceloc_core::Point2;
use raceloc_map::{CellState, GridIndex, OccupancyGrid};
use raceloc_range::{
    BresenhamCasting, Cddt, CompressedRangeLut, RangeLut, RangeMethod, RayMarching,
};

/// A random wall-enclosed room with scattered interior obstacles.
fn arb_room() -> impl Strategy<Value = OccupancyGrid> {
    (
        16usize..40,
        16usize..40,
        prop::collection::vec((0.1..0.9f64, 0.1..0.9f64), 0..8),
    )
        .prop_map(|(w, h, obstacles)| {
            let mut g = OccupancyGrid::new(w, h, 0.1, Point2::ORIGIN);
            g.fill(CellState::Free);
            for i in 0..w as i64 {
                g.set(GridIndex::new(i, 0), CellState::Occupied);
                g.set(GridIndex::new(i, h as i64 - 1), CellState::Occupied);
            }
            for i in 0..h as i64 {
                g.set(GridIndex::new(0, i), CellState::Occupied);
                g.set(GridIndex::new(w as i64 - 1, i), CellState::Occupied);
            }
            for (fx, fy) in obstacles {
                let c = (fx * w as f64) as i64;
                let r = (fy * h as f64) as i64;
                g.set(GridIndex::new(c, r), CellState::Occupied);
                g.set(GridIndex::new(c + 1, r), CellState::Occupied);
                g.set(GridIndex::new(c, r + 1), CellState::Occupied);
            }
            g
        })
}

fn free_pose(g: &OccupancyGrid, fx: f64, fy: f64) -> Option<(f64, f64)> {
    let (lo, hi) = g.bounds();
    let x = lo.x + fx * (hi.x - lo.x);
    let y = lo.y + fy * (hi.y - lo.y);
    if g.state_at_world(Point2::new(x, y)) == CellState::Free {
        Some((x, y))
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_methods_within_envelope_of_bresenham(
        g in arb_room(),
        fx in 0.05..0.95f64,
        fy in 0.05..0.95f64,
        theta in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let Some((x, y)) = free_pose(&g, fx, fy) else {
            return Ok(());
        };
        let max_range = 8.0;
        let bres = BresenhamCasting::new(&g, max_range);
        let reference = bres.range(x, y, theta);

        let rm = RayMarching::new(&g, max_range);
        let cddt = Cddt::new(&g, max_range, 360);
        let lut = RangeLut::from_method(&g, &bres, 180);

        // Ray marching: within a couple of cells except corner-graze cases,
        // where it may miss entirely — bounded by the reference either way.
        let r = rm.range(x, y, theta);
        prop_assert!(r >= 0.0 && r <= max_range);
        // CDDT: heading discretization plus footprint conservatism. It may
        // overshoot slightly (discretized heading) and may *undershoot*
        // arbitrarily when the true ray grazes past an obstacle within the
        // conservative footprint — in that case the reported hit must still
        // correspond to real geometry near the ray.
        let c = cddt.range(x, y, theta);
        prop_assert!(c >= 0.0 && c <= max_range);
        prop_assert!(c <= reference + 1.0,
            "cddt overshoot: {c} vs bres {reference} at ({x},{y},{theta})");
        if c < reference - 0.3 {
            // Early hit: the claimed hit point must lie within ~1.5 cells of
            // an actual obstacle (a graze, not a phantom).
            let dm = raceloc_map::DistanceMap::from_grid_with(&g, |s| {
                s == CellState::Occupied
            });
            let hit = Point2::new(x + c * theta.cos(), y + c * theta.sin());
            prop_assert!(
                dm.distance_at_world(hit) <= 1.6 * g.resolution(),
                "phantom cddt hit at {hit} (c={c}, ref={reference})"
            );
        }
        // LUT from the exact method at a bin angle: evaluating at the bin
        // center must reproduce the reference exactly (up to f32).
        let bin = (theta.rem_euclid(std::f64::consts::TAU)
            / std::f64::consts::TAU * 180.0).round() as usize % 180;
        let bin_angle = bin as f64 / 180.0 * std::f64::consts::TAU;
        let cell = g.index_to_world(g.world_to_index(Point2::new(x, y)));
        let l = lut.range(cell.x, cell.y, bin_angle);
        let want = bres.range(cell.x, cell.y, bin_angle);
        prop_assert!((l - want).abs() < 1e-5, "lut {l} vs {want}");
    }

    #[test]
    fn ranges_are_never_negative_or_above_max(
        g in arb_room(),
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
        theta in -10.0..10.0f64,
    ) {
        let (lo, hi) = g.bounds();
        let x = lo.x + fx * (hi.x - lo.x);
        let y = lo.y + fy * (hi.y - lo.y);
        for m in [
            &BresenhamCasting::new(&g, 5.0) as &dyn RangeMethod,
            &RayMarching::new(&g, 5.0),
            &Cddt::new(&g, 5.0, 90),
        ] {
            let r = m.range(x, y, theta);
            prop_assert!((0.0..=5.0).contains(&r), "{r}");
        }
    }

    #[test]
    fn cddt_prune_preserves_free_space_queries(
        g in arb_room(),
        fx in 0.1..0.9f64,
        fy in 0.1..0.9f64,
        theta in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let Some((x, y)) = free_pose(&g, fx, fy) else {
            return Ok(());
        };
        let mut cddt = Cddt::new(&g, 8.0, 180);
        let before = cddt.range(x, y, theta);
        cddt.prune();
        let after = cddt.range(x, y, theta);
        prop_assert!((before - after).abs() < 1e-6,
            "prune changed a free-space query: {before} -> {after}");
    }

    #[test]
    fn batch_equals_scalar(
        g in arb_room(),
        poses in prop::collection::vec((0.1..0.9f64, 0.1..0.9f64, -std::f64::consts::PI..std::f64::consts::PI), 1..32),
        threads in 1usize..5,
    ) {
        let bres = BresenhamCasting::new(&g, 8.0);
        let (lo, hi) = g.bounds();
        let queries: Vec<(f64, f64, f64)> = poses
            .iter()
            .map(|&(fx, fy, t)| {
                (lo.x + fx * (hi.x - lo.x), lo.y + fy * (hi.y - lo.y), t)
            })
            .collect();
        let mut a = vec![0.0; queries.len()];
        let mut b = vec![0.0; queries.len()];
        bres.ranges_into(&queries, &mut a);
        bres.par_ranges_into(&queries, &mut b, threads);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The u16 compressed LUT must stay within half a quantization step of
    /// the f32 LUT everywhere (plus the f32 table's own single-precision
    /// rounding): both tables discretize headings with the identical
    /// nearest-bin rule, so the only disagreement left is each table's own
    /// value quantization (DESIGN.md §11).
    #[test]
    fn compressed_lut_tracks_f32_lut_within_quantization(
        g in arb_room(),
        fx in 0.1..0.9f64,
        fy in 0.1..0.9f64,
        theta in -6.0..6.0f64,
    ) {
        let Some((x, y)) = free_pose(&g, fx, fy) else {
            return Ok(());
        };
        let max_range = 8.0;
        let bins = 72;
        let f32_lut = RangeLut::new(&g, max_range, bins);
        let clut = CompressedRangeLut::new(&g, max_range, bins);
        let step = max_range / f64::from(u16::MAX);
        let a = f32_lut.range(x, y, theta);
        let b = clut.range(x, y, theta);
        prop_assert!((a - b).abs() <= 0.5 * step + 1e-5,
            "compressed {b} vs f32 {a} (step {step})");
    }

    /// The fused beam fan must agree with per-beam scalar queries up to
    /// the documented one-heading-bin boundary wobble: every fan output
    /// equals the quantized bin of the scalar range at the nearest heading
    /// bin or one of its two neighbors. This exercises the fan's branchless
    /// wrap, its cached code→bin table, and its float fallback against the
    /// simple scalar decode chain on random maps, poses, and bearings.
    #[test]
    fn beam_fan_matches_scalar_within_one_heading_bin(
        g in arb_room(),
        fx in 0.1..0.9f64,
        fy in 0.1..0.9f64,
        theta in -6.0..6.0f64,
        bearings in prop::collection::vec(-3.1..3.1f64, 1..48),
        max_bin in 50u32..400,
    ) {
        let Some((x, y)) = free_pose(&g, fx, fy) else {
            return Ok(());
        };
        let max_range = 8.0;
        let bins = 60usize;
        let clut = CompressedRangeLut::new(&g, max_range, bins);
        let inv_res = f64::from(max_bin) / max_range;
        let mut fan = vec![0u32; bearings.len()];
        clut.beam_bins_into(x, y, theta, &bearings, inv_res, max_bin, &mut fan);
        let tau = std::f64::consts::TAU;
        let kn = bins as f64;
        let scalar_bin = |k: usize| -> u32 {
            let center = k as f64 * tau / kn;
            let r = clut.range(x, y, center);
            ((r * inv_res) as u32).min(max_bin)
        };
        for (&b, &got) in bearings.iter().zip(&fan) {
            let phi = (theta + b).rem_euclid(tau);
            let k0 = (phi / tau * kn).round() as usize % bins;
            let candidates = [
                scalar_bin((k0 + bins - 1) % bins),
                scalar_bin(k0),
                scalar_bin((k0 + 1) % bins),
            ];
            prop_assert!(candidates.contains(&got),
                "fan bin {got} not within one heading bin of scalar {candidates:?} \
                 (bearing {b}, theta {theta})");
        }
    }
}
