//! Sphere-tracing ray casting on a Euclidean distance transform.

use crate::RangeMethod;
use raceloc_core::Point2;
use raceloc_map::{DistanceMap, OccupancyGrid};

/// Casts rays by "sphere tracing": from the current point, the distance
/// transform bounds how far the ray can safely advance without crossing an
/// obstacle, so most queries converge in a handful of steps.
///
/// Accuracy is bounded by the stop threshold (one cell by default); speed
/// degrades gracefully for rays that graze long walls.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{RayMarching, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(60, 60, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..60 { grid.set((59i64, r as i64).into(), CellState::Occupied); }
/// let rm = RayMarching::new(&grid, 10.0);
/// assert!((rm.range(1.0, 3.0, 0.0) - 4.9).abs() < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct RayMarching {
    dist: DistanceMap,
    grid: OccupancyGrid,
    max_range: f64,
    /// Consider a hit possible once the distance field drops below this
    /// (meters); the actual cell is then checked for opacity so that rays
    /// grazing an obstacle do not terminate early.
    threshold: f64,
    /// Minimum step to guarantee progress along grazing rays (meters).
    min_step: f64,
}

impl RayMarching {
    /// Builds the distance transform and returns a caster.
    ///
    /// # Panics
    ///
    /// Panics when `max_range` is not positive and finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64) -> Self {
        assert!(
            max_range.is_finite() && max_range > 0.0,
            "max_range must be positive"
        );
        let res = grid.resolution();
        Self {
            dist: DistanceMap::from_grid(grid),
            grid: grid.clone(),
            max_range,
            threshold: res,
            min_step: res * 0.4,
        }
    }

    /// The number of marching steps used for a query (diagnostic, used by
    /// the method-comparison ablation).
    pub fn steps(&self, x: f64, y: f64, theta: f64) -> usize {
        self.cast(x, y, theta).1
    }

    fn cast(&self, x: f64, y: f64, theta: f64) -> (f64, usize) {
        let (s, c) = theta.sin_cos();
        let mut t = 0.0f64;
        let mut steps = 0usize;
        // Worst case: every step advances min_step.
        let max_steps = (self.max_range / self.min_step).ceil() as usize + 2;
        while t < self.max_range && steps < max_steps {
            let p = Point2::new(x + c * t, y + s * t);
            let d = self.dist.distance_at_world(p);
            if d < self.threshold {
                // Close to a surface: only terminate if the ray has actually
                // entered an opaque cell; otherwise creep forward so rays
                // that merely graze an obstacle keep going.
                if self.grid.is_opaque(self.grid.world_to_index(p)) {
                    return (t, steps);
                }
                t += self.min_step;
            } else {
                t += d;
            }
            steps += 1;
        }
        (self.max_range, steps)
    }
}

impl RangeMethod for RayMarching {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        self.cast(x, y, theta).0.clamp(0.0, self.max_range)
    }

    fn memory_bytes(&self) -> usize {
        self.dist.width() * self.dist.height() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use crate::{BresenhamCasting, RangeMethod};
    use std::f64::consts::PI;

    #[test]
    fn agrees_with_bresenham_in_room() {
        // Ray marching is an *approximate* method: rays that clip a tiny
        // corner chord of an obstacle can be missed entirely (same behavior
        // as rangelibc). The contract is tight agreement in the bulk with
        // rare outliers, which is what this test asserts.
        let g = room_with_pillar();
        let rm = RayMarching::new(&g, 20.0);
        let bres = BresenhamCasting::new(&g, 20.0);
        let mut n = 0usize;
        let mut outliers = 0usize;
        let mut total = 0.0f64;
        for i in 0..400 {
            let x = 1.0 + (i % 17) as f64 * 0.5;
            let y = 1.0 + (i % 13) as f64 * 0.6;
            let t = i as f64 * 0.177;
            if g.state_at_world(raceloc_core::Point2::new(x, y)) != raceloc_map::CellState::Free {
                continue;
            }
            let d = (rm.range(x, y, t) - bres.range(x, y, t)).abs();
            n += 1;
            if d > 0.3 {
                outliers += 1;
            } else {
                total += d;
            }
        }
        assert!(n > 250);
        assert!(
            outliers as f64 <= 0.02 * n as f64,
            "{outliers}/{n} outliers"
        );
        let mean_bulk = total / (n - outliers) as f64;
        assert!(mean_bulk < 0.06, "bulk mean error {mean_bulk}");
    }

    #[test]
    fn starting_on_obstacle_returns_zero() {
        let g = square_room();
        let rm = RayMarching::new(&g, 20.0);
        assert!(rm.range(0.05, 5.0, 0.0) < 0.15);
    }

    #[test]
    fn open_direction_hits_max_range() {
        let g = square_room();
        let rm = RayMarching::new(&g, 3.0);
        assert_eq!(rm.range(5.0, 5.0, PI / 3.0), 3.0);
    }

    #[test]
    fn converges_in_few_steps_in_open_space() {
        let g = square_room();
        let rm = RayMarching::new(&g, 20.0);
        // Pointing at a wall from the middle: should take ≪ range/res steps.
        assert!(rm.steps(5.0, 5.0, 0.0) < 20);
    }

    #[test]
    fn grazing_ray_terminates() {
        let g = square_room();
        let rm = RayMarching::new(&g, 20.0);
        // Nearly parallel to the bottom wall, just above it.
        let r = rm.range(0.3, 0.25, 0.02);
        assert!(r.is_finite() && r > 0.0);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = square_room();
        let rm = RayMarching::new(&g, 20.0);
        assert_eq!(rm.memory_bytes(), 100 * 100 * 4);
    }
}
