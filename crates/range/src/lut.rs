//! The precomputed 3-D range lookup table.
//!
//! This is the `rangelibc` "giant LUT" mode the paper selects for its
//! GPU-less on-car computer: every `(x, y, θ)` triple in a discretized pose
//! space stores its range, so a query is a single memory read — constant
//! time at the cost of `cells × θ-bins` floats.

use crate::{RangeMethod, RayMarching};
use raceloc_map::OccupancyGrid;
use std::f64::consts::TAU;
use std::sync::OnceLock;

/// A dense `(θ, row, col) → range` lookup table.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{RangeLut, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..40 { grid.set((35i64, r as i64).into(), CellState::Occupied); }
/// let lut = RangeLut::new(&grid, 8.0, 90);
/// let r = lut.range(0.55, 2.0, 0.0);
/// assert!((r - 2.95).abs() < 0.25, "{r}");
/// ```
#[derive(Debug, Clone)]
pub struct RangeLut {
    width: usize,
    height: usize,
    theta_bins: usize,
    resolution: f64,
    origin_x: f64,
    origin_y: f64,
    max_range: f64,
    /// Layout: `table[theta][row][col]` flattened.
    table: Vec<f32>,
}

impl RangeLut {
    /// Precomputes the table with `theta_bins` bins over `[0, 2π)`, using a
    /// ray-marching caster for construction (one EDT, ~log-time casts).
    ///
    /// Construction cost is `O(cells × theta_bins × cast)`; for maps beyond
    /// a few hundred thousand cell-bins prefer building once and sharing.
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0` or `max_range` is not positive/finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64, theta_bins: usize) -> Self {
        let caster = RayMarching::new(grid, max_range);
        Self::from_method(grid, &caster, theta_bins)
    }

    /// Precomputes the table by querying an existing [`RangeMethod`]
    /// (use this to build an exact table from [`crate::BresenhamCasting`]).
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0`.
    pub fn from_method<M: RangeMethod>(
        grid: &OccupancyGrid,
        method: &M,
        theta_bins: usize,
    ) -> Self {
        assert!(theta_bins > 0, "theta_bins must be positive");
        let (w, h) = (grid.width(), grid.height());
        let res = grid.resolution();
        let origin = grid.origin();
        let max_range = method.max_range();
        let mut table = vec![0.0f32; theta_bins * w * h];
        for k in 0..theta_bins {
            let theta = k as f64 / theta_bins as f64 * TAU;
            let base = k * w * h;
            for r in 0..h {
                let y = origin.y + (r as f64 + 0.5) * res;
                for c in 0..w {
                    let x = origin.x + (c as f64 + 0.5) * res;
                    table[base + r * w + c] = method.range(x, y, theta) as f32;
                }
            }
        }
        Self {
            width: w,
            height: h,
            theta_bins,
            resolution: res,
            origin_x: origin.x,
            origin_y: origin.y,
            max_range,
            table,
        }
    }

    /// Number of heading bins.
    pub fn theta_bins(&self) -> usize {
        self.theta_bins
    }
}

impl RangeMethod for RangeLut {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        let c = ((x - self.origin_x) / self.resolution).floor();
        let r = ((y - self.origin_y) / self.resolution).floor();
        if c < 0.0 || r < 0.0 || c as usize >= self.width || r as usize >= self.height {
            return 0.0; // out of map is opaque
        }
        let mut phi = theta % TAU;
        if phi < 0.0 {
            phi += TAU;
        }
        // Nearest heading bin (bins are centred on k·2π/K).
        let k = (phi / TAU * self.theta_bins as f64).round() as usize % self.theta_bins;
        self.table[k * self.width * self.height + r as usize * self.width + c as usize] as f64
    }

    fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
    }
}

/// A dense range LUT quantized to u16 fixed-point against `max_range`,
/// stored *cell-major* so one particle's whole beam fan is cache-resident.
///
/// Two deliberate differences from [`RangeLut`]:
///
/// - **Quantization.** Each entry is `round(range / max_range · 65535)`;
///   decoding multiplies by `scale = max_range / 65535` (≈ 0.15 mm at the
///   paper's 10 m clamp — two orders of magnitude below the 5 cm grid
///   resolution, so the compression is lossless at map scale). Half the
///   footprint of the f32 table means twice the fraction of the table that
///   stays cache-resident under a localized particle cloud.
/// - **Layout.** `table[(row · width + col) · theta_bins + k]`: all heading
///   bins of one cell are contiguous (72 bins × 2 B = 144 B ≈ 3 cache
///   lines), so the fused cast+weight kernel — 60 beams fanned from one
///   sensor cell — touches a handful of lines instead of 60 theta-major
///   planes 2 MB apart.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{CompressedRangeLut, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..40 { grid.set((35i64, r as i64).into(), CellState::Occupied); }
/// let lut = CompressedRangeLut::new(&grid, 8.0, 90);
/// let r = lut.range(0.55, 2.0, 0.0);
/// assert!((r - 2.95).abs() < 0.25, "{r}");
/// ```
#[derive(Debug)]
pub struct CompressedRangeLut {
    width: usize,
    height: usize,
    theta_bins: usize,
    resolution: f64,
    origin_x: f64,
    origin_y: f64,
    max_range: f64,
    /// Decode factor: `max_range / 65535`.
    scale: f64,
    /// Layout: `table[(row, col)][theta]` flattened (cell-major).
    table: Vec<u16>,
    /// Lazily built code → sensor-bin table for the fused beam fan (see
    /// [`BinCache`]); keyed by the first `(inv_res, max_bin)` pair seen.
    bin_cache: OnceLock<BinCache>,
}

impl Clone for CompressedRangeLut {
    fn clone(&self) -> Self {
        let bin_cache = OnceLock::new();
        if let Some(c) = self.bin_cache.get() {
            let _ = bin_cache.set(c.clone());
        }
        Self {
            width: self.width,
            height: self.height,
            theta_bins: self.theta_bins,
            resolution: self.resolution,
            origin_x: self.origin_x,
            origin_y: self.origin_y,
            max_range: self.max_range,
            scale: self.scale,
            table: self.table.clone(),
            bin_cache,
        }
    }
}

/// Precomputed `u16 range code → sensor range bin` map for one
/// `(inv_res, max_bin)` sensor discretization: each entry is exactly
/// `((decode(code) · inv_res) as u32).min(max_bin)`, so the fused beam fan
/// replaces its per-beam decode/convert/clamp float chain with a single
/// indexed load while producing bit-identical bins.
#[derive(Debug, Clone)]
struct BinCache {
    inv_res_bits: u64,
    max_bin: u32,
    /// Indexed directly by the `u16` code; the fixed-size array makes the
    /// lookup bound-check-free in safe Rust.
    bins: Box<[u16; 65536]>,
}

impl CompressedRangeLut {
    /// Precomputes the table with `theta_bins` bins over `[0, 2π)`, using a
    /// ray-marching caster for construction (one EDT, ~log-time casts).
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0` or `max_range` is not positive/finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64, theta_bins: usize) -> Self {
        let caster = RayMarching::new(grid, max_range);
        Self::from_method(grid, &caster, theta_bins)
    }

    /// Precomputes the table by querying an existing [`RangeMethod`] at
    /// every cell center and heading bin, quantizing each result.
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0` or the method's `max_range` is not
    /// positive/finite.
    pub fn from_method<M: RangeMethod>(
        grid: &OccupancyGrid,
        method: &M,
        theta_bins: usize,
    ) -> Self {
        assert!(theta_bins > 0, "theta_bins must be positive");
        let max_range = method.max_range();
        assert!(
            max_range.is_finite() && max_range > 0.0,
            "max_range must be positive"
        );
        let (w, h) = (grid.width(), grid.height());
        let res = grid.resolution();
        let origin = grid.origin();
        let encode = f64::from(u16::MAX) / max_range;
        let mut table = vec![0u16; w * h * theta_bins];
        for r in 0..h {
            let y = origin.y + (r as f64 + 0.5) * res;
            for c in 0..w {
                let x = origin.x + (c as f64 + 0.5) * res;
                let base = (r * w + c) * theta_bins;
                for k in 0..theta_bins {
                    let theta = k as f64 / theta_bins as f64 * TAU;
                    let range = method.range(x, y, theta).clamp(0.0, max_range);
                    table[base + k] = (range * encode).round() as u16;
                }
            }
        }
        Self {
            width: w,
            height: h,
            theta_bins,
            resolution: res,
            origin_x: origin.x,
            origin_y: origin.y,
            max_range,
            scale: max_range / f64::from(u16::MAX),
            table,
            bin_cache: OnceLock::new(),
        }
    }

    /// Number of heading bins.
    pub fn theta_bins(&self) -> usize {
        self.theta_bins
    }

    /// The quantization step in meters (`max_range / 65535`); decoded
    /// ranges differ from the stored f64 by at most half this step.
    pub fn quantization_step(&self) -> f64 {
        self.scale
    }

    /// Builds the code → sensor-bin table for one `(inv_res, max_bin)`
    /// discretization, entry-by-entry identical to the uncached decode
    /// chain. A `max_bin` beyond `u16::MAX` cannot be represented in the
    /// `u16` entries; the use site checks that bound before trusting the
    /// cache, so the table contents are then irrelevant.
    fn build_bin_cache(&self, inv_res: f64, max_bin: u32) -> BinCache {
        let mut bins = Box::new([0u16; 65536]);
        if max_bin <= u32::from(u16::MAX) {
            for (code, bin) in bins.iter_mut().enumerate() {
                let e = f64::from(code as u16) * self.scale;
                *bin = ((e * inv_res) as u32).min(max_bin) as u16;
            }
        }
        BinCache {
            inv_res_bits: inv_res.to_bits(),
            max_bin,
            bins,
        }
    }
}

impl RangeMethod for CompressedRangeLut {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        let c = ((x - self.origin_x) / self.resolution).floor();
        let r = ((y - self.origin_y) / self.resolution).floor();
        if c < 0.0 || r < 0.0 || c as usize >= self.width || r as usize >= self.height {
            return 0.0; // out of map is opaque
        }
        let mut phi = theta % TAU;
        if phi < 0.0 {
            phi += TAU;
        }
        // Nearest heading bin (bins are centred on k·2π/K).
        let k = (phi / TAU * self.theta_bins as f64).round() as usize % self.theta_bins;
        let idx = (r as usize * self.width + c as usize) * self.theta_bins + k;
        f64::from(self.table[idx]) * self.scale
    }

    fn beam_bins_into(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        bearings: &[f64],
        inv_res: f64,
        max_bin: u32,
        out: &mut [u32],
    ) {
        assert_eq!(bearings.len(), out.len(), "bearing/output length mismatch");
        // Truncation equals `floor` for non-negative operands, so checking
        // the sign first keeps the cell lookup free of libm `floor` calls.
        let dx = x - self.origin_x;
        let dy = y - self.origin_y;
        if !(dx >= 0.0 && dy >= 0.0) {
            out.fill(0); // out of map is opaque: range 0 → bin 0
            return;
        }
        let c = (dx / self.resolution) as usize;
        let r = (dy / self.resolution) as usize;
        if c >= self.width || r >= self.height {
            out.fill(0);
            return;
        }
        let base = (r * self.width + c) * self.theta_bins;
        let row = &self.table[base..base + self.theta_bins];
        // One-division range reduction instead of libm `fmod`: the result
        // can land one ULP outside [0, 2π), which the index wrap below
        // absorbs (same one-bin boundary wobble as the fused rounding).
        // Astronomical headings lose precision here; they (and NaN) fail
        // the range test below and take the `rem_euclid` path instead.
        let mut phi = theta - TAU * ((theta * (1.0 / TAU)) as i64 as f64);
        if phi < 0.0 {
            phi += TAU;
        }
        let phi_reduced = (0.0..=TAU).contains(&phi);
        let kb = self.theta_bins as f64 / TAU;
        let kn = self.theta_bins as i64;
        let phik = phi * kb;
        // Lidar bearings are at most one full turn; with that bound the
        // rounded bin index lies in [-kn, 2kn] and the wrap reduces to one
        // conditional add and two conditional subtracts — no integer
        // division (`rem_euclid`) in the per-beam hot loop. Rounding is a
        // biased truncation (`+ kn + 0.5` keeps the operand positive, so
        // `as i64` is a single trunc instruction rather than a libm
        // `round` call); it differs from `round()` only on exact-tie
        // inputs, which is within the documented one-bin boundary wobble.
        // Bearing bound test as an integer max-reduction (absolute value is
        // a mask, non-negative floats order like their bit patterns, NaN
        // maps above everything): unlike the early-exit float loop, this
        // vectorizes, and it runs once per fan call.
        let worst_bearing = bearings
            .iter()
            .fold(0u64, |m, b| m.max(b.to_bits() & 0x7fff_ffff_ffff_ffff));
        if phi_reduced && worst_bearing <= TAU.to_bits() {
            let bias = kn as f64 + 0.5;
            let cache = self
                .bin_cache
                .get_or_init(|| self.build_bin_cache(inv_res, max_bin));
            if cache.inv_res_bits == inv_res.to_bits()
                && cache.max_bin == max_bin
                && max_bin <= u32::from(u16::MAX)
            {
                let phib = phik + bias;
                let last = row.len() - 1;
                // Two passes: the heading-bin arithmetic is branch- and
                // load-free, so it autovectorizes; the dependent table
                // gathers stay in their own scalar loop.
                for (o, &b) in out.iter_mut().zip(bearings) {
                    // `phi·kb + b·kb` can differ from the scalar path's
                    // `((theta + b) mod 2π)·kb` by one ULP, so the chosen
                    // heading bin may differ by one exactly at a bin
                    // boundary; the cached code → bin map below reproduces
                    // `range()` + the trait default's decode bit-for-bit.
                    let mut k = (phib + b * kb) as i64 - kn;
                    k += kn & (k >> 63);
                    k -= kn * i64::from(k >= kn);
                    k -= kn * i64::from(k >= kn);
                    *o = k as u32;
                }
                for o in out.iter_mut() {
                    // `min` proves the index in-bounds (the wrap above
                    // already bounds it), eliding the panic branch.
                    let code = row[(*o as usize).min(last)];
                    *o = u32::from(cache.bins[usize::from(code)]);
                }
            } else {
                // A second sensor discretization queried this table; serve
                // it with the (equivalent) uncached decode chain.
                for (o, &b) in out.iter_mut().zip(bearings) {
                    let mut k = (phik + b * kb + bias) as i64 - kn;
                    k += kn & (k >> 63);
                    k -= kn * i64::from(k >= kn);
                    k -= kn * i64::from(k >= kn);
                    let e = f64::from(row[k as usize]) * self.scale;
                    *o = ((e * inv_res) as u32).min(max_bin);
                }
            }
        } else {
            for (o, &b) in out.iter_mut().zip(bearings) {
                let k = ((phik + b * kb).round() as i64).rem_euclid(kn) as usize;
                let e = f64::from(row[k]) * self.scale;
                *o = ((e * inv_res) as u32).min(max_bin);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use crate::BresenhamCasting;
    use raceloc_core::Point2;
    use raceloc_map::CellState;

    #[test]
    fn agrees_with_bresenham_at_bin_angles() {
        let g = room_with_pillar();
        let bres = BresenhamCasting::new(&g, 20.0);
        let lut = RangeLut::from_method(&g, &bres, 72);
        for i in 0..200 {
            let x = 1.05 + (i % 17) as f64 * 0.45;
            let y = 1.05 + (i % 13) as f64 * 0.55;
            if g.state_at_world(Point2::new(x, y)) != CellState::Free {
                continue;
            }
            let k = i % 72;
            let theta = k as f64 / 72.0 * TAU;
            // LUT quantizes position to the cell center; compare against the
            // caster evaluated at exactly that center.
            let center = g.index_to_world(g.world_to_index(Point2::new(x, y)));
            let want = bres.range(center.x, center.y, theta) as f32 as f64;
            assert!((lut.range(x, y, theta) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn off_bin_angle_snaps_to_nearest() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 4);
        // 4 bins → bin centres at 0°, 90°, 180°, 270°. 40° snaps to 90°.
        let snapped = lut.range(5.05, 5.05, 40.0f64.to_radians());
        let exact_bin = lut.range(5.05, 5.05, std::f64::consts::FRAC_PI_2);
        assert_eq!(snapped, exact_bin);
    }

    #[test]
    fn theta_wraps_around() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 36);
        let a = lut.range(5.0, 5.0, 0.1);
        let b = lut.range(5.0, 5.0, 0.1 + TAU);
        let c = lut.range(5.0, 5.0, 0.1 - TAU);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn out_of_map_is_zero() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 8);
        assert_eq!(lut.range(-1.0, 5.0, 0.0), 0.0);
        assert_eq!(lut.range(5.0, 11.0, 0.0), 0.0);
    }

    #[test]
    fn memory_matches_layout() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 10);
        assert_eq!(lut.memory_bytes(), 10 * 100 * 100 * 4);
        assert_eq!(lut.theta_bins(), 10);
    }

    #[test]
    #[should_panic(expected = "theta_bins")]
    fn zero_bins_panics() {
        RangeLut::new(&square_room(), 10.0, 0);
    }

    /// The u16 error bound the quantization step promises: decoding can be
    /// off by at most half a step from the f32 table (plus the f32 table's
    /// own single-precision rounding of the source f64).
    #[test]
    fn compressed_vs_f32_error_is_bounded_by_the_quantization_step() {
        let g = room_with_pillar();
        let bres = BresenhamCasting::new(&g, 20.0);
        let f32lut = RangeLut::from_method(&g, &bres, 24);
        let c16lut = CompressedRangeLut::from_method(&g, &bres, 24);
        let bound = c16lut.quantization_step() / 2.0 + 1e-5;
        assert!((c16lut.quantization_step() - 20.0 / 65535.0).abs() < 1e-12);
        let mut worst = 0.0f64;
        for i in 0..4000 {
            let x = 0.3 + (i % 31) as f64 * 0.31;
            let y = 0.3 + (i % 29) as f64 * 0.33;
            let t = i as f64 * 0.173;
            let err = (c16lut.range(x, y, t) - f32lut.range(x, y, t)).abs();
            worst = worst.max(err);
        }
        assert!(worst <= bound, "worst {worst} > bound {bound}");
        assert!(worst > 0.0, "some quantization must actually occur");
    }

    #[test]
    fn compressed_fan_matches_scalar_at_bin_angles() {
        let g = room_with_pillar();
        let lut = CompressedRangeLut::new(&g, 20.0, 72);
        let step = TAU / 72.0;
        let bearings: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * step).collect();
        let inv_res = 1.0 / 0.05;
        let max_bin = 200;
        let mut out = vec![0u32; bearings.len()];
        for i in 0..60 {
            let x = 1.05 + (i % 9) as f64 * 0.95;
            let y = 1.05 + (i % 7) as f64 * 1.15;
            let theta = (i % 72) as f64 * step;
            lut.beam_bins_into(x, y, theta, &bearings, inv_res, max_bin, &mut out);
            for (j, &b) in bearings.iter().enumerate() {
                let want = ((lut.range(x, y, theta + b) * inv_res) as u32).min(max_bin);
                assert_eq!(out[j], want, "pose {i} beam {j}");
            }
        }
    }

    /// Off bin centers the fused fan may pick a heading bin one off from the
    /// scalar path (ULP wobble at bin boundaries), but never anything else.
    #[test]
    fn compressed_fan_off_bin_wobble_is_at_most_one_heading_bin() {
        let g = room_with_pillar();
        let lut = CompressedRangeLut::new(&g, 20.0, 72);
        let bearings: Vec<f64> = (0..24).map(|i| -1.9 + i as f64 * 0.163).collect();
        let inv_res = 1.0 / 0.05;
        let max_bin = 200;
        let mut out = vec![0u32; bearings.len()];
        for i in 0..80 {
            let x = 1.03 + (i % 11) as f64 * 0.81;
            let y = 1.07 + (i % 8) as f64 * 1.03;
            let theta = i as f64 * 0.377 - 12.0;
            lut.beam_bins_into(x, y, theta, &bearings, inv_res, max_bin, &mut out);
            for (j, &b) in bearings.iter().enumerate() {
                let candidates: Vec<u32> = (-1..=1)
                    .map(|d| {
                        let t = theta + b + d as f64 * TAU / 72.0;
                        ((lut.range(x, y, t) * inv_res) as u32).min(max_bin)
                    })
                    .collect();
                assert!(
                    candidates.contains(&out[j]),
                    "pose {i} beam {j}: {} not in {candidates:?}",
                    out[j]
                );
            }
        }
    }

    #[test]
    fn compressed_fan_out_of_map_is_all_zero_bins() {
        let g = square_room();
        let lut = CompressedRangeLut::new(&g, 20.0, 8);
        let bearings = [0.0, 0.5, -0.5];
        let mut out = [7u32; 3];
        lut.beam_bins_into(-3.0, 5.0, 0.2, &bearings, 20.0, 100, &mut out);
        assert_eq!(out, [0, 0, 0]);
        assert_eq!(lut.range(-3.0, 5.0, 0.2), 0.0);
    }

    /// The default trait fan (used by every non-LUT method) must agree with
    /// a hand-rolled loop over `range()` exactly.
    #[test]
    fn default_beam_bins_matches_scalar_loop() {
        let g = room_with_pillar();
        let bres = BresenhamCasting::new(&g, 20.0);
        let bearings: Vec<f64> = (0..12).map(|i| -1.2 + i as f64 * 0.21).collect();
        let mut out = vec![0u32; bearings.len()];
        bres.beam_bins_into(3.1, 4.2, 0.7, &bearings, 20.0, 150, &mut out);
        for (j, &b) in bearings.iter().enumerate() {
            let want = ((bres.range(3.1, 4.2, 0.7 + b) * 20.0) as u32).min(150);
            assert_eq!(out[j], want);
        }
    }

    #[test]
    fn compressed_theta_wraps_around() {
        let g = square_room();
        let lut = CompressedRangeLut::new(&g, 20.0, 36);
        let a = lut.range(5.0, 5.0, 0.1);
        assert_eq!(a, lut.range(5.0, 5.0, 0.1 + TAU));
        assert_eq!(a, lut.range(5.0, 5.0, 0.1 - TAU));
    }

    #[test]
    fn compressed_memory_is_half_the_f32_table() {
        let g = square_room();
        let f32lut = RangeLut::new(&g, 20.0, 10);
        let c16lut = CompressedRangeLut::new(&g, 20.0, 10);
        assert_eq!(c16lut.memory_bytes(), 10 * 100 * 100 * 2);
        assert_eq!(c16lut.memory_bytes() * 2, f32lut.memory_bytes());
        assert_eq!(c16lut.theta_bins(), 10);
    }

    #[test]
    #[should_panic(expected = "theta_bins")]
    fn compressed_zero_bins_panics() {
        CompressedRangeLut::new(&square_room(), 10.0, 0);
    }
}
