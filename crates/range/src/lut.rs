//! The precomputed 3-D range lookup table.
//!
//! This is the `rangelibc` "giant LUT" mode the paper selects for its
//! GPU-less on-car computer: every `(x, y, θ)` triple in a discretized pose
//! space stores its range, so a query is a single memory read — constant
//! time at the cost of `cells × θ-bins` floats.

use crate::{RangeMethod, RayMarching};
use raceloc_map::OccupancyGrid;
use std::f64::consts::TAU;

/// A dense `(θ, row, col) → range` lookup table.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{RangeLut, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..40 { grid.set((35i64, r as i64).into(), CellState::Occupied); }
/// let lut = RangeLut::new(&grid, 8.0, 90);
/// let r = lut.range(0.55, 2.0, 0.0);
/// assert!((r - 2.95).abs() < 0.25, "{r}");
/// ```
#[derive(Debug, Clone)]
pub struct RangeLut {
    width: usize,
    height: usize,
    theta_bins: usize,
    resolution: f64,
    origin_x: f64,
    origin_y: f64,
    max_range: f64,
    /// Layout: `table[theta][row][col]` flattened.
    table: Vec<f32>,
}

impl RangeLut {
    /// Precomputes the table with `theta_bins` bins over `[0, 2π)`, using a
    /// ray-marching caster for construction (one EDT, ~log-time casts).
    ///
    /// Construction cost is `O(cells × theta_bins × cast)`; for maps beyond
    /// a few hundred thousand cell-bins prefer building once and sharing.
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0` or `max_range` is not positive/finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64, theta_bins: usize) -> Self {
        let caster = RayMarching::new(grid, max_range);
        Self::from_method(grid, &caster, theta_bins)
    }

    /// Precomputes the table by querying an existing [`RangeMethod`]
    /// (use this to build an exact table from [`crate::BresenhamCasting`]).
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0`.
    pub fn from_method<M: RangeMethod>(
        grid: &OccupancyGrid,
        method: &M,
        theta_bins: usize,
    ) -> Self {
        assert!(theta_bins > 0, "theta_bins must be positive");
        let (w, h) = (grid.width(), grid.height());
        let res = grid.resolution();
        let origin = grid.origin();
        let max_range = method.max_range();
        let mut table = vec![0.0f32; theta_bins * w * h];
        for k in 0..theta_bins {
            let theta = k as f64 / theta_bins as f64 * TAU;
            let base = k * w * h;
            for r in 0..h {
                let y = origin.y + (r as f64 + 0.5) * res;
                for c in 0..w {
                    let x = origin.x + (c as f64 + 0.5) * res;
                    table[base + r * w + c] = method.range(x, y, theta) as f32;
                }
            }
        }
        Self {
            width: w,
            height: h,
            theta_bins,
            resolution: res,
            origin_x: origin.x,
            origin_y: origin.y,
            max_range,
            table,
        }
    }

    /// Number of heading bins.
    pub fn theta_bins(&self) -> usize {
        self.theta_bins
    }
}

impl RangeMethod for RangeLut {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        let c = ((x - self.origin_x) / self.resolution).floor();
        let r = ((y - self.origin_y) / self.resolution).floor();
        if c < 0.0 || r < 0.0 || c as usize >= self.width || r as usize >= self.height {
            return 0.0; // out of map is opaque
        }
        let mut phi = theta % TAU;
        if phi < 0.0 {
            phi += TAU;
        }
        // Nearest heading bin (bins are centred on k·2π/K).
        let k = (phi / TAU * self.theta_bins as f64).round() as usize % self.theta_bins;
        self.table[k * self.width * self.height + r as usize * self.width + c as usize] as f64
    }

    fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use crate::BresenhamCasting;
    use raceloc_core::Point2;
    use raceloc_map::CellState;

    #[test]
    fn agrees_with_bresenham_at_bin_angles() {
        let g = room_with_pillar();
        let bres = BresenhamCasting::new(&g, 20.0);
        let lut = RangeLut::from_method(&g, &bres, 72);
        for i in 0..200 {
            let x = 1.05 + (i % 17) as f64 * 0.45;
            let y = 1.05 + (i % 13) as f64 * 0.55;
            if g.state_at_world(Point2::new(x, y)) != CellState::Free {
                continue;
            }
            let k = i % 72;
            let theta = k as f64 / 72.0 * TAU;
            // LUT quantizes position to the cell center; compare against the
            // caster evaluated at exactly that center.
            let center = g.index_to_world(g.world_to_index(Point2::new(x, y)));
            let want = bres.range(center.x, center.y, theta) as f32 as f64;
            assert!((lut.range(x, y, theta) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn off_bin_angle_snaps_to_nearest() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 4);
        // 4 bins → bin centres at 0°, 90°, 180°, 270°. 40° snaps to 90°.
        let snapped = lut.range(5.05, 5.05, 40.0f64.to_radians());
        let exact_bin = lut.range(5.05, 5.05, std::f64::consts::FRAC_PI_2);
        assert_eq!(snapped, exact_bin);
    }

    #[test]
    fn theta_wraps_around() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 36);
        let a = lut.range(5.0, 5.0, 0.1);
        let b = lut.range(5.0, 5.0, 0.1 + TAU);
        let c = lut.range(5.0, 5.0, 0.1 - TAU);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn out_of_map_is_zero() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 8);
        assert_eq!(lut.range(-1.0, 5.0, 0.0), 0.0);
        assert_eq!(lut.range(5.0, 11.0, 0.0), 0.0);
    }

    #[test]
    fn memory_matches_layout() {
        let g = square_room();
        let lut = RangeLut::new(&g, 20.0, 10);
        assert_eq!(lut.memory_bytes(), 10 * 100 * 100 * 4);
        assert_eq!(lut.theta_bins(), 10);
    }

    #[test]
    #[should_panic(expected = "theta_bins")]
    fn zero_bins_panics() {
        RangeLut::new(&square_room(), 10.0, 0);
    }
}
