//! Shared immutable per-map artifacts behind `Arc`, cached by content hash.
//!
//! Every localizer used to privately own its map, EDT, and range LUT, so N
//! sessions on the same track paid N LUT builds — the binding obstacle to
//! the ROADMAP's "thousands of concurrent sessions" target (memory
//! residency, not compute, dominates at scale). [`MapArtifacts`] bundles
//! the derived per-map structures once; [`ArtifactStore`] deduplicates
//! bundles by a content hash that covers the grid's *geometry* (dimensions,
//! resolution, origin) as well as its cell raster, plus the build
//! parameters — two grids with identical cells but different resolution
//! describe different worlds and must not collide.
//!
//! The range LUT inside a bundle is built *lazily* (first use), because the
//! EDT-only consumers (Cartographer-style scan matchers, diagnostics) should
//! not pay the `O(cells × θ-bins × cast)` construction cost. Laziness is
//! still share-correct: `OnceLock` guarantees exactly one build per bundle
//! no matter how many sessions race on first touch.
//!
//! # Examples
//!
//! ```
//! use raceloc_range::{ArtifactParams, ArtifactStore, RangeMethod};
//! use raceloc_map::{CellState, OccupancyGrid};
//! use raceloc_core::Point2;
//!
//! let mut grid = OccupancyGrid::new(40, 40, 0.1, Point2::ORIGIN);
//! grid.fill(CellState::Free);
//! for r in 0..40 { grid.set((35i64, r as i64).into(), CellState::Occupied); }
//!
//! let store = ArtifactStore::new();
//! let params = ArtifactParams { max_range: 8.0, theta_bins: 36 };
//! let a = store.get_or_build(&grid, params);
//! let b = store.get_or_build(&grid, params); // same map → same bundle
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(store.builds(), 1);
//! assert_eq!(store.hits(), 1);
//! let r = a.range(0.55, 2.0, 0.0); // lazily builds the LUT on first query
//! assert!((r - 2.95).abs() < 0.25, "{r}");
//! ```

use crate::{CompressedRangeLut, RangeMethod};
use raceloc_map::{DistanceMap, OccupancyGrid};
use raceloc_obs::Telemetry;
use raceloc_par::lock_unpoisoned;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Build parameters for the derived range structures of a [`MapArtifacts`]
/// bundle. Part of the cache key: the same grid under different sensor
/// parameters yields different LUTs and therefore different bundles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactParams {
    /// Maximum sensor range in meters (LUT clamp).
    pub max_range: f64,
    /// Number of heading bins in the range LUT.
    pub theta_bins: usize,
}

impl Default for ArtifactParams {
    /// The paper's on-car configuration: 10 m LiDAR clamp, 72 heading bins
    /// (5° LUT quantization) — the literals previously copy-pasted at every
    /// construction site.
    fn default() -> Self {
        Self {
            max_range: 10.0,
            theta_bins: 72,
        }
    }
}

impl ArtifactParams {
    /// Folds the parameters into an FNV-1a accumulator (little-endian bit
    /// patterns, platform-stable).
    fn fold_into(self, mut h: u64) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        for b in self
            .max_range
            .to_bits()
            .to_le_bytes()
            .into_iter()
            .chain((self.theta_bins as u64).to_le_bytes())
        {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// The shared immutable bundle of per-map derived structures: occupancy
/// grid + exact EDT (eager) + range LUT (lazy, built once on first query).
///
/// Implements [`RangeMethod`] by delegating to the LUT, so existing generic
/// consumers (`SynPf<Arc<MapArtifacts>>`, the batch drivers) work through
/// the [`Arc`] blanket impl unchanged.
#[derive(Debug)]
pub struct MapArtifacts {
    grid: OccupancyGrid,
    edt: DistanceMap,
    lut: OnceLock<CompressedRangeLut>,
    params: ArtifactParams,
    key: u64,
}

impl MapArtifacts {
    /// Builds the bundle for a grid: clones the grid, computes the EDT
    /// eagerly, and defers the LUT to first use.
    ///
    /// # Panics
    ///
    /// Panics when `params.theta_bins == 0` or `params.max_range` is not
    /// positive/finite (validated up front so the lazy LUT build cannot
    /// fail later, mid-batch).
    pub fn build(grid: &OccupancyGrid, params: ArtifactParams) -> Self {
        assert!(params.theta_bins > 0, "theta_bins must be positive");
        assert!(
            params.max_range.is_finite() && params.max_range > 0.0,
            "max_range must be positive"
        );
        let key = Self::content_key(grid, params);
        Self {
            edt: DistanceMap::from_grid(grid),
            grid: grid.clone(),
            lut: OnceLock::new(),
            params,
            key,
        }
    }

    /// The cache key a given `(grid, params)` pair would map to: the grid's
    /// geometry-covering [`OccupancyGrid::content_fingerprint`] folded with
    /// the build parameters.
    pub fn content_key(grid: &OccupancyGrid, params: ArtifactParams) -> u64 {
        params.fold_into(grid.content_fingerprint())
    }

    /// The source occupancy grid.
    pub fn grid(&self) -> &OccupancyGrid {
        &self.grid
    }

    /// The exact Euclidean distance transform of the grid.
    pub fn edt(&self) -> &DistanceMap {
        &self.edt
    }

    /// The range LUT, building it on first call (exactly once per bundle,
    /// even under concurrent first-touch). Since the SoA hot-path rework
    /// this is the u16 [`CompressedRangeLut`]: half the f32 footprint, with
    /// each cell's heading fan contiguous in memory.
    pub fn lut(&self) -> &CompressedRangeLut {
        self.lut.get_or_init(|| {
            CompressedRangeLut::new(&self.grid, self.params.max_range, self.params.theta_bins)
        })
    }

    /// True when the lazy LUT has already been built.
    pub fn lut_built(&self) -> bool {
        self.lut.get().is_some()
    }

    /// The build parameters.
    pub fn params(&self) -> ArtifactParams {
        self.params
    }

    /// This bundle's content-hash cache key.
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl RangeMethod for MapArtifacts {
    fn max_range(&self) -> f64 {
        // From params, not the LUT: answering "how far can the sensor see"
        // must not trigger an expensive LUT build.
        self.params.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        self.lut().range(x, y, theta)
    }

    fn beam_bins_into(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        bearings: &[f64],
        inv_res: f64,
        max_bin: u32,
        out: &mut [u32],
    ) {
        self.lut()
            .beam_bins_into(x, y, theta, bearings, inv_res, max_bin, out)
    }

    fn memory_bytes(&self) -> usize {
        let lut = self.lut.get().map_or(0, CompressedRangeLut::memory_bytes);
        let cells = self.grid.cell_count();
        // EDT stores one f32 per cell; the grid one CellState per cell.
        lut + cells * (std::mem::size_of::<f32>() + std::mem::size_of::<u8>())
    }
}

/// Interior state of an [`ArtifactStore`]: the cache plus its counters,
/// under one lock so reads of `(builds, hits)` are coherent.
#[derive(Debug, Default)]
struct StoreState {
    cache: BTreeMap<u64, Arc<MapArtifacts>>,
    builds: u64,
    hits: u64,
}

/// A content-addressed cache of [`MapArtifacts`] bundles.
///
/// `N` sessions opened on the same `(grid, params)` pair share one bundle:
/// the first call builds, the rest hit. Bundle construction happens *under*
/// the store lock, deliberately: two racing misses on the same key must not
/// both build. The critical section stays short because construction defers
/// the expensive LUT — only the grid clone and EDT run under the lock.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    state: Mutex<StoreState>,
}

impl ArtifactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached bundle for `(grid, params)`, building and caching
    /// it on first request.
    pub fn get_or_build(&self, grid: &OccupancyGrid, params: ArtifactParams) -> Arc<MapArtifacts> {
        let key = MapArtifacts::content_key(grid, params);
        let mut state = lock_unpoisoned(&self.state);
        if let Some(found) = state.cache.get(&key).map(Arc::clone) {
            state.hits += 1;
            return found;
        }
        let built = Arc::new(MapArtifacts::build(grid, params));
        state.builds += 1;
        state.cache.insert(key, Arc::clone(&built));
        built
    }

    /// Number of cache misses that built a new bundle.
    pub fn builds(&self) -> u64 {
        lock_unpoisoned(&self.state).builds
    }

    /// Number of requests served from cache.
    pub fn hits(&self) -> u64 {
        lock_unpoisoned(&self.state).hits
    }

    /// Number of distinct bundles currently cached.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).cache.len()
    }

    /// True when no bundle has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cached bundles whose lazy LUT has actually been built —
    /// the "how many LUT builds did N sessions really pay" number.
    pub fn luts_built(&self) -> u64 {
        lock_unpoisoned(&self.state)
            .cache
            .values()
            .filter(|a| a.lut_built())
            .count() as u64
    }

    /// Publishes cumulative store counters (`range.artifacts.builds`,
    /// `range.artifacts.hits`, `range.artifacts.cached`,
    /// `range.artifacts.luts_built`, `range.lut.compressed_bytes`) into a
    /// telemetry handle. Counters are cumulative totals; call once per
    /// report.
    pub fn publish_stats(&self, tel: &Telemetry) {
        let state = lock_unpoisoned(&self.state);
        tel.add("range.artifacts.builds", state.builds);
        tel.add("range.artifacts.hits", state.hits);
        tel.add("range.artifacts.cached", state.cache.len() as u64);
        let built: Vec<_> = state.cache.values().filter_map(|a| a.lut.get()).collect();
        tel.add("range.artifacts.luts_built", built.len() as u64);
        let bytes: usize = built.iter().map(|l| l.memory_bytes()).sum();
        tel.add("range.lut.compressed_bytes", bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use raceloc_core::Point2;
    use raceloc_map::CellState;

    fn params_small() -> ArtifactParams {
        ArtifactParams {
            max_range: 8.0,
            theta_bins: 16,
        }
    }

    #[test]
    fn same_map_shares_one_bundle() {
        let store = ArtifactStore::new();
        let g = square_room();
        let handles: Vec<_> = (0..10)
            .map(|_| store.get_or_build(&g, params_small()))
            .collect();
        for h in &handles[1..] {
            assert!(Arc::ptr_eq(&handles[0], h));
        }
        assert_eq!(store.builds(), 1);
        assert_eq!(store.hits(), 9);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn different_maps_get_different_bundles() {
        let store = ArtifactStore::new();
        let a = store.get_or_build(&square_room(), params_small());
        let b = store.get_or_build(&room_with_pillar(), params_small());
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.key(), b.key());
        assert_eq!(store.builds(), 2);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn params_are_part_of_the_key() {
        let store = ArtifactStore::new();
        let g = square_room();
        let a = store.get_or_build(&g, params_small());
        let b = store.get_or_build(
            &g,
            ArtifactParams {
                theta_bins: 32,
                ..params_small()
            },
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.builds(), 2);
    }

    /// Regression: the content hash must cover grid geometry (resolution,
    /// origin), not just cell bytes. Two grids with identical rasters at
    /// different resolutions are different worlds; a collision here would
    /// silently serve a 0.05 m-resolution LUT to a 0.10 m-resolution map.
    #[test]
    fn identical_cells_different_resolution_do_not_collide() {
        let build_at = |res: f64| {
            let mut g = OccupancyGrid::new(30, 30, res, Point2::ORIGIN);
            g.fill(CellState::Free);
            for i in 0..30i64 {
                g.set((i, 0).into(), CellState::Occupied);
                g.set((i, 29).into(), CellState::Occupied);
                g.set((0, i).into(), CellState::Occupied);
                g.set((29, i).into(), CellState::Occupied);
            }
            g
        };
        let fine = build_at(0.05);
        let coarse = build_at(0.10);
        assert_eq!(fine.cells(), coarse.cells(), "premise: identical rasters");
        let store = ArtifactStore::new();
        let a = store.get_or_build(&fine, params_small());
        let b = store.get_or_build(&coarse, params_small());
        assert_ne!(a.key(), b.key(), "geometry must be part of the hash");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.builds(), 2, "both worlds must be built");
        // And the bundles really differ: the same world point is ~2× closer
        // to the wall in the fine map.
        let da = a.edt().distance_at_world(Point2::new(0.75, 0.75));
        let db = b.edt().distance_at_world(Point2::new(1.5, 1.5));
        assert!((da * 2.0 - db).abs() < 1e-6, "{da} vs {db}");
    }

    #[test]
    fn origin_shift_changes_the_key() {
        let mut a = OccupancyGrid::new(10, 10, 0.1, Point2::ORIGIN);
        a.fill(CellState::Free);
        let mut b = OccupancyGrid::new(10, 10, 0.1, Point2::new(2.0, -1.0));
        b.fill(CellState::Free);
        assert_ne!(
            MapArtifacts::content_key(&a, params_small()),
            MapArtifacts::content_key(&b, params_small()),
        );
    }

    #[test]
    fn lut_is_lazy_and_built_once() {
        let art = MapArtifacts::build(&square_room(), params_small());
        assert!(!art.lut_built(), "construction must not build the LUT");
        let edt_only = art.memory_bytes();
        let r1 = art.range(5.05, 5.05, 0.0);
        assert!(art.lut_built());
        assert!(art.memory_bytes() > edt_only, "LUT memory now counted");
        let r2 = art.lut().range(5.05, 5.05, 0.0);
        assert_eq!(r1, r2);
        assert_eq!(art.lut().theta_bins(), 16);
    }

    #[test]
    fn range_method_delegation_matches_direct_lut() {
        let g = room_with_pillar();
        let art = MapArtifacts::build(&g, params_small());
        let lut = CompressedRangeLut::new(&g, 8.0, 16);
        assert_eq!(art.max_range(), 8.0);
        for i in 0..40 {
            let x = 1.0 + (i % 8) as f64;
            let y = 1.0 + (i % 7) as f64;
            let t = i as f64 * 0.37;
            assert_eq!(art.range(x, y, t), lut.range(x, y, t));
        }
    }

    #[test]
    fn publish_stats_exports_counters() {
        let store = ArtifactStore::new();
        let g = square_room();
        store.get_or_build(&g, params_small());
        store.get_or_build(&g, params_small());
        let tel = Telemetry::enabled();
        store.publish_stats(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("range.artifacts.builds"), Some(1));
        assert_eq!(snap.counter("range.artifacts.hits"), Some(1));
        assert_eq!(snap.counter("range.artifacts.cached"), Some(1));
        assert_eq!(snap.counter("range.artifacts.luts_built"), Some(0));
        assert_eq!(snap.counter("range.lut.compressed_bytes"), Some(0));
        assert_eq!(store.luts_built(), 0, "no query ran, no LUT built");
    }

    #[test]
    fn publish_stats_reports_compressed_lut_bytes_once_built() {
        let store = ArtifactStore::new();
        let g = square_room();
        let a = store.get_or_build(&g, params_small());
        a.range(5.05, 5.05, 0.0); // force the lazy LUT build
        let tel = Telemetry::enabled();
        store.publish_stats(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("range.artifacts.luts_built"), Some(1));
        assert_eq!(
            snap.counter("range.lut.compressed_bytes"),
            Some((100 * 100 * 16 * 2) as u64),
        );
    }

    #[test]
    #[should_panic(expected = "theta_bins")]
    fn zero_theta_bins_panics_at_build_time() {
        MapArtifacts::build(
            &square_room(),
            ArtifactParams {
                max_range: 8.0,
                theta_bins: 0,
            },
        );
    }

    #[test]
    fn concurrent_first_touch_builds_one_lut() {
        let art = Arc::new(MapArtifacts::build(&square_room(), params_small()));
        let ptrs: Vec<*const CompressedRangeLut> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let art = Arc::clone(&art);
                    s.spawn(move || art.lut() as *const CompressedRangeLut as usize)
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread") as *const CompressedRangeLut)
                .collect()
        });
        for p in &ptrs[1..] {
            assert_eq!(ptrs[0], *p, "all threads must see the same LUT");
        }
    }
}
