//! The Compressed Directional Distance Transform (CDDT).
//!
//! Reimplementation of the core data structure from Walsh & Karaman,
//! *"CDDT: Fast Approximate 2D Ray Casting for Accelerated Localization"*
//! (ICRA 2018): obstacle positions are projected into a bank of rotated
//! coordinate frames (one per discretized heading); a range query reduces to
//! one binary search in the matching projection column.
//!
//! The structure is *directionally compressed*: headings θ and θ+π share a
//! table and differ only in search direction. Accuracy is bounded by the
//! heading discretization (π / `theta_bins`).

use crate::RangeMethod;
use raceloc_map::{CellState, OccupancyGrid};
use std::f64::consts::PI;

#[derive(Debug, Clone)]
struct ThetaTable {
    /// Unit direction of this heading bin.
    cos: f64,
    sin: f64,
    /// Smallest perpendicular coordinate over the map (column 0 offset).
    v_min: f64,
    /// Sorted obstacle positions (along-ray coordinate `u`) per column.
    cols: Vec<Vec<f32>>,
}

/// A compressed directional distance transform over an occupancy grid.
///
/// Only *occupied* cells enter the projection tables, so queries are exact
/// (up to heading discretization) from anywhere inside a wall-enclosed free
/// region — which is the situation of a race track and of MCL in general.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{Cddt, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(80, 80, 0.1, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..80 { grid.set((70i64, r as i64).into(), CellState::Occupied); }
/// let cddt = Cddt::new(&grid, 10.0, 180);
/// let r = cddt.range(1.0, 4.0, 0.0);
/// assert!((r - 6.0).abs() < 0.2, "{r}");
/// ```
#[derive(Debug, Clone)]
pub struct Cddt {
    tables: Vec<ThetaTable>,
    theta_bins: usize,
    bin_width: f64,
    resolution: f64,
    max_range: f64,
    pruned: bool,
}

impl Cddt {
    /// Builds the CDDT with `theta_bins` heading bins over `[0, π)`.
    ///
    /// # Panics
    ///
    /// Panics when `theta_bins == 0` or `max_range` is not positive/finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64, theta_bins: usize) -> Self {
        assert!(theta_bins > 0, "theta_bins must be positive");
        assert!(
            max_range.is_finite() && max_range > 0.0,
            "max_range must be positive"
        );
        let res = grid.resolution();
        let bin_width = PI / theta_bins as f64;
        let obstacles: Vec<(f64, f64)> = grid
            .iter()
            .filter(|(_, s)| *s == CellState::Occupied)
            .map(|(idx, _)| {
                let p = grid.index_to_world(idx);
                (p.x, p.y)
            })
            .collect();
        let (lo, hi) = grid.bounds();
        let corners = [(lo.x, lo.y), (hi.x, lo.y), (lo.x, hi.y), (hi.x, hi.y)];
        let mut tables = Vec::with_capacity(theta_bins);
        for k in 0..theta_bins {
            let theta = (k as f64 + 0.5) * bin_width;
            let (sin, cos) = theta.sin_cos();
            // v (perpendicular) extent of the map in this frame.
            let vs = corners.map(|(x, y)| -sin * x + cos * y);
            let v_min = vs.iter().copied().fold(f64::INFINITY, f64::min);
            let v_max = vs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let n_cols = ((v_max - v_min) / res).ceil() as usize + 2;
            let mut cols: Vec<Vec<f32>> = vec![Vec::new(); n_cols];
            // Projected half-footprint of a square cell onto the v axis.
            let half_w = 0.5 * res * (sin.abs() + cos.abs());
            for &(x, y) in &obstacles {
                let u = cos * x + sin * y;
                let v = -sin * x + cos * y;
                let c_lo = (((v - half_w) - v_min) / res).floor().max(0.0) as usize;
                let c_hi = (((v + half_w) - v_min) / res).floor() as usize;
                for col in cols.iter_mut().take(c_hi.min(n_cols - 1) + 1).skip(c_lo) {
                    col.push(u as f32);
                }
            }
            for col in &mut cols {
                col.sort_by(f32::total_cmp);
            }
            tables.push(ThetaTable {
                cos,
                sin,
                v_min,
                cols,
            });
        }
        Self {
            tables,
            theta_bins,
            bin_width,
            resolution: res,
            max_range,
            pruned: false,
        }
    }

    /// Number of heading bins.
    pub fn theta_bins(&self) -> usize {
        self.theta_bins
    }

    /// Whether [`Cddt::prune`] has been applied.
    pub fn is_pruned(&self) -> bool {
        self.pruned
    }

    /// Compresses the projection tables: every *contiguous run* of entries
    /// (consecutive gaps below ~1.5 cells, i.e. the interior of a thick
    /// wall) is replaced by its two endpoints. First-hit results from free
    /// space are unchanged — a forward query hits the run's first entry, a
    /// backward query its last. This is the (simplified) "pruned CDDT"
    /// variant; only queries originating *inside* an obstacle can change,
    /// by at most the obstacle's thickness.
    pub fn prune(&mut self) {
        let link_tol = (1.5 * self.resolution) as f32;
        for t in &mut self.tables {
            for col in &mut t.cols {
                if col.len() <= 2 {
                    continue;
                }
                let mut out: Vec<f32> = Vec::with_capacity(col.len());
                let mut run_start = col[0];
                let mut run_end = col[0];
                for &u in &col[1..] {
                    if u - run_end <= link_tol {
                        run_end = u;
                    } else {
                        out.push(run_start);
                        if run_end > run_start {
                            out.push(run_end);
                        }
                        run_start = u;
                        run_end = u;
                    }
                }
                out.push(run_start);
                if run_end > run_start {
                    out.push(run_end);
                }
                *col = out;
            }
        }
        self.pruned = true;
    }

    /// Total number of stored projection entries (diagnostic).
    pub fn entry_count(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.cols.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

impl RangeMethod for Cddt {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        // Fold the heading into [0, π); remember if we flipped direction.
        let mut phi = theta % (2.0 * PI);
        if phi < 0.0 {
            phi += 2.0 * PI;
        }
        let (phi, backward) = if phi >= PI {
            (phi - PI, true)
        } else {
            (phi, false)
        };
        let k = ((phi / self.bin_width) as usize).min(self.theta_bins - 1);
        let t = &self.tables[k];
        let u = (t.cos * x + t.sin * y) as f32;
        let v = -t.sin * x + t.cos * y;
        let col_idx = ((v - t.v_min) / self.resolution).floor();
        if col_idx < 0.0 || col_idx as usize >= t.cols.len() {
            return self.max_range;
        }
        let col = &t.cols[col_idx as usize];
        // First obstacle strictly ahead of the query along the ray.
        let pos = col.partition_point(|&obs| obs < u);
        let hit = if backward {
            // Ray travels toward decreasing u: nearest obstacle at or below.
            pos.checked_sub(1).map(|i| (u - col[i]) as f64)
        } else {
            col.get(pos).map(|&obs| (obs - u) as f64)
        };
        match hit {
            Some(d) => d.clamp(0.0, self.max_range),
            None => self.max_range,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.entry_count() * std::mem::size_of::<f32>()
            + self
                .tables
                .iter()
                .map(|t| t.cols.len() * std::mem::size_of::<Vec<f32>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use crate::BresenhamCasting;
    use raceloc_core::Point2;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn axis_aligned_matches_geometry() {
        let g = square_room();
        let c = Cddt::new(&g, 20.0, 180);
        let (x, y) = (5.05, 5.05);
        // Wall cell centers at 9.95 / 0.05; CDDT measures to cell centers.
        assert!((c.range(x, y, 0.0) - 4.9).abs() < 0.15);
        assert!((c.range(x, y, PI) - 5.0).abs() < 0.15);
        assert!((c.range(x, y, FRAC_PI_2) - 4.9).abs() < 0.15);
        assert!((c.range(x, y, -FRAC_PI_2) - 5.0).abs() < 0.15);
    }

    #[test]
    fn agrees_with_bresenham_from_free_space() {
        let g = room_with_pillar();
        let cddt = Cddt::new(&g, 20.0, 360);
        let bres = BresenhamCasting::new(&g, 20.0);
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..300 {
            let x = 0.7 + (i % 19) as f64 * 0.45;
            let y = 0.7 + (i % 23) as f64 * 0.38;
            let t = i as f64 * 0.211;
            if g.state_at_world(Point2::new(x, y)) != CellState::Free {
                continue;
            }
            let d = (cddt.range(x, y, t) - bres.range(x, y, t)).abs();
            total += d;
            n += 1;
            assert!(
                d < 0.6,
                "at ({x},{y},{t}): cddt={} bres={}",
                cddt.range(x, y, t),
                bres.range(x, y, t)
            );
        }
        assert!(n > 200);
        let mean_err = total / n as f64;
        assert!(mean_err < 0.12, "mean abs err {mean_err}");
    }

    #[test]
    fn backward_direction_consistency() {
        let g = square_room();
        let c = Cddt::new(&g, 20.0, 180);
        // range(x, θ) looking one way + range(x, θ+π) the other must sum to
        // the corridor width.
        let sum = c.range(3.0, 5.05, 0.0) + c.range(3.0, 5.05, PI);
        assert!((sum - 9.9).abs() < 0.3, "sum={sum}");
    }

    #[test]
    fn prune_preserves_results_from_free_space() {
        let g = room_with_pillar();
        let mut c = Cddt::new(&g, 20.0, 120);
        // Query poses strictly inside free space (away from the pillar).
        let poses: Vec<(f64, f64, f64)> = (0..100)
            .map(|i| {
                (
                    1.0 + 0.03 * i as f64, // x ∈ [1.0, 4.0)
                    2.0 + 0.02 * i as f64, // y ∈ [2.0, 4.0)
                    i as f64 * 0.31,
                )
            })
            .filter(|&(x, y, _)| g.state_at_world(Point2::new(x, y)) == CellState::Free)
            .collect();
        let before: Vec<f64> = poses.iter().map(|&(x, y, t)| c.range(x, y, t)).collect();
        let entries_before = c.entry_count();
        c.prune();
        assert!(c.is_pruned());
        assert!(c.entry_count() < entries_before);
        for (&(x, y, t), &b) in poses.iter().zip(&before) {
            let after = c.range(x, y, t);
            assert!(
                (after - b).abs() <= 1e-6,
                "at ({x},{y},{t}): {after} vs {b}"
            );
        }
    }

    #[test]
    fn out_of_map_column_returns_max_range() {
        let g = square_room();
        let c = Cddt::new(&g, 5.0, 90);
        assert_eq!(c.range(100.0, 100.0, 0.3), 5.0);
    }

    #[test]
    fn open_direction_capped_at_max_range() {
        let g = square_room();
        let c = Cddt::new(&g, 2.0, 90);
        assert_eq!(c.range(5.0, 5.0, 0.7), 2.0);
    }

    #[test]
    fn more_bins_is_more_accurate() {
        let g = room_with_pillar();
        let bres = BresenhamCasting::new(&g, 20.0);
        // Mean absolute error over a spread of poses and headings; heading
        // discretization error shrinks with the bin count.
        let err = |bins: usize| {
            let c = Cddt::new(&g, 20.0, bins);
            let mut e = 0.0;
            let mut n = 0;
            for i in 0..400 {
                let x = 1.2 + (i % 19) as f64 * 0.4;
                let y = 1.3 + (i % 23) as f64 * 0.33;
                if g.state_at_world(Point2::new(x, y)) != CellState::Free {
                    continue;
                }
                let t = i as f64 * PI / 50.0;
                e += (c.range(x, y, t) - bres.range(x, y, t)).abs();
                n += 1;
            }
            e / n as f64
        };
        assert!(err(720) < err(12) * 0.8, "{} vs {}", err(720), err(12));
    }

    #[test]
    #[should_panic(expected = "theta_bins")]
    fn zero_bins_panics() {
        Cddt::new(&square_room(), 10.0, 0);
    }

    #[test]
    fn memory_accounting_positive() {
        let c = Cddt::new(&square_room(), 10.0, 60);
        assert!(c.memory_bytes() > 0);
    }
}
