//! Multi-threaded batch ray casting.
//!
//! `rangelibc` offers a GPU mode that parallelizes the per-particle,
//! per-beam expected-range computation. This module is the CPU substitute
//! (DESIGN.md §1): the query batch is split across scoped OS threads. For
//! the LUT method a query is a single memory read, so parallelism only pays
//! off for expensive methods (Bresenham) or very large batches.
//!
//! The preferred entry point is [`RangeMethod::par_ranges_into`], which
//! exposes the same fan-out as a provided trait method so callers can take
//! parallelism through one object-safe surface; [`cast_batch`] remains as a
//! deprecated shim.

use crate::RangeMethod;

/// The shared chunk-fanning implementation behind
/// [`RangeMethod::par_ranges_into`] and the deprecated [`cast_batch`].
pub(crate) fn chunked_cast<M: RangeMethod + ?Sized>(
    method: &M,
    queries: &[(f64, f64, f64)],
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(queries.len(), out.len(), "query/output length mismatch");
    if queries.is_empty() {
        return;
    }
    let threads = threads.max(1).min(queries.len());
    if threads == 1 {
        method.ranges_into(queries, out);
    } else {
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (q_chunk, o_chunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    method.ranges_into(q_chunk, o_chunk);
                });
            }
        });
    }
    // Zero is admitted for casts that start inside occupied space; anything
    // non-finite, negative, or beyond the sensor envelope is a kernel bug.
    raceloc_core::debug_invariant!(
        out.iter()
            .all(|r| r.is_finite() && *r >= 0.0 && *r <= method.max_range() + 1e-9),
        "batch ranges must lie in [0, max_range = {}]",
        method.max_range()
    );
}

/// Casts a batch of `(x, y, θ)` queries in parallel over `threads` workers.
///
/// Results are written into `out` in query order; with `threads <= 1` this
/// degenerates to the sequential [`RangeMethod::ranges_into`].
///
/// # Panics
///
/// Panics when `queries.len() != out.len()`.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{BresenhamCasting, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(50, 50, 0.2, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..50 { grid.set((49i64, r as i64).into(), CellState::Occupied); }
/// let caster = BresenhamCasting::new(&grid, 15.0);
/// let queries = vec![(1.0, 5.0, 0.0); 64];
/// let mut out = vec![0.0; 64];
/// caster.par_ranges_into(&queries, &mut out, 4);
/// assert!(out.iter().all(|&r| (r - out[0]).abs() < 1e-12));
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `RangeMethod::par_ranges_into` (or `par_ranges_traced`) instead"
)]
pub fn cast_batch<M: RangeMethod + ?Sized>(
    method: &M,
    queries: &[(f64, f64, f64)],
    out: &mut [f64],
    threads: usize,
) {
    chunked_cast(method, queries, out, threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::room_with_pillar;
    use crate::BresenhamCasting;

    fn queries(n: usize) -> Vec<(f64, f64, f64)> {
        (0..n)
            .map(|i| {
                (
                    1.0 + (i % 17) as f64 * 0.5,
                    1.0 + (i % 13) as f64 * 0.6,
                    i as f64 * 0.37,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(257); // deliberately not a multiple of threads
        let mut seq = vec![0.0; qs.len()];
        caster.ranges_into(&qs, &mut seq);
        for threads in [2, 3, 4, 8] {
            let mut par = vec![0.0; qs.len()];
            caster.par_ranges_into(&qs, &mut par, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_path() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(10);
        let mut out = vec![0.0; 10];
        caster.par_ranges_into(&qs, &mut out, 1);
        assert!(out.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out: Vec<f64> = Vec::new();
        caster.par_ranges_into(&[], &mut out, 4);
    }

    #[test]
    fn more_threads_than_queries() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(3);
        let mut out = vec![0.0; 3];
        caster.par_ranges_into(&qs, &mut out, 64);
        let mut seq = vec![0.0; 3];
        caster.ranges_into(&qs, &mut seq);
        assert_eq!(out, seq);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_delegates() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(33);
        let mut via_shim = vec![0.0; qs.len()];
        cast_batch(&caster, &qs, &mut via_shim, 4);
        let mut via_trait = vec![0.0; qs.len()];
        caster.par_ranges_into(&qs, &mut via_trait, 4);
        assert_eq!(via_shim, via_trait);
    }

    #[test]
    fn traced_variant_records_span_and_counter() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(64);
        let tel = raceloc_obs::Telemetry::enabled();
        let mut out = vec![0.0; qs.len()];
        caster.par_ranges_traced(&qs, &mut out, 2, &tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("range.queries"), Some(64));
        let span = snap.span("range.cast_batch").expect("span recorded");
        assert_eq!(span.count, 1);
        assert!(span.total_seconds >= 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out = vec![0.0; 2];
        caster.par_ranges_into(&queries(5), &mut out, 2);
    }
}
