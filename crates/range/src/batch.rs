//! Multi-threaded batch ray casting.
//!
//! `rangelibc` offers a GPU mode that parallelizes the per-particle,
//! per-beam expected-range computation. This module is the CPU substitute
//! (DESIGN.md §1): the query batch is split across OS threads with
//! `crossbeam`'s scoped threads. For the LUT method a query is a single
//! memory read, so parallelism only pays off for expensive methods
//! (Bresenham) or very large batches.

use crate::RangeMethod;

/// Casts a batch of `(x, y, θ)` queries in parallel over `threads` workers.
///
/// Results are written into `out` in query order; with `threads <= 1` this
/// degenerates to the sequential [`RangeMethod::ranges_into`].
///
/// # Panics
///
/// Panics when `queries.len() != out.len()`.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{cast_batch, BresenhamCasting, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(50, 50, 0.2, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..50 { grid.set((49i64, r as i64).into(), CellState::Occupied); }
/// let caster = BresenhamCasting::new(&grid, 15.0);
/// let queries = vec![(1.0, 5.0, 0.0); 64];
/// let mut out = vec![0.0; 64];
/// cast_batch(&caster, &queries, &mut out, 4);
/// assert!(out.iter().all(|&r| (r - out[0]).abs() < 1e-12));
/// ```
pub fn cast_batch<M: RangeMethod + ?Sized>(
    method: &M,
    queries: &[(f64, f64, f64)],
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(queries.len(), out.len(), "query/output length mismatch");
    if queries.is_empty() {
        return;
    }
    let threads = threads.max(1).min(queries.len());
    if threads == 1 {
        method.ranges_into(queries, out);
        return;
    }
    let chunk = queries.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (q_chunk, o_chunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                method.ranges_into(q_chunk, o_chunk);
            });
        }
    })
    .expect("batch worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::room_with_pillar;
    use crate::BresenhamCasting;

    fn queries(n: usize) -> Vec<(f64, f64, f64)> {
        (0..n)
            .map(|i| {
                (
                    1.0 + (i % 17) as f64 * 0.5,
                    1.0 + (i % 13) as f64 * 0.6,
                    i as f64 * 0.37,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(257); // deliberately not a multiple of threads
        let mut seq = vec![0.0; qs.len()];
        caster.ranges_into(&qs, &mut seq);
        for threads in [2, 3, 4, 8] {
            let mut par = vec![0.0; qs.len()];
            cast_batch(&caster, &qs, &mut par, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_path() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(10);
        let mut out = vec![0.0; 10];
        cast_batch(&caster, &qs, &mut out, 1);
        assert!(out.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out: Vec<f64> = Vec::new();
        cast_batch(&caster, &[], &mut out, 4);
    }

    #[test]
    fn more_threads_than_queries() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(3);
        let mut out = vec![0.0; 3];
        cast_batch(&caster, &qs, &mut out, 64);
        let mut seq = vec![0.0; 3];
        caster.ranges_into(&qs, &mut seq);
        assert_eq!(out, seq);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out = vec![0.0; 2];
        cast_batch(&caster, &queries(5), &mut out, 2);
    }
}
