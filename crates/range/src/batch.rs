//! Multi-threaded batch ray casting.
//!
//! `rangelibc` offers a GPU mode that parallelizes the per-particle,
//! per-beam expected-range computation. This module is the CPU substitute
//! (DESIGN.md §1, §11): the query batch is split by the deterministic static
//! chunk layout from [`raceloc_par::chunk`] and the chunks are drained by
//! scoped OS threads. Because every chunk writes a disjoint output span in
//! query order, results are bit-identical for any thread count.
//!
//! The entry point is [`crate::RangeMethod::par_ranges_into`], exposed as a
//! provided trait method so callers take parallelism through one
//! object-safe surface. Long-lived callers should prefer
//! [`crate::PooledCaster`], which runs the same chunk layout on a
//! persistent [`raceloc_par::WorkerPool`] instead of spawning threads per
//! batch.

use raceloc_par::{chunk_spans, lock_unpoisoned, DEFAULT_CHUNK_MIN};
use std::sync::Mutex;

use crate::RangeMethod;

/// The shared chunk-fanning implementation behind
/// [`RangeMethod::par_ranges_into`].
pub(crate) fn chunked_cast<M: RangeMethod + ?Sized>(
    method: &M,
    queries: &[(f64, f64, f64)],
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(queries.len(), out.len(), "query/output length mismatch");
    if queries.is_empty() {
        return;
    }
    // Split the output into the deterministic chunk layout. The layout is a
    // pure function of the batch size, so the spans — and therefore every
    // written value — are independent of `threads`.
    type Chunk<'a> = (&'a [(f64, f64, f64)], &'a mut [f64]);
    let mut work: Vec<Chunk<'_>> = Vec::new();
    let mut rest = &mut *out;
    let mut consumed = 0usize;
    for span in chunk_spans(queries.len(), DEFAULT_CHUNK_MIN) {
        let (head, tail) = rest.split_at_mut(span.len());
        work.push((&queries[span.clone()], head));
        rest = tail;
        consumed = span.end;
    }
    debug_assert_eq!(consumed, queries.len());

    let workers = threads.max(1).min(work.len());
    if workers == 1 {
        for (q_chunk, o_chunk) in work {
            method.ranges_into(q_chunk, o_chunk);
        }
    } else {
        let work = Mutex::new(work);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = lock_unpoisoned(&work).pop();
                    match job {
                        Some((q_chunk, o_chunk)) => method.ranges_into(q_chunk, o_chunk),
                        None => break,
                    }
                });
            }
        });
    }
    check_envelope(out, method.max_range());
}

/// Debug-build envelope check shared by the batch drivers: zero is admitted
/// for casts that start inside occupied space; anything non-finite,
/// negative, or beyond the sensor envelope is a kernel bug.
#[allow(unused_variables)]
pub(crate) fn check_envelope(out: &[f64], max_range: f64) {
    raceloc_core::debug_invariant!(
        out.iter()
            .all(|r| r.is_finite() && *r >= 0.0 && *r <= max_range + 1e-9),
        "batch ranges must lie in [0, max_range = {}]",
        max_range
    );
}

#[cfg(test)]
mod tests {
    use crate::testutil::room_with_pillar;
    use crate::BresenhamCasting;
    use crate::RangeMethod;

    fn queries(n: usize) -> Vec<(f64, f64, f64)> {
        (0..n)
            .map(|i| {
                (
                    1.0 + (i % 17) as f64 * 0.5,
                    1.0 + (i % 13) as f64 * 0.6,
                    i as f64 * 0.37,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(257); // deliberately not a multiple of threads
        let mut seq = vec![0.0; qs.len()];
        caster.ranges_into(&qs, &mut seq);
        for threads in [2, 3, 4, 8] {
            let mut par = vec![0.0; qs.len()];
            caster.par_ranges_into(&qs, &mut par, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_path() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(10);
        let mut out = vec![0.0; 10];
        caster.par_ranges_into(&qs, &mut out, 1);
        assert!(out.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out: Vec<f64> = Vec::new();
        caster.par_ranges_into(&[], &mut out, 4);
    }

    #[test]
    fn more_threads_than_queries() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(3);
        let mut out = vec![0.0; 3];
        caster.par_ranges_into(&qs, &mut out, 64);
        let mut seq = vec![0.0; 3];
        caster.ranges_into(&qs, &mut seq);
        assert_eq!(out, seq);
    }

    #[test]
    fn traced_variant_records_span_and_counter() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let qs = queries(64);
        let tel = raceloc_obs::Telemetry::enabled();
        let mut out = vec![0.0; qs.len()];
        caster.par_ranges_traced(&qs, &mut out, 2, &tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("range.queries"), Some(64));
        let span = snap.span("range.batch").expect("span recorded");
        assert_eq!(span.count, 1);
        assert!(span.total_seconds >= 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let g = room_with_pillar();
        let caster = BresenhamCasting::new(&g, 20.0);
        let mut out = vec![0.0; 2];
        caster.par_ranges_into(&queries(5), &mut out, 2);
    }
}
