#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Fast 2-D ray casting for localization — a from-scratch reimplementation
//! of the `rangelibc` library (Walsh & Karaman, ICRA 2018) that the paper's
//! SynPF uses to evaluate its sensor model.
//!
//! Four query methods are provided behind the [`RangeMethod`] trait:
//!
//! | Method | Construction | Query | Memory |
//! |---|---|---|---|
//! | [`BresenhamCasting`] | none | O(range/res) | none |
//! | [`RayMarching`] | O(cells) EDT | O(log range) typical | 1 float/cell |
//! | [`Cddt`] | O(θ-bins · occupied) | O(log obstacles) | compressed |
//! | [`RangeLut`] | O(θ-bins · cells · query) | **O(1)** | 1 float/cell/θ-bin |
//! | [`CompressedRangeLut`] | O(θ-bins · cells · query) | **O(1)** | 2 bytes/cell/θ-bin |
//!
//! The paper's headline experiment runs on a GPU-less Intel NUC using the
//! LUT mode; [`RangeLut`] reproduces that configuration. The GPU ray-casting
//! mode of `rangelibc` is substituted by [`RangeMethod::par_ranges_into`],
//! which fans a query batch across OS threads using the deterministic
//! static chunk layout from `raceloc-par` (see DESIGN.md §1, §11);
//! [`PooledCaster`] runs the same layout on a persistent worker pool so
//! long-lived callers avoid per-batch thread spawns, and
//! [`RangeMethod::par_ranges_traced`] additionally records the batch span
//! and query count into a [`raceloc_obs::Telemetry`] handle.
//!
//! # Examples
//!
//! ```
//! use raceloc_map::{CellState, OccupancyGrid};
//! use raceloc_core::Point2;
//! use raceloc_range::{BresenhamCasting, RangeMethod};
//!
//! let mut grid = OccupancyGrid::new(100, 100, 0.1, Point2::ORIGIN);
//! grid.fill(CellState::Free);
//! for r in 0..100 {
//!     grid.set((99i64, r as i64).into(), CellState::Occupied);
//! }
//! let caster = BresenhamCasting::new(&grid, 12.0);
//! let range = caster.range(0.05, 5.0, 0.0); // looking +x at the wall
//! assert!((range - 9.9).abs() < 0.2);
//! ```

pub mod artifacts;
pub mod batch;
pub mod bresenham;
pub mod cddt;
pub mod lut;
pub mod pooled;
pub mod raymarch;

pub use artifacts::{ArtifactParams, ArtifactStore, MapArtifacts};
pub use bresenham::BresenhamCasting;
pub use cddt::Cddt;
pub use lut::{CompressedRangeLut, RangeLut};
pub use pooled::PooledCaster;
pub use raymarch::RayMarching;

/// A 2-D range query oracle: "standing at `(x, y)` looking along `theta`,
/// how far is the nearest obstacle?"
///
/// Implementations clamp results to [`RangeMethod::max_range`] and treat
/// out-of-map space as opaque, so a query from outside the map returns `0`.
pub trait RangeMethod: Send + Sync {
    /// The configured maximum sensor range in meters.
    fn max_range(&self) -> f64;

    /// Casts a single ray; returns the distance to the first opaque cell in
    /// meters, clamped to `[0, max_range]`.
    fn range(&self, x: f64, y: f64, theta: f64) -> f64;

    /// Casts many rays, writing into `out`.
    ///
    /// The default implementation is a sequential loop;
    /// [`RangeMethod::par_ranges_into`] offers a parallel driver for large
    /// batches.
    ///
    /// # Panics
    ///
    /// Panics when `queries.len() != out.len()`.
    fn ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        for (o, &(x, y, t)) in out.iter_mut().zip(queries) {
            *o = self.range(x, y, t);
        }
    }

    /// Casts a batch of queries in parallel over up to `threads` scoped OS
    /// threads, writing results into `out` in query order. With
    /// `threads <= 1` this degenerates to the sequential
    /// [`RangeMethod::ranges_into`].
    ///
    /// This is a provided method (all implementations share the chunk
    /// fan-out), and the trait remains object-safe: `&dyn RangeMethod`
    /// callers get parallelism too.
    ///
    /// # Panics
    ///
    /// Panics when `queries.len() != out.len()`.
    fn par_ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64], threads: usize) {
        batch::chunked_cast(self, queries, out, threads);
    }

    /// [`RangeMethod::par_ranges_into`] with telemetry: records the whole
    /// batch under the `range.batch` span and bumps the
    /// `range.queries` counter by the batch size.
    fn par_ranges_traced(
        &self,
        queries: &[(f64, f64, f64)],
        out: &mut [f64],
        threads: usize,
        tel: &raceloc_obs::Telemetry,
    ) {
        let _span = tel.span("range.batch");
        tel.add("range.queries", queries.len() as u64);
        // Route through `par_ranges_into` (not `chunked_cast` directly) so
        // wrappers like `PooledCaster` that override the batch driver keep
        // their tracing behavior consistent with their execution path.
        self.par_ranges_into(queries, out, threads);
    }

    /// Casts one fan of beams from a common sensor pose and quantizes each
    /// expected range straight to a sensor-model bin index:
    /// `out[j] = min(⌊range(x, y, theta + bearings[j]) · inv_res⌋, max_bin)`.
    ///
    /// This is the particle filter's hot query shape — every beam of one
    /// particle shares `(x, y)` — and returning bin indices instead of
    /// meters lets a quantized sensor model stay in integer arithmetic.
    /// Table-backed methods override this to hoist the shared position
    /// lookup out of the bearing loop; overrides may disagree with this
    /// default by one heading bin when `theta + bearing` lands within
    /// float rounding of a bin boundary.
    ///
    /// # Panics
    ///
    /// Panics when `bearings.len() != out.len()`.
    // Scalars stay unbundled: wrapping (x, y, theta, inv_res, max_bin) in
    // a struct would force the per-particle hot loop to build one per call.
    #[allow(clippy::too_many_arguments)]
    fn beam_bins_into(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        bearings: &[f64],
        inv_res: f64,
        max_bin: u32,
        out: &mut [u32],
    ) {
        assert_eq!(bearings.len(), out.len(), "bearing/output length mismatch");
        for (o, &b) in out.iter_mut().zip(bearings) {
            // `as u32` saturates negatives and NaN to 0, keeping the loop
            // branchless even for degenerate inputs.
            *o = ((self.range(x, y, theta + b) * inv_res) as u32).min(max_bin);
        }
    }

    /// Approximate heap memory used by precomputed structures, in bytes.
    /// Used by the method-comparison ablation (DESIGN.md A2).
    fn memory_bytes(&self) -> usize {
        0
    }
}

impl<T: RangeMethod + ?Sized> RangeMethod for &T {
    fn max_range(&self) -> f64 {
        (**self).max_range()
    }
    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        (**self).range(x, y, theta)
    }
    fn ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64]) {
        (**self).ranges_into(queries, out)
    }
    fn beam_bins_into(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        bearings: &[f64],
        inv_res: f64,
        max_bin: u32,
        out: &mut [u32],
    ) {
        (**self).beam_bins_into(x, y, theta, bearings, inv_res, max_bin, out)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

/// Shared-ownership delegation: lets many concurrent consumers (e.g. the
/// fleet-evaluation jobs, which each build a `SynPf<Arc<RangeLut>>`) share
/// one expensive precomputed caster per map instead of rebuilding it.
impl<T: RangeMethod + ?Sized> RangeMethod for std::sync::Arc<T> {
    fn max_range(&self) -> f64 {
        (**self).max_range()
    }
    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        (**self).range(x, y, theta)
    }
    fn ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64]) {
        (**self).ranges_into(queries, out)
    }
    fn beam_bins_into(
        &self,
        x: f64,
        y: f64,
        theta: f64,
        bearings: &[f64],
        inv_res: f64,
        max_bin: u32,
        out: &mut [u32],
    ) {
        (**self).beam_bins_into(x, y, theta, bearings, inv_res, max_bin, out)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use raceloc_core::Point2;
    use raceloc_map::{CellState, OccupancyGrid};

    /// A 10 m × 10 m square room with 0.1 m cells: free interior, occupied
    /// one-cell walls on all four sides.
    pub fn square_room() -> OccupancyGrid {
        let n = 100;
        let mut g = OccupancyGrid::new(n, n, 0.1, Point2::ORIGIN);
        g.fill(CellState::Free);
        for i in 0..n as i64 {
            g.set((i, 0).into(), CellState::Occupied);
            g.set((i, n as i64 - 1).into(), CellState::Occupied);
            g.set((0, i).into(), CellState::Occupied);
            g.set((n as i64 - 1, i).into(), CellState::Occupied);
        }
        g
    }

    /// A room with a 0.5 m square pillar in the middle.
    pub fn room_with_pillar() -> OccupancyGrid {
        let mut g = square_room();
        for c in 48..=52i64 {
            for r in 48..=52i64 {
                g.set((c, r).into(), CellState::Occupied);
            }
        }
        g
    }
}
