//! Exact grid-walking ray casting (the `rangelibc` "Bresenham" baseline).

use crate::RangeMethod;
use raceloc_core::Point2;
use raceloc_map::OccupancyGrid;

/// Casts rays by walking grid cells with an exact DDA traversal until the
/// first opaque cell.
///
/// This is the slowest but most faithful method: every other implementation
/// in this crate is validated against it. The reported range is the distance
/// from the query point to the *entry boundary* of the hit cell, which keeps
/// the result consistent under grid-resolution refinement.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{BresenhamCasting, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(50, 50, 0.2, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// grid.set((25i64, 40i64).into(), CellState::Occupied);
/// let caster = BresenhamCasting::new(&grid, 20.0);
/// // From the cell's column, looking straight up (+y).
/// let r = caster.range(5.1, 1.0, std::f64::consts::FRAC_PI_2);
/// assert!((r - 7.0).abs() < 0.21);
/// ```
#[derive(Debug, Clone)]
pub struct BresenhamCasting {
    grid: OccupancyGrid,
    max_range: f64,
}

impl BresenhamCasting {
    /// Creates a caster over a copy of the grid with the given maximum
    /// range in meters.
    ///
    /// # Panics
    ///
    /// Panics when `max_range` is not positive and finite.
    pub fn new(grid: &OccupancyGrid, max_range: f64) -> Self {
        assert!(
            max_range.is_finite() && max_range > 0.0,
            "max_range must be positive"
        );
        Self {
            grid: grid.clone(),
            max_range,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &OccupancyGrid {
        &self.grid
    }
}

impl RangeMethod for BresenhamCasting {
    fn max_range(&self) -> f64 {
        self.max_range
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        let from = Point2::new(x, y);
        let (s, c) = theta.sin_cos();
        let to = Point2::new(x + c * self.max_range, y + s * self.max_range);
        let mut hit: Option<f64> = None;
        let mut prev_center = from;
        let mut first = true;
        self.grid.traverse_ray(from, to, |idx| {
            if self.grid.is_opaque(idx) {
                let center = self.grid.index_to_world(idx);
                // Distance to the boundary between the previous (free) cell
                // and the hit cell: midpoint of the two centers projected on
                // the ray, clamped to be non-negative.
                let d = if first {
                    0.0
                } else {
                    let mid = prev_center.lerp(center, 0.5);
                    ((mid.x - x) * c + (mid.y - y) * s).max(0.0)
                };
                hit = Some(d);
                return false;
            }
            prev_center = self.grid.index_to_world(idx);
            first = false;
            true
        });
        match hit {
            Some(d) => d.clamp(0.0, self.max_range),
            None => self.max_range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{room_with_pillar, square_room};
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn axis_aligned_ranges_in_room() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        // Center of room: walls at x=9.9..10, x=0..0.1 etc. Entry boundary
        // of the wall cell is at 9.9 (east) and 0.1 (west).
        let (x, y) = (5.05, 5.05);
        assert!((c.range(x, y, 0.0) - 4.85).abs() < 0.11);
        assert!((c.range(x, y, PI) - 4.95).abs() < 0.11);
        assert!((c.range(x, y, FRAC_PI_2) - 4.85).abs() < 0.11);
        assert!((c.range(x, y, -FRAC_PI_2) - 4.95).abs() < 0.11);
    }

    #[test]
    fn diagonal_range_in_room() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        let r = c.range(5.0, 5.0, PI / 4.0);
        // Corner-ish distance: ~ (9.9 - 5.0) * sqrt(2) along the diagonal.
        let expect = (9.9 - 5.0) * std::f64::consts::SQRT_2;
        assert!((r - expect).abs() < 0.2, "r={r} expect={expect}");
    }

    #[test]
    fn query_inside_wall_returns_zero() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        assert_eq!(c.range(0.05, 5.0, 0.0), 0.0);
    }

    #[test]
    fn query_outside_map_returns_zero() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        assert_eq!(c.range(-5.0, 5.0, 0.0), 0.0);
    }

    #[test]
    fn max_range_when_capped() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 3.0);
        assert_eq!(c.range(5.0, 5.0, 0.0), 3.0);
    }

    #[test]
    fn pillar_blocks_ray() {
        let g = room_with_pillar();
        let c = BresenhamCasting::new(&g, 20.0);
        // Pillar occupies cells 48..=52 → x in [4.8, 5.3]. From (1, 5.05)
        // looking +x, the entry boundary is at 4.8.
        let r = c.range(1.0, 5.05, 0.0);
        assert!((r - 3.8).abs() < 0.11, "r={r}");
    }

    #[test]
    fn ray_passes_beside_pillar() {
        let g = room_with_pillar();
        let c = BresenhamCasting::new(&g, 20.0);
        let r = c.range(1.0, 2.0, 0.0);
        assert!(r > 8.0, "r={r}");
    }

    #[test]
    fn range_is_monotone_in_distance_to_wall() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        let mut prev = f64::INFINITY;
        for i in 1..9 {
            let r = c.range(i as f64, 5.0, 0.0);
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn ranges_into_matches_scalar() {
        let g = room_with_pillar();
        let c = BresenhamCasting::new(&g, 20.0);
        let queries: Vec<(f64, f64, f64)> = (0..32)
            .map(|i| (2.0 + 0.1 * i as f64, 5.0, i as f64 * 0.2))
            .collect();
        let mut out = vec![0.0; queries.len()];
        c.ranges_into(&queries, &mut out);
        for (&(x, y, t), &o) in queries.iter().zip(&out) {
            assert_eq!(o, c.range(x, y, t));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ranges_into_length_mismatch_panics() {
        let g = square_room();
        let c = BresenhamCasting::new(&g, 20.0);
        let mut out = vec![0.0; 1];
        c.ranges_into(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)], &mut out);
    }

    #[test]
    #[should_panic(expected = "max_range")]
    fn invalid_max_range_panics() {
        BresenhamCasting::new(&square_room(), 0.0);
    }
}
