//! A [`RangeMethod`] wrapper that runs batch casts on a persistent
//! [`raceloc_par::WorkerPool`] instead of spawning scoped threads per call.
//!
//! [`PooledCaster`] owns its inner method behind an `Arc` (workers hold the
//! other reference) and keeps a set of reusable [`CastJob`] buffers, so the
//! steady-state batch path performs **zero heap allocations and zero thread
//! spawns** — the property the fused particle pipeline (DESIGN.md §11)
//! builds on. The chunk layout is the same deterministic function used by
//! [`crate::RangeMethod::par_ranges_into`], so pooled results are
//! bit-identical to the scoped-thread and sequential paths for any thread
//! count.

use std::sync::{Arc, Mutex, OnceLock};

use raceloc_obs::Telemetry;
use raceloc_par::{
    chunk_spans, lock_unpoisoned, PoolJob, PoolStats, WorkerPool, DEFAULT_CHUNK_MIN,
};

use crate::{batch, RangeMethod};

/// One chunk of a batch cast: owned query/output buffers plus the output
/// offset the results scatter back to.
struct CastJob {
    start: usize,
    queries: Vec<(f64, f64, f64)>,
    out: Vec<f64>,
}

impl<M: RangeMethod + ?Sized> PoolJob<Arc<M>> for CastJob {
    fn run(&mut self, ctx: &Arc<M>) {
        self.out.clear();
        self.out.resize(self.queries.len(), 0.0);
        ctx.ranges_into(&self.queries, &mut self.out);
    }

    fn items(&self) -> usize {
        self.queries.len()
    }
}

/// A persistent-pool batch driver around any [`RangeMethod`].
///
/// The pool is spawned lazily on the first multi-threaded batch; with
/// `threads <= 1` every call stays on the caller thread (same chunk layout,
/// same results). Construction is cheap — wrap once, reuse forever.
///
/// # Examples
///
/// ```
/// use raceloc_map::{CellState, OccupancyGrid};
/// use raceloc_core::Point2;
/// use raceloc_range::{BresenhamCasting, PooledCaster, RangeMethod};
///
/// let mut grid = OccupancyGrid::new(50, 50, 0.2, Point2::ORIGIN);
/// grid.fill(CellState::Free);
/// for r in 0..50 { grid.set((49i64, r as i64).into(), CellState::Occupied); }
/// let caster = PooledCaster::new(BresenhamCasting::new(&grid, 15.0), 4);
/// let queries = vec![(1.0, 5.0, 0.0); 64];
/// let mut out = vec![0.0; 64];
/// caster.par_ranges_into(&queries, &mut out, 4);
/// assert!(out.iter().all(|&r| (r - out[0]).abs() < 1e-12));
/// ```
pub struct PooledCaster<M: ?Sized> {
    threads: usize,
    pool: OnceLock<WorkerPool<Arc<M>, CastJob>>,
    /// Reusable job buffers; a `Mutex` because the trait surface is `&self`.
    jobs: Mutex<Vec<CastJob>>,
    inner: Arc<M>,
}

impl<M: RangeMethod + 'static> PooledCaster<M> {
    /// Wraps `inner`, targeting `threads` pool workers (clamped to ≥ 1).
    pub fn new(inner: M, threads: usize) -> Self {
        Self::from_arc(Arc::new(inner), threads)
    }

    /// Wraps an already-shared method.
    pub fn from_arc(inner: Arc<M>, threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            pool: OnceLock::new(),
            jobs: Mutex::new(Vec::new()),
            inner,
        }
    }

    /// The wrapped range method.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Configured worker-thread target.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pool counters, if the pool has been spawned (`None` before the first
    /// multi-threaded batch).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.get().map(WorkerPool::stats)
    }

    /// Publishes pool counter deltas into `tel` (see
    /// [`WorkerPool::publish_stats`]); a no-op before the pool exists.
    pub fn publish_stats(&self, tel: &Telemetry) {
        if let Some(pool) = self.pool.get() {
            pool.publish_stats(tel);
        }
    }

    fn pool(&self) -> &WorkerPool<Arc<M>, CastJob> {
        self.pool
            .get_or_init(|| WorkerPool::new(Arc::clone(&self.inner), self.threads))
    }
}

impl<M: RangeMethod + 'static> RangeMethod for PooledCaster<M> {
    fn max_range(&self) -> f64 {
        self.inner.max_range()
    }

    fn range(&self, x: f64, y: f64, theta: f64) -> f64 {
        self.inner.range(x, y, theta)
    }

    fn ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64]) {
        self.inner.ranges_into(queries, out);
    }

    fn par_ranges_into(&self, queries: &[(f64, f64, f64)], out: &mut [f64], threads: usize) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        if queries.is_empty() {
            return;
        }
        let threads = threads.min(self.threads);
        let spans: Vec<_> = chunk_spans(queries.len(), DEFAULT_CHUNK_MIN).collect();
        if threads <= 1 || spans.len() == 1 {
            // Same chunk layout, caller thread; results are identical.
            for span in spans {
                self.inner
                    .ranges_into(&queries[span.clone()], &mut out[span]);
            }
            batch::check_envelope(out, self.max_range());
            return;
        }
        let mut jobs = std::mem::take(&mut *lock_unpoisoned(&self.jobs));
        // Top up the buffer set once; steady-state batches reuse it.
        while jobs.len() < spans.len() {
            jobs.push(CastJob {
                start: 0,
                queries: Vec::new(),
                out: Vec::new(),
            });
        }
        let mut active: Vec<CastJob> = jobs.drain(..spans.len()).collect();
        for (job, span) in active.iter_mut().zip(&spans) {
            job.start = span.start;
            job.queries.clear();
            job.queries.extend_from_slice(&queries[span.clone()]);
        }
        self.pool().run_batch(&mut active);
        for job in &active {
            out[job.start..job.start + job.out.len()].copy_from_slice(&job.out);
        }
        // The pool hands jobs back in completion order; chunk sizes are
        // unequal, so park them in chunk order — a buffer sized for a short
        // span must not be reloaded with a long one next batch, or its
        // scratch regrows and the steady state allocates.
        active.sort_unstable_by_key(|j| j.start);
        jobs.append(&mut active);
        *lock_unpoisoned(&self.jobs) = jobs;
        batch::check_envelope(out, self.max_range());
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

impl<M: RangeMethod + std::fmt::Debug + ?Sized> std::fmt::Debug for PooledCaster<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledCaster")
            .field("threads", &self.threads)
            .field("pool_spawned", &self.pool.get().is_some())
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl<M: RangeMethod + 'static> Clone for PooledCaster<M> {
    /// Clones share the inner method but get their own (lazily spawned)
    /// pool and buffer set.
    fn clone(&self) -> Self {
        Self::from_arc(Arc::clone(&self.inner), self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::room_with_pillar;
    use crate::BresenhamCasting;

    fn queries(n: usize) -> Vec<(f64, f64, f64)> {
        (0..n)
            .map(|i| {
                (
                    1.0 + (i % 17) as f64 * 0.5,
                    1.0 + (i % 13) as f64 * 0.6,
                    i as f64 * 0.37,
                )
            })
            .collect()
    }

    #[test]
    fn pooled_matches_sequential_bitwise() {
        let g = room_with_pillar();
        let inner = BresenhamCasting::new(&g, 20.0);
        let qs = queries(257);
        let mut seq = vec![0.0; qs.len()];
        inner.ranges_into(&qs, &mut seq);
        for threads in [1usize, 2, 4, 8] {
            let pooled = PooledCaster::new(BresenhamCasting::new(&g, 20.0), threads);
            let mut out = vec![0.0; qs.len()];
            pooled.par_ranges_into(&qs, &mut out, threads);
            assert_eq!(out, seq, "threads={threads}");
        }
    }

    #[test]
    fn pool_is_lazy_and_buffers_are_reused() {
        let g = room_with_pillar();
        let pooled = PooledCaster::new(BresenhamCasting::new(&g, 20.0), 2);
        assert!(pooled.pool_stats().is_none());
        let qs = queries(300);
        let mut out = vec![0.0; qs.len()];
        for _ in 0..3 {
            pooled.par_ranges_into(&qs, &mut out, 2);
        }
        let stats = pooled.pool_stats().expect("pool spawned");
        assert_eq!(stats.batches, 3);
        assert!(stats.jobs >= 3);
    }

    #[test]
    fn single_thread_request_stays_inline() {
        let g = room_with_pillar();
        let pooled = PooledCaster::new(BresenhamCasting::new(&g, 20.0), 4);
        let qs = queries(128);
        let mut out = vec![0.0; qs.len()];
        pooled.par_ranges_into(&qs, &mut out, 1);
        assert!(pooled.pool_stats().is_none(), "no pool for threads=1");
        let mut seq = vec![0.0; qs.len()];
        pooled.ranges_into(&qs, &mut seq);
        assert_eq!(out, seq);
    }

    #[test]
    fn publishes_pool_telemetry() {
        let g = room_with_pillar();
        let pooled = PooledCaster::new(BresenhamCasting::new(&g, 20.0), 2);
        let tel = Telemetry::enabled();
        pooled.publish_stats(&tel); // pre-spawn: no-op
        let qs = queries(300);
        let mut out = vec![0.0; qs.len()];
        pooled.par_ranges_into(&qs, &mut out, 2);
        pooled.publish_stats(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("par.pool.batches"), Some(1));
        assert!(snap.counter("par.pool.jobs").unwrap_or(0) >= 1);
    }

    #[test]
    fn clone_shares_method_not_pool() {
        let g = room_with_pillar();
        let pooled = PooledCaster::new(BresenhamCasting::new(&g, 20.0), 2);
        let qs = queries(300);
        let mut out = vec![0.0; qs.len()];
        pooled.par_ranges_into(&qs, &mut out, 2);
        let cloned = pooled.clone();
        assert!(cloned.pool_stats().is_none());
        let mut out2 = vec![0.0; qs.len()];
        cloned.par_ranges_into(&qs, &mut out2, 2);
        assert_eq!(out, out2);
    }
}
