//! Rule R3 at the artifact level: the same `(seed, schedule)` must yield
//! bitwise-identical `BENCH_faults.json` rows no matter how many worker
//! threads the simulator and the particle pipeline use (ISSUE satellite;
//! see DESIGN.md §12). The cells here are miniature — the point is the
//! thread sweep, not the fault physics, which `bench::faults` tests cover.

use raceloc_bench::faults::{fault_catalog, run_fault_cell, FaultCellConfig, FaultMethod};

/// A deliberately small cell so the 3-thread sweep stays test-sized.
fn tiny_config(threads: usize) -> FaultCellConfig {
    FaultCellConfig {
        threads,
        particles: 250,
        duration_s: 2.5, // 100 corrections — the catalog's minimum scale
        seed: 42,
    }
}

#[test]
fn fault_rows_are_bitwise_identical_across_thread_counts() {
    let catalog = fault_catalog(tiny_config(1).total_steps());
    // Kidnap exercises ground-truth teleport + health + recovery; dropout
    // exercises the per-beam RNG; latency exercises the stale-scan queue.
    let picks: Vec<_> = catalog
        .iter()
        .filter(|s| ["pose_kidnap", "beam_dropout", "latency"].contains(&s.name.as_str()))
        .collect();
    assert_eq!(picks.len(), 3, "catalog scenario names changed");

    for scenario in picks {
        for method in [FaultMethod::SynPf, FaultMethod::Cartographer] {
            let reference = run_fault_cell(method, scenario, &tiny_config(1));
            let reference = format!("{}", reference.to_json());
            for threads in [2, 4] {
                let row = run_fault_cell(method, scenario, &tiny_config(threads));
                assert_eq!(
                    format!("{}", row.to_json()),
                    reference,
                    "{} x {} differs between 1 and {threads} threads",
                    method.name(),
                    scenario.name,
                );
            }
        }
    }
}
