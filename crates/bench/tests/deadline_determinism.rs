//! Rule R3 at the sweep level: the same `(seed, budget, fault schedule)`
//! must yield bitwise-identical `BENCH_deadline.json` rows — rung
//! occupancy histogram, miss/coast counts, and pose-derived statistics —
//! no matter how many worker threads the simulator and the particle
//! pipeline use (ISSUE satellite; DESIGN.md §14). Cells are miniature —
//! the point is the thread sweep, not the scheduler physics, which
//! `bench::deadline` tests cover.

use proptest::prelude::*;
use raceloc_bench::deadline::{
    pressure_scenarios, run_deadline_cell, BudgetPoint, DeadlineCellConfig, PressureScenario,
};
use raceloc_faults::FaultSchedule;

/// A deliberately small cell so the 3-thread sweep stays test-sized.
fn tiny_config(threads: usize, seed: u64) -> DeadlineCellConfig {
    DeadlineCellConfig {
        threads,
        particles: 150,
        duration_s: 2.5, // 100 corrections — the sweep's minimum scale
        seed,
    }
}

fn assert_thread_invariant(budget: &BudgetPoint, scenario: &PressureScenario, seed: u64) {
    let reference = run_deadline_cell(budget, scenario, &tiny_config(1, seed));
    let reference = format!("{}", reference.to_json());
    for threads in [2, 4] {
        let row = run_deadline_cell(budget, scenario, &tiny_config(threads, seed));
        assert_eq!(
            format!("{}", row.to_json()),
            reference,
            "{} × {} differs between 1 and {threads} threads",
            scenario.name,
            budget.label,
        );
    }
}

#[test]
fn deadline_rows_are_bitwise_identical_across_thread_counts() {
    let cfg = tiny_config(1, 42);
    let full = cfg.full_step_units();
    // A tight budget under the halving window walks the whole ladder:
    // descent, debounced climb, and (at 2%) bounded coasts + forced
    // misses — the paths where a thread-dependent reduction would show.
    let scenarios = pressure_scenarios(cfg.total_steps());
    for scenario in &scenarios[1..] {
        let budget = BudgetPoint {
            label: "tight".into(),
            units: full * 3 / 5,
        };
        assert_thread_invariant(&budget, scenario, 42);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Ladder determinism over sampled budgets, pressure factors, and
    /// world seeds: whatever rung sequence the controller picks, it must
    /// be the same sequence — and produce the same poses — on 1, 2, and
    /// 4 threads.
    #[test]
    fn sampled_budgets_and_pressures_stay_thread_invariant(
        seed in 1u64..1000,
        budget_pct in 25u64..160,
        factor in prop_oneof![Just(0.7f64), Just(0.4), Just(0.1)],
    ) {
        let cfg = tiny_config(1, seed);
        let total = cfg.total_steps();
        let budget = BudgetPoint {
            label: "sampled".into(),
            units: cfg.full_step_units() * budget_pct / 100,
        };
        let scenario = PressureScenario {
            name: "sampled_pressure".into(),
            schedule: FaultSchedule::builder()
                .seed(seed)
                .compute_pressure(total / 4, total / 2, factor)
                .build()
                .expect("valid schedule"),
        };
        assert_thread_invariant(&budget, &scenario, seed);
    }
}
