//! Golden tests for the `fleet diff` regression gate (DESIGN.md §15):
//! checked-in report pairs with a known ordering flip and a known
//! Wilson-interval regression must each exit 1 with a byte-stable
//! human-readable diff, and an identical pair must exit 0.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn golden(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn run_diff(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet"))
        .arg("diff")
        .args(extra)
        .output()
        .expect("spawn fleet diff")
}

fn read_golden(name: &str) -> String {
    std::fs::read_to_string(golden(name)).unwrap_or_else(|e| panic!("missing golden {name}: {e}"))
}

fn path_arg(name: &str) -> String {
    golden(name).to_string_lossy().into_owned()
}

#[test]
fn identical_reports_exit_zero() {
    let base = path_arg("diff_base.json");
    let out = run_diff(&[&base, &base]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.ends_with("verdict: OK\n"), "{stdout}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn ordering_flip_exits_one_with_stable_output() {
    let out = run_diff(&[
        &path_arg("diff_base.json"),
        &path_arg("diff_ordering_flip.json"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, read_golden("diff_ordering_flip.txt"));
    assert!(stdout.contains("REGRESSION ordering"), "{stdout}");
}

#[test]
fn interval_regression_exits_one_with_stable_output() {
    let out = run_diff(&[
        &path_arg("diff_base.json"),
        &path_arg("diff_interval_regression.json"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, read_golden("diff_interval_regression.txt"));
    assert!(stdout.contains("(Wilson intervals disjoint)"), "{stdout}");
}

#[test]
fn out_flag_writes_the_rendered_diff() {
    let out_path = std::env::temp_dir().join(format!(
        "raceloc-fleet-diff-golden-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out_path);
    let out = run_diff(&[
        &path_arg("diff_base.json"),
        &path_arg("diff_ordering_flip.json"),
        "--out",
        &out_path.to_string_lossy(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let written = std::fs::read_to_string(&out_path).expect("diff artifact written");
    assert_eq!(written, read_golden("diff_ordering_flip.txt"));
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn usage_and_parse_failures_exit_two() {
    let out = run_diff(&[&path_arg("diff_base.json")]);
    assert_eq!(out.status.code(), Some(2), "one path is a usage error");
    let out = run_diff(&[
        &path_arg("diff_base.json"),
        &path_arg("definitely-missing.json"),
    ]);
    assert_eq!(out.status.code(), Some(2), "unreadable report");
}
