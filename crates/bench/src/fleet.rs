//! The paper-style robustness fleet (DESIGN.md §12, EXPERIMENTS.md A6):
//! the checked-in [`FleetSpec`] behind `BENCH_fleet.json`.
//!
//! The matrix crosses two procedurally generated tracks, both surface
//! qualities (the paper's HQ/LQ odometry axis), a nominal control plus
//! the two fault scenarios the paper's narrative hinges on (wheelspin
//! odometry slip and a kidnap-grade collision), all three localizers, and
//! 20 seed replicates per cell — 720 closed-loop runs in full mode. The
//! quick mode keeps the whole matrix and drops only the replicate count,
//! so CI exercises every cell on a compressed budget.

use raceloc_eval::{EvalMethod, FleetSpec, GripSpec, MapSpec, ScenarioSpec};
use raceloc_faults::FaultSchedule;

use crate::{MU_HIGH_QUALITY, MU_LOW_QUALITY};

/// Replicates per cell in full mode (the checked-in artifact).
pub const FULL_REPLICATES: u32 = 20;
/// Replicates per cell in `--quick` mode (the CI smoke artifact).
pub const QUICK_REPLICATES: u32 = 2;

/// Builds the robustness fleet. `quick` only changes the replicate count;
/// the cell matrix, seeds, and run length are identical in both modes.
pub fn fleet_spec(quick: bool) -> FleetSpec {
    // 8 s at 40 Hz = 320 corrections; windows follow the fault-catalog
    // proportions (`fault_catalog`) at that run length.
    let total_steps: u64 = 320;
    let onset = total_steps / 4;
    let end = onset + total_steps / 5;
    let mid = total_steps / 2;
    let budget = (total_steps / 4).clamp(40, 160);
    let seed = 0xFA57;
    let schedule =
        |b: raceloc_faults::FaultScheduleBuilder| b.build().expect("fleet schedules are valid");
    FleetSpec {
        name: "robustness-fleet".into(),
        master_seed: 2024,
        replicates: if quick {
            QUICK_REPLICATES
        } else {
            FULL_REPLICATES
        },
        duration_s: 8.0,
        particles: 1200,
        beams: 271,
        // Success: the estimate's mean lateral error (the paper's primary
        // error axis) stayed under ~a quarter of the corridor half-width —
        // laterally on line, even if a global re-init picked the wrong
        // longitudinal section of a symmetric circuit.
        success_lat_cm: 30.0,
        maps: vec![
            MapSpec {
                name: "fourier-33".into(),
                fourier_seed: 33,
                half_width: 1.25,
                mean_radius: 6.0,
            },
            MapSpec {
                name: "fourier-77".into(),
                fourier_seed: 77,
                half_width: 1.25,
                mean_radius: 6.0,
            },
        ],
        grips: vec![
            GripSpec {
                name: "HQ".into(),
                mu: MU_HIGH_QUALITY,
            },
            GripSpec {
                name: "LQ".into(),
                mu: MU_LOW_QUALITY,
            },
        ],
        scenarios: vec![
            ScenarioSpec {
                name: "nominal".into(),
                schedule: schedule(FaultSchedule::builder().seed(seed)),
                measure_from: 0,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "odom_slip".into(),
                schedule: schedule(
                    FaultSchedule::builder()
                        .seed(seed)
                        .odom_slip(onset, end, 1.8),
                ),
                measure_from: end,
                recovery_budget: None,
            },
            ScenarioSpec {
                name: "pose_kidnap".into(),
                schedule: schedule(FaultSchedule::builder().seed(seed).pose_kidnap(mid, 6.0)),
                measure_from: mid,
                recovery_budget: Some(budget),
            },
        ],
        // The robustness fleet stays on the uncapped budget; the budget ×
        // scenario sweep lives in the dedicated `deadline` bench.
        budgets: vec![0],
        methods: vec![
            EvalMethod::SynPf,
            EvalMethod::Cartographer,
            EvalMethod::DeadReckoning,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fleet_matches_the_issue_sizing() {
        let spec = fleet_spec(false);
        spec.validate().expect("fleet spec is valid");
        assert_eq!(spec.cells().len(), 2 * 2 * 3 * 3);
        assert_eq!(spec.total_runs(), 36 * 20);
        assert!(
            spec.replicates >= 20,
            "paper-style statistics need ≥20 seeds"
        );
    }

    #[test]
    fn quick_fleet_keeps_the_matrix() {
        let quick = fleet_spec(true);
        let full = fleet_spec(false);
        quick.validate().expect("quick spec is valid");
        assert_eq!(quick.cells().len(), full.cells().len());
        assert_eq!(quick.total_runs(), 36 * QUICK_REPLICATES as usize);
        // Same matrix ⇒ same world seeds for the replicates both share.
        assert_eq!(quick.world_seed(1, 1, 2, 1), full.world_seed(1, 1, 2, 1));
    }

    #[test]
    fn both_maps_generate_drivable_tracks() {
        for m in &fleet_spec(false).maps {
            let track = m.build_track();
            let len = track.raceline.total_length();
            assert!((25.0..60.0).contains(&len), "{}: raceline {len} m", m.name);
            assert!(
                track.is_free(track.start_pose().translation()),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = fleet_spec(false);
        let text = format!("{}", spec.to_json());
        let back = FleetSpec::from_json_str(&text).expect("parse back");
        assert_eq!(back, spec);
    }

    #[test]
    fn fault_windows_fit_the_run() {
        let spec = fleet_spec(false);
        let steps = (spec.duration_s * 40.0).round() as u64;
        for s in &spec.scenarios {
            assert!(
                s.measure_from < steps,
                "{}: measure_from out of run",
                s.name
            );
            for f in s.schedule.faults() {
                assert!(f.window.start < steps, "{}: window beyond run", s.name);
            }
        }
    }
}
