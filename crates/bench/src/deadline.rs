//! Deadline-scheduler sweep (DESIGN.md §14): SynPF under a budget ×
//! compute-pressure matrix, reduced to the deterministic rows the
//! `deadline` binary serializes into `BENCH_deadline.json`.
//!
//! Each cell runs the health-monitored SynPF closed-loop under oracle
//! control with one per-step compute budget (in the cost model's work
//! units; `0` = uncapped, no controller) against one pressure scenario —
//! fault-free, a mid-run halving of the budget, or a near-total cliff.
//! Rows report accuracy, the degradation-ladder occupancy histogram,
//! deadline misses, and coast steps; nothing in a row depends on wall
//! clock or thread count (rule R3; `tests/deadline_determinism.rs`
//! enforces the sweep end to end).

use crate::{test_track, world_config, MU_HIGH_QUALITY};
use raceloc_core::deadline::{CostModel, RangeTier, LADDER_LEN};
use raceloc_core::DeadlineConfig;
use raceloc_faults::FaultSchedule;
use raceloc_obs::{Json, Telemetry};
use raceloc_pf::{HealthPolicy, KldConfig, RecoveryConfig, SynPf, SynPfConfig};
use raceloc_sim::{SimLog, World};

/// Beam cap of the default boxed scan layout — the beam term of the
/// budget anchors. Perimeter deduplication leaves the *actual* selected
/// fan at roughly two-thirds of this, so one anchored full step carries
/// ~1.5× the cost of a real top-rung correction: the `slack` budget.
const LAYOUT_BEAMS: u64 = 60;

/// One budget point of the sweep.
#[derive(Debug, Clone)]
pub struct BudgetPoint {
    /// Stable label (used as the JSON row key).
    pub label: String,
    /// Per-step budget \[work units\]; `0` = uncapped (no controller).
    pub units: u64,
}

/// One pressure scenario of the sweep.
#[derive(Debug, Clone)]
pub struct PressureScenario {
    /// Stable scenario identifier.
    pub name: String,
    /// The deterministic fault script (compute-pressure windows only —
    /// sensors stay untouched, so accuracy shifts are pure budget effects).
    pub schedule: FaultSchedule,
}

/// Sizing of one deadline cell.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineCellConfig {
    /// Worker threads for the simulator and the particle pipeline (cannot
    /// change any row content — rule R3).
    pub threads: usize,
    /// SynPF particle count (the KLD/ladder ceiling).
    pub particles: usize,
    /// Simulated run length \[s\] (40 scan corrections per second).
    pub duration_s: f64,
    /// World noise seed.
    pub seed: u64,
}

impl DeadlineCellConfig {
    /// The full checked-in-sweep configuration: 16 s ≈ 640 corrections.
    pub fn full(threads: usize) -> Self {
        Self {
            threads,
            particles: 1200,
            duration_s: 16.0,
            seed: 42,
        }
    }

    /// The CI smoke configuration: 8 s ≈ 320 corrections.
    pub fn quick(threads: usize) -> Self {
        Self {
            threads,
            particles: 600,
            duration_s: 8.0,
            seed: 42,
        }
    }

    /// Scan corrections this configuration produces.
    pub fn total_steps(&self) -> u64 {
        (self.duration_s * 40.0).round() as u64
    }

    /// The cost of a full-quality correction at this sizing — the anchor
    /// every budget point is expressed against.
    pub fn full_step_units(&self) -> u64 {
        CostModel::default().step_units(self.particles as u64, LAYOUT_BEAMS, RangeTier::Exact)
    }
}

/// The budget axis: uncapped, comfortable headroom (one anchored full
/// step ≈ 1.5× a real top-rung correction, see [`LAYOUT_BEAMS`]), a
/// tight cap that forces the ladder off the top rung (0.6×), and a
/// starved cap deep into the degraded tiers (0.35×).
pub fn budget_points(cfg: &DeadlineCellConfig) -> Vec<BudgetPoint> {
    let full = cfg.full_step_units();
    vec![
        BudgetPoint {
            label: "uncapped".into(),
            units: 0,
        },
        BudgetPoint {
            label: "slack".into(),
            units: full,
        },
        BudgetPoint {
            label: "tight".into(),
            units: full * 3 / 5,
        },
        BudgetPoint {
            label: "starved".into(),
            units: full * 7 / 20,
        },
    ]
}

/// The pressure axis for a run of `total_steps` corrections: a fault-free
/// control, a window that halves the budget (the graceful-degradation
/// case), and a near-total cliff (2% of budget — the bounded-coast case).
/// Windows close well before the run ends so every row also exercises
/// recovery back to its steady-state rung.
///
/// # Panics
///
/// Panics when `total_steps` is too short to place the windows (< 80).
pub fn pressure_scenarios(total_steps: u64) -> Vec<PressureScenario> {
    assert!(total_steps >= 80, "need at least 80 corrections");
    let onset = total_steps / 4;
    let end = onset + total_steps / 5;
    let seed = 0xFA57;
    let build =
        |b: raceloc_faults::FaultScheduleBuilder| b.build().expect("sweep schedules are valid");
    vec![
        PressureScenario {
            name: "nominal".into(),
            schedule: build(FaultSchedule::builder().seed(seed)),
        },
        PressureScenario {
            name: "pressure_half".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .compute_pressure(onset, end, 0.5),
            ),
        },
        PressureScenario {
            name: "pressure_cliff".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .compute_pressure(onset, end, 0.02),
            ),
        },
    ]
}

/// One deterministic row of `BENCH_deadline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineRow {
    /// Scenario name.
    pub scenario: String,
    /// Budget label.
    pub budget_label: String,
    /// Budget \[work units\]; `0` = uncapped.
    pub budget_units: u64,
    /// Scan corrections actually run.
    pub steps: usize,
    /// RMSE of the translation error over the whole run \[cm\].
    pub rmse_cm: f64,
    /// Mean |signed-lateral(est) − signed-lateral(truth)| \[cm\] — the
    /// paper's primary error axis and the degradation gate's currency.
    pub mean_lat_err_cm: f64,
    /// Deadline misses booked by the controller (0 for uncapped rows).
    pub misses: u64,
    /// Corrections shed entirely (bottom-rung coasts).
    pub coast_steps: u64,
    /// Corrections planned at each ladder rung (all zero for uncapped).
    pub rung_occupancy: [u64; LADDER_LEN],
    /// Rung the controller sat on when the run ended (0 for uncapped).
    pub final_rung: u64,
    /// Whether the ground-truth run aborted in a crash.
    pub crashed: bool,
    /// Whether every pose estimate was finite.
    pub finite: bool,
}

impl DeadlineRow {
    /// Serializes the row (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("budget_label".into(), Json::Str(self.budget_label.clone())),
            ("budget_units".into(), Json::num(self.budget_units as f64)),
            ("steps".into(), Json::num(self.steps as f64)),
            ("rmse_cm".into(), Json::num(self.rmse_cm)),
            ("mean_lat_err_cm".into(), Json::num(self.mean_lat_err_cm)),
            ("misses".into(), Json::num(self.misses as f64)),
            ("coast_steps".into(), Json::num(self.coast_steps as f64)),
            (
                "rung_occupancy".into(),
                Json::Arr(
                    self.rung_occupancy
                        .iter()
                        .map(|&c| Json::num(c as f64))
                        .collect(),
                ),
            ),
            ("final_rung".into(), Json::num(self.final_rung as f64)),
            ("crashed".into(), Json::Bool(self.crashed)),
            ("finite".into(), Json::Bool(self.finite)),
        ])
    }
}

/// Runs one (budget × pressure-scenario) cell and reduces it to a
/// [`DeadlineRow`].
pub fn run_deadline_cell(
    budget: &BudgetPoint,
    scenario: &PressureScenario,
    cfg: &DeadlineCellConfig,
) -> DeadlineRow {
    let track = test_track();
    let mut wcfg = world_config(MU_HIGH_QUALITY, cfg.seed);
    wcfg.threads = cfg.threads.max(1);
    let tel = Telemetry::enabled();
    let mut world = World::new(test_track(), wcfg);
    world.set_telemetry(tel.clone());
    if !scenario.schedule.is_empty() {
        world.set_fault_schedule(scenario.schedule.clone());
    }

    let mut builder = SynPfConfig::builder()
        .particles(cfg.particles)
        .threads(cfg.threads.max(1))
        .seed(7)
        .recovery(RecoveryConfig::default())
        .health(HealthPolicy::default());
    if budget.units > 0 {
        builder = builder
            .kld(KldConfig {
                min_particles: (cfg.particles / 4).max(50),
                max_particles: cfg.particles,
                ..KldConfig::default()
            })
            .deadline(DeadlineConfig {
                budget_units: budget.units,
                ..DeadlineConfig::default()
            });
    }
    let config = builder
        .build()
        .expect("deadline-cell SynPF configuration is valid");
    let mut pf = SynPf::from_artifacts(crate::track_artifacts(&track), config);
    pf.enable_recovery(&track.grid);
    pf.set_telemetry(tel.clone());
    let log = world.run_with_oracle_control(&mut pf, cfg.duration_s);
    let final_rung = pf.deadline().map_or(0, |c| c.rung() as u64);
    summarize(budget, scenario, &track, &tel, final_rung, &log)
}

/// Reduces one run log to its deterministic row.
fn summarize(
    budget: &BudgetPoint,
    scenario: &PressureScenario,
    track: &raceloc_map::Track,
    tel: &Telemetry,
    final_rung: u64,
    log: &SimLog,
) -> DeadlineRow {
    let n = log.samples.len();
    let denom = n.max(1) as f64;
    let mut sq = 0.0;
    let mut lat_sum = 0.0;
    let mut finite = true;
    for s in &log.samples {
        if !(s.est_pose.x.is_finite() && s.est_pose.y.is_finite() && s.est_pose.theta.is_finite()) {
            finite = false;
        }
        let e = s.true_pose.dist(s.est_pose);
        sq += e * e;
        let lat_true = track.raceline.project(s.true_pose.translation()).1;
        let lat_est = track.raceline.project(s.est_pose.translation()).1;
        if lat_est.is_finite() {
            lat_sum += (lat_est - lat_true).abs();
        }
    }
    let snap = tel.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let mut rung_occupancy = [0u64; LADDER_LEN];
    for (r, slot) in rung_occupancy.iter_mut().enumerate() {
        *slot = counter(&format!("deadline.rung{r}"));
    }
    DeadlineRow {
        scenario: scenario.name.clone(),
        budget_label: budget.label.clone(),
        budget_units: budget.units,
        steps: n,
        rmse_cm: 100.0 * (sq / denom).sqrt(),
        mean_lat_err_cm: 100.0 * lat_sum / denom,
        misses: counter("deadline.miss"),
        coast_steps: counter("deadline.coast_steps"),
        rung_occupancy,
        final_rung,
        crashed: log.crashed,
        finite,
    }
}

/// The hard gates the `deadline-smoke` CI job enforces over the whole
/// sweep (ISSUE acceptance; exit code 1 in the binary):
///
/// 1. every row is finite and crash-free;
/// 2. no row misses a deadline outside the cliff scenario — the ladder
///    always finds a rung that fits the budget, including the mid-run
///    halving (misses are legal under the 2% cliff, where even coasting
///    is refused once the bounded coast run is exhausted);
/// 3. capped rows under pressure actually degrade: the `slack` budget
///    must leave the top rung during the halving window;
/// 4. pressure lifts ⇒ the controller climbs back: every capped row ends
///    on the same rung as its fault-free counterpart;
/// 5. graceful degradation stays accurate: on the fault-free scenario,
///    capped rows with ≥ half a full step of budget keep their mean
///    lateral error within 2× of the uncapped row.
pub fn sweep_violations(rows: &[DeadlineRow]) -> Vec<String> {
    let mut out = Vec::new();
    let find = |scenario: &str, label: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.budget_label == label)
    };
    for r in rows {
        let tag = format!("{} × {}", r.scenario, r.budget_label);
        if !r.finite {
            out.push(format!("{tag}: non-finite pose estimate"));
        }
        if r.crashed {
            out.push(format!("{tag}: ground-truth run crashed"));
        }
        if r.scenario != "pressure_cliff" && r.misses > 0 {
            out.push(format!(
                "{tag}: {} deadline miss(es) — the ladder must always fit the budget \
                 outside the cliff scenario",
                r.misses
            ));
        }
        if r.budget_units > 0 {
            if let Some(nominal) = find("nominal", &r.budget_label) {
                if r.final_rung != nominal.final_rung {
                    out.push(format!(
                        "{tag}: ended on rung {} but its fault-free counterpart ends on \
                         rung {} — the controller must recover after pressure lifts",
                        r.final_rung, nominal.final_rung
                    ));
                }
            }
        }
    }
    if let Some(r) = find("pressure_half", "slack") {
        let degraded: u64 = r.rung_occupancy[1..].iter().sum();
        if degraded == 0 {
            out.push(
                "pressure_half × slack: never left the top rung — halving the budget \
                 must force the ladder down"
                    .into(),
            );
        }
    }
    if let Some(uncapped) = find("nominal", "uncapped") {
        for label in ["slack", "tight"] {
            if let Some(r) = find("nominal", label) {
                if r.mean_lat_err_cm > 2.0 * uncapped.mean_lat_err_cm {
                    out.push(format!(
                        "nominal × {label}: mean lateral error {:.1} cm exceeds 2× the \
                         uncapped {:.1} cm — degradation is not graceful",
                        r.mean_lat_err_cm, uncapped.mean_lat_err_cm
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: &str, label: &str, units: u64) -> DeadlineRow {
        DeadlineRow {
            scenario: scenario.into(),
            budget_label: label.into(),
            budget_units: units,
            steps: 320,
            rmse_cm: 5.0,
            mean_lat_err_cm: 2.0,
            misses: 0,
            coast_steps: 0,
            rung_occupancy: [320, 0, 0, 0, 0, 0],
            final_rung: 0,
            crashed: false,
            finite: true,
        }
    }

    #[test]
    fn axes_are_sized_and_labelled() {
        let cfg = DeadlineCellConfig::quick(1);
        let budgets = budget_points(&cfg);
        assert_eq!(budgets.len(), 4);
        assert_eq!(budgets[0].units, 0, "uncapped leads the axis");
        let full = cfg.full_step_units();
        assert_eq!(budgets[1].units, full, "slack is one anchored full step");
        assert!(budgets[2].units < full, "tight forces the ladder down");
        assert!(budgets[3].units < budgets[2].units, "starved is tighter");
        let scenarios = pressure_scenarios(cfg.total_steps());
        assert_eq!(scenarios.len(), 3);
        assert!(scenarios[0].schedule.is_empty(), "nominal is fault-free");
        // Pressure windows close before the run ends (recovery is gated).
        for s in &scenarios[1..] {
            for f in s.schedule.faults() {
                assert!(f.window.end < cfg.total_steps());
            }
        }
    }

    #[test]
    fn gates_pass_a_well_behaved_sweep() {
        let mut half_slack = row("pressure_half", "slack", 200_000);
        half_slack.rung_occupancy = [250, 70, 0, 0, 0, 0];
        let rows = vec![
            row("nominal", "uncapped", 0),
            row("nominal", "slack", 200_000),
            half_slack,
        ];
        assert_eq!(sweep_violations(&rows), Vec::<String>::new());
    }

    #[test]
    fn gates_catch_the_failure_modes() {
        // Miss outside the cliff scenario.
        let mut bad = row("pressure_half", "tight", 90_000);
        bad.misses = 3;
        let v = sweep_violations(&[bad]);
        assert!(v.iter().any(|m| m.contains("miss")), "{v:?}");
        // Cliff misses are legal.
        let mut cliff = row("pressure_cliff", "tight", 90_000);
        cliff.misses = 3;
        assert!(sweep_violations(&[cliff]).is_empty());
        // Stuck on a low rung after the pressure lifts.
        let mut stuck = row("pressure_half", "slack", 200_000);
        stuck.rung_occupancy = [200, 120, 0, 0, 0, 0];
        stuck.final_rung = 1;
        let rows = vec![row("nominal", "slack", 200_000), stuck];
        let v = sweep_violations(&rows);
        assert!(v.iter().any(|m| m.contains("recover")), "{v:?}");
        // Pressure that never forces the slack budget off the top rung.
        let rows = vec![
            row("nominal", "slack", 200_000),
            row("pressure_half", "slack", 200_000),
        ];
        let v = sweep_violations(&rows);
        assert!(v.iter().any(|m| m.contains("top rung")), "{v:?}");
        // Capped accuracy collapsing on the fault-free scenario.
        let mut sloppy = row("nominal", "tight", 90_000);
        sloppy.mean_lat_err_cm = 50.0;
        let rows = vec![row("nominal", "uncapped", 0), sloppy];
        let v = sweep_violations(&rows);
        assert!(v.iter().any(|m| m.contains("graceful")), "{v:?}");
    }

    #[test]
    fn row_json_round_trips_through_obs() {
        let r = row("nominal", "tight", 90_000);
        let text = format!("{}", r.to_json());
        let doc = Json::parse(&text).expect("row serializes to valid JSON");
        assert_eq!(doc.get("scenario").and_then(Json::as_str), Some("nominal"));
        assert_eq!(doc.get("budget_units").and_then(Json::as_u64), Some(90_000));
        let occ = doc
            .get("rung_occupancy")
            .and_then(Json::as_array)
            .expect("occupancy");
        assert_eq!(occ.len(), LADDER_LEN);
    }

    #[test]
    fn uncapped_cell_runs_without_a_controller() {
        let cfg = DeadlineCellConfig {
            threads: 1,
            particles: 120,
            duration_s: 2.0,
            seed: 42,
        };
        let budgets = budget_points(&cfg);
        let scenarios = pressure_scenarios(cfg.total_steps().max(80));
        let r = run_deadline_cell(&budgets[0], &scenarios[0], &cfg);
        assert!(r.steps > 50);
        assert!(r.finite);
        assert_eq!(r.misses, 0);
        assert_eq!(r.rung_occupancy, [0; LADDER_LEN], "no controller, no rungs");
    }
}
