//! **Serve load test** — drives a large mixed-localizer session fleet
//! through the `raceloc-serve` multi-session engine and reports sustained
//! throughput and per-step latency across worker-thread counts, plus a hard
//! determinism gate: the FNV digest over every `(session, seq, pose,
//! health)` step result must be **byte-identical** for every thread count.
//! Any divergence fails the run with exit code 1 — this is the check CI's
//! `serve-smoke` job executes.
//!
//! Run with `cargo run -p raceloc-bench --release --bin serve_load --
//! [--quick] [--threads 1,2,4] [--out BENCH_serve.json]`.

use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{stream_keys, Pose2, Rng64, Twist2};
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_obs::{Json, Stopwatch};
use raceloc_pf::{ScanLayout, SynPfConfig};
use raceloc_range::{ArtifactParams, RangeMethod, RayMarching};
use raceloc_serve::{LocalizerSpec, ServeConfig, ServeEngine, StepRequest, StepResult};
use raceloc_slam::{CartoLocalizerConfig, SearchWindow};

struct Args {
    quick: bool,
    threads: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: vec![1, 2, 4],
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                let list = it.next().unwrap_or_default();
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|t| t.trim().parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .collect();
                if parsed.is_empty() {
                    eprintln!("--threads needs a comma-separated list like 1,2,4");
                    std::process::exit(2);
                }
                args.threads = parsed;
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (known: --quick --threads --out)");
                std::process::exit(2);
            }
        }
    }
    // Thread count 1 is the sequential reference every digest is compared
    // against.
    if !args.threads.contains(&1) {
        args.threads.insert(0, 1);
    }
    args.threads.sort_unstable();
    args.threads.dedup();
    args
}

fn tracks() -> Vec<Track> {
    vec![
        TrackSpec::new(TrackShape::Oval {
            width: 12.0,
            height: 7.0,
        })
        .resolution(0.1)
        .build(),
        TrackSpec::new(TrackShape::RoundedRectangle {
            width: 11.0,
            height: 8.0,
            corner_radius: 2.0,
        })
        .resolution(0.1)
        .build(),
        TrackSpec::new(TrackShape::LShape {
            arm: 9.0,
            notch: 3.5,
            corner_radius: 1.2,
        })
        .resolution(0.1)
        .build(),
        TrackSpec::new(TrackShape::RandomFourier {
            seed: 11,
            mean_radius: 5.0,
            amplitude: 0.2,
            harmonics: 3,
        })
        .resolution(0.1)
        .build(),
    ]
}

fn params() -> ArtifactParams {
    ArtifactParams {
        max_range: 10.0,
        theta_bins: 36,
    }
}

/// Every third session runs a different localizer kind, so pool chunks mix
/// heavy SynPF corrections with near-free dead-reckoning updates.
fn spec_for(i: usize, quick: bool) -> LocalizerSpec {
    match i % 3 {
        0 => LocalizerSpec::SynPf {
            config: SynPfConfig {
                particles: if quick { 64 } else { 128 },
                layout: ScanLayout::Boxed {
                    count: 24,
                    aspect: 3.0,
                },
                ..SynPfConfig::default()
            },
            recovery: i.is_multiple_of(6),
        },
        1 => LocalizerSpec::Cartographer(CartoLocalizerConfig {
            max_points: 60,
            window: SearchWindow {
                linear: 0.15,
                angular: 0.08,
            },
            linear_step: 0.05,
            angular_step: 0.02,
            ..CartoLocalizerConfig::default()
        }),
        _ => LocalizerSpec::DeadReckoning,
    }
}

fn start_pose(track: &Track, session: usize) -> Pose2 {
    let s0 = session as f64 * 0.37;
    Pose2::from_point(
        track.centerline.point_at(s0),
        track.centerline.heading_at(s0),
    )
}

/// Deterministic per-session input tape (truth on the centerline, noisy
/// integrated odometry, scans cast from truth). Engine-independent, so the
/// same bytes feed every thread-count run.
fn input_tape(track: &Track, session: usize, steps: usize) -> Vec<(Odometry, Option<LaserScan>)> {
    const DT: f64 = 0.1;
    const SPEED: f64 = 3.5;
    let caster = RayMarching::new(&track.grid, params().max_range);
    let mut rng = Rng64::stream(0xBEEF, stream_keys::bench_driver(session as u64));
    let path = &track.centerline;
    let s0 = session as f64 * 0.37;
    let mut odom_pose = Pose2::IDENTITY;
    let mut out = Vec::with_capacity(steps);
    for step in 1..=steps {
        let s_prev = s0 + (step - 1) as f64 * SPEED * DT;
        let s_now = s0 + step as f64 * SPEED * DT;
        let prev = Pose2::from_point(path.point_at(s_prev), path.heading_at(s_prev));
        let truth = Pose2::from_point(path.point_at(s_now), path.heading_at(s_now));
        let mut delta = prev.relative_to(truth);
        delta.x += rng.gaussian_with(0.0, 0.005);
        delta.y += rng.gaussian_with(0.0, 0.005);
        delta.theta += rng.gaussian_with(0.0, 0.002);
        odom_pose = odom_pose * delta;
        let stamp = step as f64 * DT;
        let beams = 36;
        let fov = 270.0f64.to_radians();
        let inc = fov / (beams - 1) as f64;
        let ranges: Vec<f64> = (0..beams)
            .map(|b| caster.range(truth.x, truth.y, truth.theta - 0.5 * fov + b as f64 * inc))
            .collect();
        let mut scan = LaserScan::new(-0.5 * fov, inc, ranges, params().max_range);
        scan.stamp = stamp;
        out.push((
            Odometry::new(odom_pose, Twist2::new(SPEED, 0.0, 0.0), stamp),
            Some(scan),
        ));
    }
    out
}

fn digest(results: &[StepResult]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    };
    for r in results {
        eat(r.session.0);
        eat(r.seq);
        eat(r.pose.x.to_bits());
        eat(r.pose.y.to_bits());
        eat(r.pose.theta.to_bits());
        eat(r.health.as_str().len() as u64);
    }
    h
}

struct RunOutcome {
    digest: u64,
    shed: u64,
    builds: u64,
    hits: u64,
    luts_built: u64,
    total_steps: usize,
    wall_seconds: f64,
    steps_per_sec: f64,
    drain_ms_p50: f64,
    drain_ms_p99: f64,
    step_us_p99: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Opens the whole fleet, replays every tape step-interleaved (one fleet
/// step = one submit per session + one drain), and measures drain latency.
fn run_fleet(
    threads: usize,
    tracks: &[Track],
    tapes: &[Vec<(Odometry, Option<LaserScan>)>],
    quick: bool,
) -> RunOutcome {
    let sessions = tapes.len();
    let steps = tapes.first().map_or(0, Vec::len);
    let mut engine = ServeEngine::new(ServeConfig {
        seed: 2024,
        threads,
        queue_capacity: sessions * 2,
        max_sessions: sessions,
        chunk_min: 2,
        ..ServeConfig::default()
    });
    let mut ids = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let track = &tracks[i % tracks.len()];
        let id = engine
            .open_session(
                &track.grid,
                params(),
                spec_for(i, quick),
                start_pose(track, i),
            )
            .expect("fleet fits under max_sessions");
        ids.push(id);
    }
    let mut all = Vec::with_capacity(sessions * steps);
    let mut drain_ms = Vec::with_capacity(steps);
    let run = Stopwatch::start();
    for step in 0..steps {
        for (tape, id) in tapes.iter().zip(&ids) {
            let (odom, scan) = tape[step].clone();
            engine
                .submit(StepRequest {
                    session: *id,
                    odom,
                    scan,
                })
                .expect("session is open");
        }
        let t0 = Stopwatch::start();
        all.extend(engine.drain());
        drain_ms.push(t0.elapsed_seconds() * 1e3);
    }
    let wall_seconds = run.elapsed_seconds();
    all.sort_by_key(|r| (r.session.0, r.seq));
    drain_ms.sort_by(|a, b| a.total_cmp(b));
    let p99_drain = quantile(&drain_ms, 0.99);
    RunOutcome {
        digest: digest(&all),
        shed: engine.shed_total(),
        builds: engine.store().builds(),
        hits: engine.store().hits(),
        luts_built: engine.store().luts_built(),
        total_steps: all.len(),
        wall_seconds,
        steps_per_sec: all.len() as f64 / wall_seconds.max(1e-9),
        drain_ms_p50: quantile(&drain_ms, 0.5),
        drain_ms_p99: p99_drain,
        step_us_p99: p99_drain / sessions.max(1) as f64 * 1e3,
    }
}

fn main() {
    let args = parse_args();
    let sessions = if args.quick { 48 } else { 256 };
    let steps = if args.quick { 4 } else { 12 };
    println!(
        "Serve load test: {sessions} sessions x {steps} steps over 4 tracks, threads {:?}",
        args.threads
    );
    let tracks = tracks();
    let tapes: Vec<Vec<(Odometry, Option<LaserScan>)>> = (0..sessions)
        .map(|i| input_tape(&tracks[i % tracks.len()], i, steps))
        .collect();

    let outcomes: Vec<(usize, RunOutcome)> = args
        .threads
        .iter()
        .map(|&t| (t, run_fleet(t, &tracks, &tapes, args.quick)))
        .collect();

    let reference = &outcomes[0].1;
    let mut diverged = false;
    for (t, o) in &outcomes {
        if o.digest != reference.digest || o.total_steps != reference.total_steps {
            diverged = true;
            eprintln!(
                "DIVERGENCE: threads={t} digest {:016x} != reference {:016x}",
                o.digest, reference.digest
            );
        }
    }
    println!(
        "determinism gate: digest {:016x} across threads {:?} ({})",
        reference.digest,
        args.threads,
        if diverged { "FAIL" } else { "ok" }
    );
    println!(
        "artifact store: {} builds, {} hits, {} LUTs for {sessions} sessions",
        reference.builds, reference.hits, reference.luts_built
    );
    println!(
        "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "threads", "steps/sec", "drain p50", "drain p99", "step p99", "wall"
    );
    for (t, o) in &outcomes {
        println!(
            "  {:<8} {:>12.0} {:>10.3}ms {:>10.3}ms {:>10.1}us {:>10.2}s",
            t, o.steps_per_sec, o.drain_ms_p50, o.drain_ms_p99, o.step_us_p99, o.wall_seconds
        );
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("serve_load".into())),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "config".into(),
            Json::Obj(vec![
                ("sessions".into(), Json::num(sessions as f64)),
                ("steps_per_session".into(), Json::num(steps as f64)),
                ("tracks".into(), Json::num(tracks.len() as f64)),
                (
                    "localizers".into(),
                    Json::Arr(vec![
                        Json::Str("synpf".into()),
                        Json::Str("cartographer".into()),
                        Json::Str("dead_reckoning".into()),
                    ]),
                ),
                ("theta_bins".into(), Json::num(params().theta_bins as f64)),
                ("seed".into(), Json::num(2024.0)),
            ]),
        ),
        (
            "determinism".into(),
            Json::Obj(vec![
                ("bitwise_identical".into(), Json::Bool(!diverged)),
                (
                    "digest".into(),
                    Json::Str(format!("{:016x}", reference.digest)),
                ),
                ("shed".into(), Json::num(reference.shed as f64)),
                ("artifact_builds".into(), Json::num(reference.builds as f64)),
                ("artifact_hits".into(), Json::num(reference.hits as f64)),
                ("luts_built".into(), Json::num(reference.luts_built as f64)),
                (
                    "threads_checked".into(),
                    Json::Arr(args.threads.iter().map(|&t| Json::num(t as f64)).collect()),
                ),
            ]),
        ),
        (
            "threads".into(),
            Json::Arr(
                outcomes
                    .iter()
                    .map(|(t, o)| {
                        Json::Obj(vec![
                            ("threads".into(), Json::num(*t as f64)),
                            ("total_steps".into(), Json::num(o.total_steps as f64)),
                            ("wall_seconds".into(), Json::num(o.wall_seconds)),
                            ("steps_per_sec".into(), Json::num(o.steps_per_sec)),
                            ("drain_ms_p50".into(), Json::num(o.drain_ms_p50)),
                            ("drain_ms_p99".into(), Json::num(o.drain_ms_p99)),
                            ("step_us_p99".into(), Json::num(o.step_us_p99)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if diverged {
        std::process::exit(1);
    }
}
