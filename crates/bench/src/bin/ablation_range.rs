//! **Ablation A2 — range-method comparison** (paper §II / rangelibc).
//!
//! Throughput, memory, and accuracy of the four CPU range-query methods on
//! the test-track map, plus the multi-threaded batch mode that substitutes
//! for rangelibc's GPU ray casting.
//!
//! Run with `cargo run -p raceloc-bench --release --bin ablation_range`.

use raceloc_bench::test_track;
use raceloc_core::Rng64;
use raceloc_map::CellState;
use raceloc_range::{BresenhamCasting, Cddt, RangeLut, RangeMethod, RayMarching};
use std::time::Instant;

fn free_space_queries(track: &raceloc_map::Track, n: usize) -> Vec<(f64, f64, f64)> {
    let mut rng = Rng64::new(17);
    let (lo, hi) = track.grid.bounds();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = rng.uniform_range(lo.x, hi.x);
        let y = rng.uniform_range(lo.y, hi.y);
        if track.grid.state_at_world(raceloc_core::Point2::new(x, y)) == CellState::Free {
            out.push((
                x,
                y,
                rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI),
            ));
        }
    }
    out
}

fn bench_method<M: RangeMethod>(
    name: &str,
    method: &M,
    queries: &[(f64, f64, f64)],
    reference: &[f64],
    build_seconds: f64,
) {
    let mut out = vec![0.0; queries.len()];
    // Warm up.
    method.ranges_into(
        &queries[..1000.min(queries.len())],
        &mut out[..1000.min(queries.len())],
    );
    let t0 = Instant::now();
    method.ranges_into(queries, &mut out);
    let per_query_ns = t0.elapsed().as_secs_f64() / queries.len() as f64 * 1e9;
    let mut err = raceloc_core::RunningStats::new();
    for (a, b) in out.iter().zip(reference) {
        err.push((a - b).abs());
    }
    println!(
        "{:<14} {:>10.1} {:>12.1} {:>11.2} {:>11.3} {:>10.2}",
        name,
        per_query_ns,
        1e3 / per_query_ns * 1e6 / 1e3, // queries per ms
        method.memory_bytes() as f64 / 1e6,
        err.mean() * 100.0,
        build_seconds,
    );
}

fn main() {
    println!("Range-method comparison on the test-track map (60k random free-space");
    println!("queries; error measured against exact Bresenham casting).");
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>11} {:>11} {:>10}",
        "method", "ns/query", "queries/ms", "mem [MB]", "err [cm]", "build [s]"
    );
    let track = test_track();
    let queries = free_space_queries(&track, 60_000);

    let t0 = Instant::now();
    let bres = BresenhamCasting::new(&track.grid, 10.0);
    let bres_build = t0.elapsed().as_secs_f64();
    let mut reference = vec![0.0; queries.len()];
    bres.ranges_into(&queries, &mut reference);
    bench_method("bresenham", &bres, &queries, &reference, bres_build);

    let t0 = Instant::now();
    let rm = RayMarching::new(&track.grid, 10.0);
    let rm_build = t0.elapsed().as_secs_f64();
    bench_method("ray-marching", &rm, &queries, &reference, rm_build);

    let t0 = Instant::now();
    let cddt = Cddt::new(&track.grid, 10.0, 180);
    let cddt_build = t0.elapsed().as_secs_f64();
    bench_method("cddt", &cddt, &queries, &reference, cddt_build);

    let t0 = Instant::now();
    let mut pruned = Cddt::new(&track.grid, 10.0, 180);
    pruned.prune();
    let pruned_build = t0.elapsed().as_secs_f64();
    bench_method("cddt-pruned", &pruned, &queries, &reference, pruned_build);

    let t0 = Instant::now();
    let lut = RangeLut::new(&track.grid, 10.0, 72);
    let lut_build = t0.elapsed().as_secs_f64();
    bench_method("lut", &lut, &queries, &reference, lut_build);

    println!();
    println!("Threaded batch casting (GPU-mode substitute), Bresenham backend:");
    for threads in [1, 2, 4, 8] {
        let mut out = vec![0.0; queries.len()];
        let t0 = Instant::now();
        bres.par_ranges_into(&queries, &mut out, threads);
        println!(
            "  threads={threads}: {:>8.1} ns/query",
            t0.elapsed().as_secs_f64() / queries.len() as f64 * 1e9
        );
    }
}
