//! **Ablation A1 — boxed vs uniform scanline layout** (paper §II).
//!
//! The boxed layout points more beams down-track, extracting more racetrack
//! geometry from a fixed beam budget. This ablation measures one-shot
//! relocalization accuracy: the filter is initialized with a pose offset and
//! corrected with a handful of scans, for several beam budgets and both
//! layouts.
//!
//! Run with `cargo run -p raceloc-bench --release --bin ablation_layout`.

use raceloc_bench::{test_track, track_artifacts};
use raceloc_core::localizer::Localizer;
use raceloc_core::{Pose2, RunningStats};
use raceloc_pf::{ScanLayout, SynPf, SynPfConfig};
use raceloc_range::RayMarching;
use raceloc_sim::{Lidar, LidarSpec};
use std::sync::Arc;

fn main() {
    println!("Boxed vs uniform scanline layout — relocalization error after 5");
    println!("corrections from a (0.25 m, 0.15 m, 6°) initial offset, 12 trials.");
    println!();
    println!("{:<8} {:>16} {:>16}", "beams", "uniform [cm]", "boxed [cm]");
    let track = test_track();
    let caster = RayMarching::new(&track.grid, 10.0);
    // One shared artifact bundle: the (expensive) LUT is built once and
    // every filter instance borrows it through the `Arc`.
    let artifacts = track_artifacts(&track);
    let mut lidar = Lidar::new(
        LidarSpec {
            beams: 1081,
            ..LidarSpec::default()
        },
        5,
    );
    for beams in [20, 40, 60, 90] {
        let mut row = Vec::new();
        for boxed in [false, true] {
            let layout = if boxed {
                ScanLayout::Boxed {
                    count: beams,
                    aspect: 3.0,
                }
            } else {
                ScanLayout::Uniform { count: beams }
            };
            let mut stats = RunningStats::new();
            for trial in 0..12 {
                // Random-ish poses along the raceline.
                let s = trial as f64 / 12.0 * track.raceline.total_length();
                let p = track.raceline.point_at(s);
                let truth = Pose2::new(p.x, p.y, track.raceline.heading_at(s));
                let scan = lidar.scan(truth, &caster, 0.0);
                let config = SynPfConfig::builder()
                    .particles(800)
                    .layout(layout)
                    .seed(100 + trial)
                    .build()
                    .expect("ablation config is valid");
                let mut pf = SynPf::from_artifacts(Arc::clone(&artifacts), config);
                pf.reset(Pose2::new(
                    truth.x + 0.25,
                    truth.y - 0.15,
                    truth.theta + 0.1,
                ));
                let mut est = pf.pose();
                for _ in 0..5 {
                    est = pf.correct(&scan);
                }
                stats.push(100.0 * est.dist(truth));
            }
            row.push(stats.mean());
        }
        println!("{:<8} {:>16.2} {:>16.2}", beams, row[0], row[1]);
    }
    println!();
    println!("(lower is better; the boxed layout should win at small beam budgets)");
}
