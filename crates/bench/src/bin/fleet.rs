//! **Fleet evaluation** — the paper-style Monte-Carlo robustness tables
//! (EXPERIMENTS.md A6): {SynPF, Cartographer, DeadReckoning} × {HQ, LQ
//! grip} × {nominal, odometry slip, pose kidnap} × 2 tracks × 20 seed
//! replicates, aggregated into per-cell success rates (Wilson 95%
//! intervals), mean/p95 RMSE and lateral error, and recovery-latency
//! distributions. `BENCH_fleet.json` is the checked-in artifact; it is
//! byte-identical for every `--threads` value.
//!
//! Hard gates (exit code 1, the CI `fleet-smoke` job): the paper's
//! qualitative localizer ordering — SynPF must beat Cartographer under
//! odometry slip, and dead reckoning must be the nominal-scenario worst
//! case — plus per-cell sanity (see `raceloc_eval::ordering_violations`).
//!
//! Run with `cargo run -p raceloc-bench --release --bin fleet --
//! [--quick] [--threads N] [--out BENCH_fleet.json]`.

use raceloc_bench::env_threads;
use raceloc_bench::fleet::fleet_spec;
use raceloc_eval::{ordering_violations, run_fleet, CellSummary};
use raceloc_obs::Json;

struct Args {
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: env_threads(),
        out: "BENCH_fleet.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|t| t.trim().parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (known: --quick --threads --out)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn format_cell(c: &CellSummary) -> String {
    format!(
        "{:<11} {:<3} {:<12} {:<13} {:>5} {:>5.2} [{:.2},{:.2}] {:>9.1} {:>9.1} {:>8.1} {:>7}",
        c.map,
        c.grip,
        c.scenario,
        c.method,
        c.runs,
        c.success_rate,
        c.success_lo,
        c.success_hi,
        c.mean_rmse_cm,
        c.p95_rmse_cm,
        c.mean_lat_err_cm,
        if c.unrecovered > 0 {
            format!("{}!", c.unrecovered)
        } else {
            format!("{:.0}", c.mean_recovery_steps)
        },
    )
}

fn main() {
    let args = parse_args();
    let spec = fleet_spec(args.quick);
    println!(
        "Fleet evaluation — {} cells × {} replicates = {} closed-loop runs ({} threads)",
        spec.cells().len(),
        spec.replicates,
        spec.total_runs(),
        args.threads.max(1)
    );
    let report = match run_fleet(&spec, args.threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    println!(
        "{:<11} {:<3} {:<12} {:<13} {:>5} {:>17} {:>9} {:>9} {:>8} {:>7}",
        "Map",
        "Odo",
        "Scenario",
        "Method",
        "Runs",
        "Success [95% CI]",
        "RMSE[cm]",
        "p95[cm]",
        "Lat[cm]",
        "Recov"
    );
    for cell in &report.cells {
        println!("{}", format_cell(cell));
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("fleet".into())),
        ("quick".into(), Json::Bool(args.quick)),
        ("spec".into(), spec.to_json()),
        ("report".into(), report.to_json()),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    let violations = ordering_violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("GATE FAILURE: {v}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}
