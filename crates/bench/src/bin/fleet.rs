//! **Fleet evaluation** — the paper-style Monte-Carlo robustness tables
//! (EXPERIMENTS.md A6): {SynPF, Cartographer, DeadReckoning} × {HQ, LQ
//! grip} × {nominal, odometry slip, pose kidnap} × 2 tracks × 20 seed
//! replicates, aggregated into per-cell success rates (Wilson 95%
//! intervals), mean/p95 RMSE and lateral error, and recovery-latency
//! distributions. `BENCH_fleet.json` is the checked-in artifact; it is
//! byte-identical for every `--threads` value, every `--cache-dir`/
//! `--journal` state, and every interrupt/resume split (DESIGN.md §15).
//!
//! Hard gates (exit code 1, the CI `fleet-smoke` job): the paper's
//! qualitative localizer ordering — SynPF must beat Cartographer under
//! odometry slip, and dead reckoning must be the nominal-scenario worst
//! case — plus per-cell sanity (see `raceloc_eval::ordering_violations`).
//!
//! Run with `cargo run -p raceloc-bench --release --bin fleet --
//! [--quick] [--threads N] [--out BENCH_fleet.json] [--cache-dir DIR]
//! [--journal FILE] [--stats-out FILE] [--stop-after-cells K]`.
//!
//! The `diff` subcommand is the cross-PR accuracy gate (the CI
//! `fleet-cache-smoke` job): `fleet diff BASELINE FRESH [--out FILE]`
//! compares two report artifacts and exits 1 on an ordering flip or a
//! disjoint-Wilson-interval success regression (see
//! `raceloc_eval::diff_reports`).

use raceloc_bench::env_threads;
use raceloc_bench::fleet::fleet_spec;
use raceloc_eval::{
    diff_reports, ordering_violations, run_fleet_with, CellSummary, FleetReport, FleetRunOptions,
};
use raceloc_obs::Json;

struct Args {
    quick: bool,
    threads: usize,
    out: String,
    cache_dir: Option<String>,
    journal: Option<String>,
    stats_out: Option<String>,
    stop_after_cells: Option<usize>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        quick: false,
        threads: env_threads(),
        out: "BENCH_fleet.json".to_string(),
        cache_dir: None,
        journal: None,
        stats_out: None,
        stop_after_cells: None,
    };
    let mut it = argv.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = value("--threads", &mut it)
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => args.out = value("--out", &mut it),
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir", &mut it)),
            "--journal" => args.journal = Some(value("--journal", &mut it)),
            "--stats-out" => args.stats_out = Some(value("--stats-out", &mut it)),
            "--stop-after-cells" => {
                args.stop_after_cells = Some(
                    value("--stop-after-cells", &mut it)
                        .trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| {
                            eprintln!("--stop-after-cells needs a non-negative integer");
                            std::process::exit(2);
                        }),
                );
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (known: --quick --threads --out --cache-dir \
                     --journal --stats-out --stop-after-cells; subcommand: diff)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn format_cell(c: &CellSummary) -> String {
    format!(
        "{:<11} {:<3} {:<12} {:<13} {:>5} {:>5.2} [{:.2},{:.2}] {:>9.1} {:>9.1} {:>8.1} {:>7}",
        c.map,
        c.grip,
        c.scenario,
        c.method,
        c.runs,
        c.success_rate,
        c.success_lo,
        c.success_hi,
        c.mean_rmse_cm,
        c.p95_rmse_cm,
        c.mean_lat_err_cm,
        if c.unrecovered > 0 {
            format!("{}!", c.unrecovered)
        } else {
            format!("{:.0}", c.mean_recovery_steps)
        },
    )
}

fn load_report(path: &str) -> FleetReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("failed to read {path}: {e}");
        std::process::exit(2);
    });
    FleetReport::from_json_str(&text).unwrap_or_else(|e| {
        eprintln!("failed to parse {path}: {e}");
        std::process::exit(2);
    })
}

/// `fleet diff BASELINE FRESH [--out FILE]` — exit 0 clean, 1 regressed,
/// 2 usage/parse failure.
fn diff_main(argv: &[String]) -> ! {
    let mut paths: Vec<&String> = Vec::new();
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!("usage: fleet diff BASELINE FRESH [--out FILE]");
        std::process::exit(2);
    };
    let baseline = load_report(baseline_path);
    let fresh = load_report(fresh_path);
    let diff = diff_reports(&baseline, &fresh);
    let rendered = diff.render();
    print!("{rendered}");
    if let Some(out) = out {
        if let Err(e) = std::fs::write(&out, &rendered) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(if diff.is_regression() { 1 } else { 0 });
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        diff_main(&argv[1..]);
    }
    let args = parse_args(&argv);
    let spec = fleet_spec(args.quick);
    println!(
        "Fleet evaluation — {} cells × {} replicates = {} closed-loop runs ({} threads)",
        spec.cells().len(),
        spec.replicates,
        spec.total_runs(),
        args.threads.max(1)
    );
    let mut opts = FleetRunOptions::new(args.threads);
    opts.cache_dir = args.cache_dir.map(Into::into);
    opts.journal_path = args.journal.map(Into::into);
    opts.stop_after_cells = args.stop_after_cells;
    let (report, stats) = match run_fleet_with(&spec, &opts) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "cells: {} total — {} from cache, {} from journal, {} executed ({} runs){}",
        stats.cells_total,
        stats.cache_hits,
        stats.journal_hits,
        stats.executed_cells,
        stats.executed_runs,
        if stats.stopped_early {
            " — STOPPED EARLY"
        } else {
            ""
        }
    );

    println!(
        "{:<11} {:<3} {:<12} {:<13} {:>5} {:>17} {:>9} {:>9} {:>8} {:>7}",
        "Map",
        "Odo",
        "Scenario",
        "Method",
        "Runs",
        "Success [95% CI]",
        "RMSE[cm]",
        "p95[cm]",
        "Lat[cm]",
        "Recov"
    );
    for cell in &report.cells {
        println!("{}", format_cell(cell));
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("fleet".into())),
        ("quick".into(), Json::Bool(args.quick)),
        ("spec".into(), spec.to_json()),
        ("report".into(), report.to_json()),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if let Some(stats_out) = &args.stats_out {
        if let Err(e) = std::fs::write(stats_out, format!("{}\n", stats.to_json())) {
            eprintln!("failed to write {stats_out}: {e}");
            std::process::exit(1);
        }
        println!("wrote {stats_out}");
    }

    // An interrupted invocation deliberately leaves missing rows; the
    // ordering gates only judge complete reports (the resumed run gates).
    if stats.stopped_early {
        println!("stopped after {} cells — gates skipped until resume", {
            stats.cache_hits + stats.journal_hits + stats.executed_cells
        });
        return;
    }
    let violations = ordering_violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("GATE FAILURE: {v}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}
