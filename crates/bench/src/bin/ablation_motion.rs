//! **Ablation A3 — motion model inside the full filter** (paper §II).
//!
//! Runs the complete closed-loop Table I cell for SynPF with the TUM motion
//! model swapped for the textbook diff-drive model, on both grip levels —
//! quantifying how much of SynPF's robustness comes from the motion model.
//!
//! Run with `cargo run -p raceloc-bench --release --bin ablation_motion`.

use raceloc_bench::{
    format_row, run_cell_with_odom, table_header, test_track, track_artifacts, OdomSource,
    MU_HIGH_QUALITY, MU_LOW_QUALITY,
};
use raceloc_pf::{DiffDriveModel, MotionConfig, SynPf, SynPfConfig, TumMotionModel};
use std::sync::Arc;

fn main() {
    let laps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!("Motion-model ablation — SynPF with TUM vs diff-drive motion model,");
    println!("{laps} flying laps per cell.");
    println!();
    println!("{}", table_header());
    let track = test_track();
    // One shared artifact bundle: every filter instance reuses the same
    // EDT and lazily-built range LUT instead of cloning a dense table.
    let artifacts = track_artifacts(&track);
    for (name, motion) in [
        ("SynPF-tum", MotionConfig::Tum(TumMotionModel::default())),
        (
            "SynPF-diffdrv",
            MotionConfig::DiffDrive(DiffDriveModel::default()),
        ),
    ] {
        for (odom, mu) in [("HQ", MU_HIGH_QUALITY), ("LQ", MU_LOW_QUALITY)] {
            let config = SynPfConfig::builder()
                .motion(motion)
                .seed(7)
                .build()
                .expect("ablation config is valid");
            let mut pf = SynPf::from_artifacts(Arc::clone(&artifacts), config);
            let r = run_cell_with_odom(&mut pf, name, odom, mu, laps, 42, OdomSource::ImuFused);
            println!("{}", format_row(&r));
        }
    }
    println!();
    println!("(the diff-drive variant should lose accuracy at speed, most visibly");
    println!(" in the estimation error and scan alignment)");
}
