//! **Experiment E4 — Fig. 2** of the paper: the test-track setup.
//!
//! The paper's figure shows the physical test track and the taped
//! "slippery" tires. This binary renders our procedural stand-in track as
//! ASCII art, reports its geometry statistics, and translates the two grip
//! levels back into the paper's pull-force measurement.
//!
//! Run with `cargo run -p raceloc-bench --release --bin track_setup`.

use raceloc_bench::{test_track, MU_HIGH_QUALITY, MU_LOW_QUALITY};

fn main() {
    let track = test_track();
    println!("Test track (procedural stand-in for the paper's Fig. 2 hall track):");
    println!("{}", track.grid.to_ascii(96));
    let (free, occ, unk) = track.grid.census();
    println!(
        "grid: {}×{} cells @ {:.0} mm  (free {free}, wall {occ}, unknown {unk})",
        track.grid.width(),
        track.grid.height(),
        track.grid.resolution() * 1e3,
    );
    println!(
        "centerline {:.1} m, raceline {:.1} m, corridor width {:.2} m",
        track.centerline.total_length(),
        track.raceline.total_length(),
        2.0 * track.half_width,
    );
    let mut max_k: f64 = 0.0;
    let n = 200;
    for i in 0..n {
        let s = i as f64 / n as f64 * track.raceline.total_length();
        max_k = max_k.max(track.raceline.curvature_at(s, 0.4).abs());
    }
    println!(
        "raceline curvature: max {:.2} 1/m (min radius {:.2} m)",
        max_k,
        1.0 / max_k.max(1e-9)
    );
    println!();
    // The paper measured grip by pulling the car laterally at the CG
    // (26 N nominal, 19 N with taped tires). We normalize the nominal
    // surface to μ = 1 and preserve the measured 19/26 force ratio.
    println!("grip levels (paper pull-force measurement: 26 N nominal, 19 N taped):");
    println!("  high quality: μ={MU_HIGH_QUALITY:.3}  (≙ 26 N pull)");
    println!(
        "  low quality:  μ={MU_LOW_QUALITY:.3}  (≙ 19 N pull, ratio {:.3})",
        MU_LOW_QUALITY / MU_HIGH_QUALITY
    );
}
