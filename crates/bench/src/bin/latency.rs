//! **Experiment E3** — the paper's headline "1.25 ms scan matching on a
//! GPU-less on-board computer": wall-clock latency of one SynPF sensor
//! update (boxed 60-beam layout, LUT range queries) as a function of the
//! particle count, plus the same measurement for the other range methods.
//!
//! All numbers come from the `raceloc-obs` telemetry spans the filter
//! records (`pf.motion` / `pf.raycast` / `pf.sensor` / `pf.resample` /
//! `pf.correct`), so the per-stage breakdown printed here is the same
//! data path `World::run_recorded` streams to JSONL.
//!
//! Run with `cargo run -p raceloc-bench --release --bin latency`.

use raceloc_bench::{test_track, track_artifacts};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::LaserScan;
use raceloc_obs::{Snapshot, Telemetry};
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{BresenhamCasting, Cddt, RangeMethod, RayMarching};
use raceloc_sim::{Lidar, LidarSpec};
use std::sync::Arc;

fn scan_at_start(track: &raceloc_map::Track) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    lidar.scan(track.start_pose(), &caster, 0.0)
}

/// Runs warm-up + timed corrections and returns the telemetry snapshot the
/// filter recorded over the timed repetitions.
fn measure_pf<M: RangeMethod + 'static>(
    caster: M,
    particles: usize,
    threads: usize,
    track: &raceloc_map::Track,
    scan: &LaserScan,
) -> Snapshot {
    let config = SynPfConfig::builder()
        .particles(particles)
        .threads(threads)
        .build()
        .expect("latency bench config is valid");
    let mut pf = SynPf::new(caster, config);
    let tel = Telemetry::enabled();
    pf.set_telemetry(tel.clone());
    pf.reset(track.start_pose());
    // Warm up, then reset the telemetry so only timed reps are aggregated.
    for _ in 0..3 {
        pf.correct(scan);
    }
    tel.reset();
    for _ in 0..20 {
        pf.correct(scan);
    }
    tel.snapshot()
}

fn correct_ms(snap: &Snapshot) -> f64 {
    snap.span("pf.correct")
        .map(|s| s.mean_seconds() * 1e3)
        .unwrap_or(f64::NAN)
}

fn print_stage_breakdown(snap: &Snapshot) {
    println!(
        "  {:<14} {:>10} {:>10} {:>10}",
        "stage", "mean [ms]", "min [ms]", "max [ms]"
    );
    for stage in [
        "pf.motion",
        "pf.raycast",
        "pf.sensor",
        "pf.resample",
        "pf.correct",
    ] {
        if let Some(s) = snap.span(stage) {
            println!(
                "  {:<14} {:>10.4} {:>10.4} {:>10.4}",
                stage,
                s.mean_seconds() * 1e3,
                s.min_seconds * 1e3,
                s.max_seconds * 1e3,
            );
        }
    }
    if let Some(h) = snap.histogram("pf.correct") {
        let p = |q: f64| {
            h.quantile_upper_bound(q)
                .map(|s| format!("{:.3}", s * 1e3))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "  pf.correct latency histogram: p50 ≤ {} ms, p90 ≤ {} ms, p99 ≤ {} ms",
            p(0.5),
            p(0.9),
            p(0.99)
        );
    }
}

fn main() {
    println!("SynPF sensor-update latency (paper: 1.25 ms on an i5-10210U, LUT mode)");
    println!();
    let track = test_track();
    let scan = scan_at_start(&track);

    println!("LUT mode (the paper's configuration), boxed 60-beam layout:");
    // One shared artifact bundle for every LUT-mode row: the LUT is built
    // once and all filter instances query the same table.
    let artifacts = track_artifacts(&track);
    for particles in [500, 1000, 1200, 2000, 4000] {
        let snap = measure_pf(Arc::clone(&artifacts), particles, 1, &track, &scan);
        println!(
            "  N={particles:>5}: {:>8.3} ms per scan update",
            correct_ms(&snap)
        );
    }

    println!();
    println!("Per-stage breakdown at N=1200 (LUT), from recorded obs spans:");
    let snap = measure_pf(Arc::clone(&artifacts), 1200, 1, &track, &scan);
    print_stage_breakdown(&snap);

    println!();
    println!("Range-method comparison at N=1200:");
    let snap = measure_pf(Arc::clone(&artifacts), 1200, 1, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "LUT", correct_ms(&snap));
    let snap = measure_pf(Cddt::new(&track.grid, 10.0, 180), 1200, 1, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "CDDT", correct_ms(&snap));
    let snap = measure_pf(RayMarching::new(&track.grid, 10.0), 1200, 1, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "ray marching", correct_ms(&snap));
    let snap = measure_pf(
        BresenhamCasting::new(&track.grid, 10.0),
        1200,
        1,
        &track,
        &scan,
    );
    println!("  {:<22} {:>8.3} ms", "Bresenham", correct_ms(&snap));

    println!();
    println!("Threaded batch casting (the rangelibc GPU-mode substitute), N=1200, LUT:");
    for threads in [1, 2, 4, 8] {
        let snap = measure_pf(Arc::clone(&artifacts), 1200, threads, &track, &scan);
        let queries = snap.counter("range.queries").unwrap_or(0);
        println!(
            "  threads={threads}: {:>8.3} ms  ({queries} batched range queries)",
            correct_ms(&snap)
        );
    }
}
