//! **Experiment E3** — the paper's headline "1.25 ms scan matching on a
//! GPU-less on-board computer": wall-clock latency of one SynPF sensor
//! update (boxed 60-beam layout, LUT range queries) as a function of the
//! particle count, plus the same measurement for the other range methods.
//!
//! Run with `cargo run -p raceloc-bench --release --bin latency`.

use raceloc_bench::test_track;
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::LaserScan;
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{BresenhamCasting, Cddt, RangeLut, RangeMethod, RayMarching};
use raceloc_sim::{Lidar, LidarSpec};
use std::time::Instant;

fn scan_at_start(track: &raceloc_map::Track) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    lidar.scan(track.start_pose(), &caster, 0.0)
}

fn measure_pf<M: RangeMethod>(
    caster: M,
    particles: usize,
    track: &raceloc_map::Track,
    scan: &LaserScan,
) -> f64 {
    let mut pf = SynPf::new(
        caster,
        SynPfConfig {
            particles,
            ..SynPfConfig::default()
        },
    );
    pf.reset(track.start_pose());
    // Warm up, then time.
    for _ in 0..3 {
        pf.correct(scan);
    }
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        pf.correct(scan);
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    println!("SynPF sensor-update latency (paper: 1.25 ms on an i5-10210U, LUT mode)");
    println!();
    let track = test_track();
    let scan = scan_at_start(&track);

    println!("LUT mode (the paper's configuration), boxed 60-beam layout:");
    for particles in [500, 1000, 1200, 2000, 4000] {
        let lut = RangeLut::new(&track.grid, 10.0, 72);
        let dt = measure_pf(lut, particles, &track, &scan);
        println!("  N={particles:>5}: {:>8.3} ms per scan update", dt * 1e3);
    }

    println!();
    println!("Range-method comparison at N=1200:");
    let dt = measure_pf(RangeLut::new(&track.grid, 10.0, 72), 1200, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "LUT", dt * 1e3);
    let dt = measure_pf(Cddt::new(&track.grid, 10.0, 180), 1200, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "CDDT", dt * 1e3);
    let dt = measure_pf(RayMarching::new(&track.grid, 10.0), 1200, &track, &scan);
    println!("  {:<22} {:>8.3} ms", "ray marching", dt * 1e3);
    let dt = measure_pf(
        BresenhamCasting::new(&track.grid, 10.0),
        1200,
        &track,
        &scan,
    );
    println!("  {:<22} {:>8.3} ms", "Bresenham", dt * 1e3);

    println!();
    println!("Threaded batch casting (the rangelibc GPU-mode substitute), N=1200, LUT:");
    for threads in [1, 2, 4, 8] {
        let lut = RangeLut::new(&track.grid, 10.0, 72);
        let mut pf = SynPf::new(
            lut,
            SynPfConfig {
                particles: 1200,
                threads,
                ..SynPfConfig::default()
            },
        );
        pf.reset(track.start_pose());
        for _ in 0..3 {
            pf.correct(&scan);
        }
        let reps = 20;
        let t0 = Instant::now();
        for _ in 0..reps {
            pf.correct(&scan);
        }
        println!(
            "  threads={threads}: {:>8.3} ms",
            t0.elapsed().as_secs_f64() / reps as f64 * 1e3
        );
    }
}
