//! **Experiment E1 — Table I** of the paper: lap time, lateral error, scan
//! alignment, and CPU load for {Cartographer, SynPF} × {high-quality,
//! low-quality} wheel odometry, 10 flying laps per cell.
//!
//! Run with `cargo run -p raceloc-bench --release --bin table1`.
//! Pass a lap count as the first argument to shorten the experiment.

use raceloc_bench::{
    build_cartographer, build_synpf, format_row, run_cell_instrumented, table_header, test_track,
    OdomSource, MU_HIGH_QUALITY, MU_LOW_QUALITY,
};
use raceloc_obs::Telemetry;

fn main() {
    let laps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    println!("Table I reproduction — {laps} flying laps per cell");
    println!("(paper: Cartographer HQ 9.167s/6.86cm, LQ 9.428s/11.43cm;");
    println!("        SynPF        HQ 9.184s/8.22cm, LQ 9.280s/7.69cm)");
    println!();
    println!("{}", table_header());

    let track = test_track();
    let mut results = Vec::new();
    // One telemetry handle shared by the world and both localizers: the
    // per-stage latency report below (Table III) is regenerated from the
    // spans recorded here, not from ad-hoc timers.
    let tel = Telemetry::enabled();
    // Cartographer consumes the stock VESC (Ackermann) odometry, SynPF the
    // IMU-fused odometry, matching the respective F1TENTH configurations
    // (DESIGN.md §5).
    for (odom, mu) in [("HQ", MU_HIGH_QUALITY), ("LQ", MU_LOW_QUALITY)] {
        let mut carto = build_cartographer(&track);
        carto.set_telemetry(tel.clone());
        let r = run_cell_instrumented(
            &mut carto,
            "Cartographer",
            odom,
            mu,
            laps,
            42,
            OdomSource::Ackermann,
            tel.clone(),
        );
        println!("{}", format_row(&r));
        results.push(r);
    }
    for (odom, mu) in [("HQ", MU_HIGH_QUALITY), ("LQ", MU_LOW_QUALITY)] {
        let mut pf = build_synpf(&track, 7);
        pf.set_telemetry(tel.clone());
        let r = run_cell_instrumented(
            &mut pf,
            "SynPF",
            odom,
            mu,
            laps,
            42,
            OdomSource::ImuFused,
            tel.clone(),
        );
        println!("{}", format_row(&r));
        results.push(r);
    }

    // The paper's headline deltas.
    let err = |m: &str, o: &str| {
        results
            .iter()
            .find(|r| r.method == m && r.odom == o)
            .map(|r| r.lateral_error_cm.mean)
            .unwrap_or(f64::NAN)
    };
    let est = |m: &str, o: &str| {
        results
            .iter()
            .find(|r| r.method == m && r.odom == o)
            .map(|r| r.est_error_cm.mean)
            .unwrap_or(f64::NAN)
    };
    let align = |m: &str, o: &str| {
        results
            .iter()
            .find(|r| r.method == m && r.odom == o)
            .map(|r| r.scan_align_pct)
            .unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "Cartographer HQ→LQ: lateral error {:+.1}% (paper +66.6%), alignment {:+.1}% (paper -11.0%)",
        100.0 * (err("Cartographer", "LQ") / err("Cartographer", "HQ") - 1.0),
        100.0 * (align("Cartographer", "LQ") / align("Cartographer", "HQ") - 1.0),
    );
    println!(
        "SynPF        HQ→LQ: lateral error {:+.1}% (paper -6.9%),  alignment {:+.1}% (paper -0.8%)",
        100.0 * (err("SynPF", "LQ") / err("SynPF", "HQ") - 1.0),
        100.0 * (align("SynPF", "LQ") / align("SynPF", "HQ") - 1.0),
    );
    println!(
        "Estimation error HQ→LQ: Cartographer {:+.1}%, SynPF {:+.1}%",
        100.0 * (est("Cartographer", "LQ") / est("Cartographer", "HQ") - 1.0),
        100.0 * (est("SynPF", "LQ") / est("SynPF", "HQ") - 1.0),
    );

    println!();
    println!("Per-stage latency over all four cells (recorded telemetry spans):");
    let snap = tel.snapshot();
    println!(
        "{:<18} {:>10} {:>11} {:>11}",
        "span", "calls", "mean [ms]", "max [ms]"
    );
    for (name, s) in snap.spans() {
        println!(
            "{:<18} {:>10} {:>11.4} {:>11.4}",
            name,
            s.count,
            s.mean_seconds() * 1e3,
            s.max_seconds * 1e3
        );
    }
    if let Some(load) = raceloc_metrics::latency::snapshot_load_percent(&snap, 40.0, 50.0) {
        println!("Span-derived closed-loop load (sim.correct@40Hz + sim.predict@50Hz): {load:.2}% of one core");
    }
}
