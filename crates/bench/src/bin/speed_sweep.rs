//! **Ablation A4 — robustness vs speed** (the paper tests "up until
//! 7.6 m/s"): estimation error of both localizers as the speed scaling
//! rises, on both grip levels.
//!
//! Run with `cargo run -p raceloc-bench --release --bin speed_sweep`.

use raceloc_bench::{
    build_cartographer, build_synpf, test_track, world_config, MU_HIGH_QUALITY, MU_LOW_QUALITY,
};
use raceloc_core::localizer::Localizer;
use raceloc_core::RunningStats;
use raceloc_sim::World;

fn run_one<L: Localizer + ?Sized>(loc: &mut L, mu: f64, speed_scale: f64) -> (f64, f64, bool) {
    let track = test_track();
    let mut cfg = world_config(mu, 42);
    cfg.pursuit.speed_scale = speed_scale;
    // Cartographer consumes Ackermann odometry in its stock configuration.
    cfg.odom.use_imu_yaw = loc.name() != "cartographer";
    let mut world = World::new(track, cfg);
    let log = world.run(loc, 30.0);
    let mut err = RunningStats::new();
    let mut vmax = 0.0f64;
    for s in &log.samples {
        err.push(s.true_pose.dist(s.est_pose));
        vmax = vmax.max(s.true_speed);
    }
    (100.0 * err.mean(), vmax, log.crashed)
}

fn main() {
    println!("Estimation error vs speed scaling (30 s runs; paper tests up to 7.6 m/s)");
    println!();
    println!(
        "{:<6} {:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "scale", "vmax", "carto HQ", "carto LQ", "synpf HQ", "synpf LQ"
    );
    let track = test_track();
    for scale in [0.5, 0.65, 0.8, 0.9, 1.0] {
        let mut cells = Vec::new();
        let mut vmax = 0.0f64;
        for (mu, carto) in [
            (MU_HIGH_QUALITY, true),
            (MU_LOW_QUALITY, true),
            (MU_HIGH_QUALITY, false),
            (MU_LOW_QUALITY, false),
        ] {
            let (err, v, crashed) = if carto {
                let mut loc = build_cartographer(&track);
                run_one(&mut loc, mu, scale)
            } else {
                let mut pf = build_synpf(&track, 7);
                run_one(&mut pf, mu, scale)
            };
            vmax = vmax.max(v);
            cells.push(if crashed {
                "CRASH".to_string()
            } else {
                format!("{err:.2} cm")
            });
        }
        println!(
            "{:<6.2} {:>6.2} | {:>12} {:>12} | {:>12} {:>12}",
            scale, vmax, cells[0], cells[1], cells[2], cells[3]
        );
    }
}
