//! **Deadline sweep** — SynPF under the deadline scheduler's budget ×
//! compute-pressure matrix (DESIGN.md §14): an uncapped reference plus
//! three per-step work-unit budgets, each against a fault-free control, a
//! mid-run budget halving, and a near-total compute cliff. Rows report
//! accuracy, ladder-rung occupancy, deadline misses, and coast steps;
//! `BENCH_deadline.json` is the checked-in artifact.
//!
//! Hard gates (exit code 1, the CI `deadline-smoke` job): non-finite or
//! crashed rows, any deadline miss outside the cliff scenario, the slack
//! budget never degrading under the halving, a capped row failing to
//! recover its fault-free rung after pressure lifts, and capped fault-free
//! accuracy drifting beyond 2× the uncapped row.
//!
//! Run with `cargo run -p raceloc-bench --release --bin deadline --
//! [--quick] [--threads N] [--out BENCH_deadline.json]`.

use raceloc_bench::deadline::{
    budget_points, pressure_scenarios, run_deadline_cell, sweep_violations, DeadlineCellConfig,
    DeadlineRow,
};
use raceloc_bench::env_threads;
use raceloc_obs::Json;

struct Args {
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: env_threads(),
        out: "BENCH_deadline.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|t| t.trim().parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (known: --quick --threads --out)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn format_row(r: &DeadlineRow) -> String {
    let occupancy: Vec<String> = r.rung_occupancy.iter().map(|c| c.to_string()).collect();
    format!(
        "{:<14} {:<9} {:>9} {:>9.2} {:>9.2} {:>6} {:>6} {:>4} {:<28} {}",
        r.scenario,
        r.budget_label,
        r.budget_units,
        r.rmse_cm,
        r.mean_lat_err_cm,
        r.misses,
        r.coast_steps,
        r.final_rung,
        occupancy.join("/"),
        if r.finite { "" } else { "NON-FINITE" }
    )
}

fn main() {
    let args = parse_args();
    let cfg = if args.quick {
        DeadlineCellConfig::quick(args.threads)
    } else {
        DeadlineCellConfig::full(args.threads)
    };
    let budgets = budget_points(&cfg);
    let scenarios = pressure_scenarios(cfg.total_steps());
    println!(
        "Deadline sweep — {} budgets × {} scenarios, {} corrections per cell \
         (full step = {} units, {} threads)",
        budgets.len(),
        scenarios.len(),
        cfg.total_steps(),
        cfg.full_step_units(),
        cfg.threads.max(1)
    );
    println!(
        "{:<14} {:<9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>4} {:<28}",
        "Scenario",
        "Budget",
        "Units",
        "RMSE[cm]",
        "Lat[cm]",
        "Miss",
        "Coast",
        "End",
        "Rung occupancy 0..5"
    );

    let mut rows = Vec::new();
    for scenario in &scenarios {
        for budget in &budgets {
            let row = run_deadline_cell(budget, scenario, &cfg);
            println!("{}", format_row(&row));
            rows.push(row);
        }
    }
    let violations = sweep_violations(&rows);

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("deadline".into())),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "config".into(),
            Json::Obj(vec![
                ("steps".into(), Json::num(cfg.total_steps() as f64)),
                ("particles".into(), Json::num(cfg.particles as f64)),
                ("duration_s".into(), Json::num(cfg.duration_s)),
                ("seed".into(), Json::num(cfg.seed as f64)),
                (
                    "full_step_units".into(),
                    Json::num(cfg.full_step_units() as f64),
                ),
            ]),
        ),
        (
            "budgets".into(),
            Json::Arr(
                budgets
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(b.label.clone())),
                            ("units".into(), Json::num(b.units as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scenarios".into(),
            Json::Arr(
                scenarios
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(s.name.clone())),
                            ("schedule".into(), s.schedule.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(DeadlineRow::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("GATE FAILURE: {v}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}
