//! **Fault matrix** — robustness of {SynPF, Cartographer, DeadReckoning}
//! under the deterministic fault catalog (DESIGN.md §12): blackout, beam
//! dropout, range miscalibration, odometry slip, stuck encoder, transport
//! latency, pose kidnap, and map corruption. Each cell reports RMSE,
//! worst-case error, recovery latency, and the fraction of corrections
//! spent in each health state; `BENCH_faults.json` is the checked-in
//! artifact.
//!
//! Hard gates (exit code 1, the CI `fault-smoke` job): any non-finite pose
//! estimate, and SynPF failing to recover to Nominal within the budget
//! after kidnap or blackout.
//!
//! Run with `cargo run -p raceloc-bench --release --bin fault_matrix --
//! [--quick] [--threads N] [--out BENCH_faults.json]`.

use raceloc_bench::env_threads;
use raceloc_bench::faults::{
    fault_catalog, row_violations, run_fault_cell, FaultCellConfig, FaultMethod, FaultRow,
};
use raceloc_obs::Json;

struct Args {
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: env_threads(),
        out: "BENCH_faults.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|t| t.trim().parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (known: --quick --threads --out)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn format_row(r: &FaultRow) -> String {
    format!(
        "{:<13} {:<15} {:>9.2} {:>9.2} {:>9} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6} {}",
        r.method,
        r.scenario,
        r.rmse_cm,
        r.max_err_cm,
        r.recovery_steps
            .map_or("never".to_string(), |s| s.to_string()),
        100.0 * r.pct_nominal,
        100.0 * r.pct_degraded,
        100.0 * r.pct_lost,
        100.0 * r.pct_recovering,
        if r.finite { "yes" } else { "NO" },
        if r.crashed { "CRASH" } else { "" }
    )
}

fn main() {
    let args = parse_args();
    let cfg = if args.quick {
        FaultCellConfig::quick(args.threads)
    } else {
        FaultCellConfig::full(args.threads)
    };
    let catalog = fault_catalog(cfg.total_steps());
    println!(
        "Fault matrix — {} scenarios × 3 localizers, {} corrections per cell ({} threads)",
        catalog.len(),
        cfg.total_steps(),
        cfg.threads.max(1)
    );
    println!(
        "{:<13} {:<15} {:>9} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Method",
        "Scenario",
        "RMSE[cm]",
        "Max[cm]",
        "Recov",
        "Nom%",
        "Deg%",
        "Lost%",
        "Rec%",
        "Finite"
    );

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for scenario in &catalog {
        for method in FaultMethod::all() {
            let row = run_fault_cell(method, scenario, &cfg);
            println!("{}", format_row(&row));
            violations.extend(row_violations(&row, scenario));
            rows.push(row);
        }
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("faults".into())),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "config".into(),
            Json::Obj(vec![
                ("steps".into(), Json::num(cfg.total_steps() as f64)),
                ("particles".into(), Json::num(cfg.particles as f64)),
                ("duration_s".into(), Json::num(cfg.duration_s)),
                ("seed".into(), Json::num(cfg.seed as f64)),
            ]),
        ),
        (
            "scenarios".into(),
            Json::Arr(
                catalog
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(s.name.clone())),
                            ("schedule".into(), s.schedule.to_json()),
                            ("measure_from".into(), Json::num(s.measure_from as f64)),
                            (
                                "recovery_budget".into(),
                                s.recovery_budget
                                    .map_or(Json::Null, |b| Json::num(b as f64)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(FaultRow::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("GATE FAILURE: {v}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}
