//! **Pipeline benchmark** — latency of the fused parallel particle
//! pipeline (DESIGN.md §11) across worker-thread counts, in the Table III
//! configuration (N = 1200 particles, boxed 60-beam layout, LUT range
//! queries), plus a hard correctness gate: the fused cast+weight kernel is
//! compared **bitwise** against the pre-fusion reference (the explicit
//! n·k expected-range matrix) and the multi-threaded filter against the
//! sequential one. Any divergence fails the run with exit code 1 — this is
//! the check CI's `bench-smoke` job executes.
//!
//! Run with `cargo run -p raceloc-bench --release --bin pipeline --
//! [--quick] [--threads 1,2,4] [--out BENCH_pipeline.json]`.

use raceloc_bench::{build_synpf_threaded, test_track, track_artifacts};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Pose2, Twist2};
use raceloc_map::Track;
use raceloc_obs::{Json, Stopwatch, Telemetry};
use raceloc_pf::resample::normalize;
use raceloc_pf::{BeamSensorModel, SynPf, SynPfConfig};
use raceloc_range::{MapArtifacts, RangeLut, RangeMethod, RayMarching};
use raceloc_sim::{Lidar, LidarSpec};
use std::sync::Arc;

struct Args {
    quick: bool,
    threads: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: vec![1, 2, 4],
        out: "BENCH_pipeline.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                let list = it.next().unwrap_or_default();
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|t| t.trim().parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .collect();
                if parsed.is_empty() {
                    eprintln!("--threads needs a comma-separated list like 1,2,4");
                    std::process::exit(2);
                }
                args.threads = parsed;
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (known: --quick --threads --out)");
                std::process::exit(2);
            }
        }
    }
    if !args.threads.contains(&1) {
        // Thread count 1 is the sequential reference every other row is
        // compared (and normalized) against.
        args.threads.insert(0, 1);
    }
    args.threads.sort_unstable();
    args.threads.dedup();
    args
}

fn scan_at_start(track: &Track) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    lidar.scan(track.start_pose(), &caster, 0.0)
}

/// The pre-fusion sensor update, kept as the bitwise reference: materialize
/// the full n·k expected-range matrix, then reduce to posterior weights
/// with exactly the filter's operation order (uniform prior × exp-shifted
/// likelihood, normalized).
fn reference_weights(
    track: &Track,
    particles: &[Pose2],
    scan: &LaserScan,
    config: &SynPfConfig,
) -> Vec<f64> {
    let caster = RangeLut::new(&track.grid, 10.0, 72);
    let sensor = BeamSensorModel::new(config.beam_model, caster.max_range());
    // Same beam policy as the fused kernel: dropped beams (non-finite
    // ranges) are skipped entirely, never scored.
    let beams: Vec<usize> = config
        .layout
        .select(scan)
        .into_iter()
        .filter(|&b| scan.ranges[b].is_finite())
        .collect();
    let n = particles.len();
    let k = beams.len();
    let mut queries = Vec::with_capacity(n * k);
    for p in particles {
        let sp = *p * config.lidar_mount;
        for &b in &beams {
            queries.push((sp.x, sp.y, sp.theta + scan.angle_of(b)));
        }
    }
    let mut expected = vec![0.0; queries.len()];
    caster.ranges_into(&queries, &mut expected);
    let mut log_w = vec![0.0; n];
    for (i, lw) in log_w.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &b) in beams.iter().enumerate() {
            acc += sensor.log_prob(expected[i * k + j], scan.ranges[b]);
        }
        *lw = acc / config.squash;
    }
    let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut w = vec![1.0 / n as f64; n];
    for (wi, lw) in w.iter_mut().zip(&log_w) {
        *wi *= (lw - max_lw).exp();
    }
    normalize(&mut w);
    w
}

/// Builds the Table III filter: resampling disabled (`ess_frac` 0) so the
/// posterior weights stay observable for the divergence gate.
fn gate_filter(track: &Track, threads: usize) -> SynPf<Arc<MapArtifacts>> {
    let config = SynPfConfig::builder()
        .particles(1200)
        .threads(threads)
        .resample_ess_frac(0.0)
        .seed(7)
        .build()
        .expect("gate config is valid");
    SynPf::from_artifacts(track_artifacts(track), config)
}

/// Max |Δweight| between the fused kernel at `threads` and the unfused
/// reference, from identical pre-correction particle sets.
fn fused_divergence(track: &Track, scan: &LaserScan, threads: usize) -> f64 {
    let mut pf = gate_filter(track, threads);
    pf.reset(track.start_pose());
    let particles = pf.particles().to_vec();
    let reference = reference_weights(track, &particles, scan, pf.config());
    pf.correct(scan);
    pf.weights()
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Full predict/correct sequence state, for cross-thread bitwise checks.
fn full_steps(track: &Track, scan: &LaserScan, threads: usize) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut pf = build_synpf_threaded(track, 3, threads);
    pf.reset(track.start_pose());
    let mut odom_pose = Pose2::IDENTITY;
    for i in 0..5 {
        odom_pose = odom_pose * Pose2::new(0.02, 0.0, 0.004);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.5, 0.0, 0.08),
            i as f64 * 0.025,
        ));
        pf.correct(scan);
    }
    (
        pf.particles().iter().map(|p| p.to_array()).collect(),
        pf.weights().to_vec(),
    )
}

struct ThreadRow {
    threads: usize,
    correct_ms_mean: f64,
    correct_ms_p50: f64,
    correct_ms_p99: f64,
    step_ms_mean: f64,
    step_ms_p50: f64,
    step_ms_p99: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times `reps` full SynPF steps (one odometry predict + one scan correct,
/// the Table III unit of work) at a thread count.
fn measure(track: &Track, scan: &LaserScan, threads: usize, reps: usize) -> ThreadRow {
    let mut pf = build_synpf_threaded(track, 3, threads);
    let tel = Telemetry::enabled();
    pf.set_telemetry(tel.clone());
    pf.reset(track.start_pose());
    let mut odom_pose = Pose2::IDENTITY;
    let mut step = |pf: &mut SynPf<Arc<MapArtifacts>>, i: usize| {
        odom_pose = odom_pose * Pose2::new(0.02, 0.0, 0.004);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.5, 0.0, 0.08),
            i as f64 * 0.025,
        ));
        pf.correct(scan);
    };
    for i in 0..(reps / 10).max(3) {
        step(&mut pf, i);
    }
    tel.reset();
    let mut step_ms = Vec::with_capacity(reps);
    for i in 0..reps {
        let t0 = Stopwatch::start();
        step(&mut pf, i);
        step_ms.push(t0.elapsed_seconds() * 1e3);
    }
    let snap = tel.snapshot();
    let (correct_mean, correct_p50, correct_p99) = match snap.histogram("pf.correct") {
        Some(h) => {
            let p = |q: f64| h.quantile_upper_bound(q).map_or(f64::NAN, |s| s * 1e3);
            let mean = snap
                .span("pf.correct")
                .map_or(f64::NAN, |s| s.mean_seconds() * 1e3);
            (mean, p(0.5), p(0.99))
        }
        None => (f64::NAN, f64::NAN, f64::NAN),
    };
    step_ms.sort_by(|a, b| a.total_cmp(b));
    ThreadRow {
        threads,
        correct_ms_mean: correct_mean,
        correct_ms_p50: correct_p50,
        correct_ms_p99: correct_p99,
        step_ms_mean: step_ms.iter().sum::<f64>() / step_ms.len().max(1) as f64,
        step_ms_p50: quantile(&step_ms, 0.5),
        step_ms_p99: quantile(&step_ms, 0.99),
    }
}

fn main() {
    let args = parse_args();
    let reps = if args.quick { 20 } else { 200 };
    println!("Fused particle-pipeline benchmark (Table III config: N=1200, boxed 60, LUT)");
    let track = test_track();
    let scan = scan_at_start(&track);

    // Correctness gate 1: fused kernel vs the unfused n·k matrix reference.
    let mut diverged = false;
    let mut max_delta = 0.0f64;
    for &threads in &args.threads {
        let delta = fused_divergence(&track, &scan, threads);
        max_delta = max_delta.max(delta);
        if delta != 0.0 {
            diverged = true;
            eprintln!("DIVERGENCE: fused weights off by {delta:e} at threads={threads}");
        }
    }
    // Correctness gate 2: full multi-threaded steps vs the sequential run.
    let sequential = full_steps(&track, &scan, 1);
    for &threads in args.threads.iter().filter(|&&t| t > 1) {
        if full_steps(&track, &scan, threads) != sequential {
            diverged = true;
            eprintln!("DIVERGENCE: full step state differs at threads={threads}");
        }
    }
    println!(
        "divergence gate: max |Δweight| = {max_delta:e} ({})",
        if diverged { "FAIL" } else { "ok" }
    );

    let rows: Vec<ThreadRow> = args
        .threads
        .iter()
        .map(|&t| measure(&track, &scan, t, reps))
        .collect();
    let base = rows.first().map_or(f64::NAN, |r| r.step_ms_mean);
    println!(
        "  {:<8} {:>12} {:>11} {:>11} {:>12} {:>11} {:>11} {:>8}",
        "threads",
        "corr mean",
        "corr p50",
        "corr p99",
        "step mean",
        "step p50",
        "step p99",
        "speedup"
    );
    for r in &rows {
        println!(
            "  {:<8} {:>10.3}ms {:>9.3}ms {:>9.3}ms {:>10.3}ms {:>9.3}ms {:>9.3}ms {:>7.2}x",
            r.threads,
            r.correct_ms_mean,
            r.correct_ms_p50,
            r.correct_ms_p99,
            r.step_ms_mean,
            r.step_ms_p50,
            r.step_ms_p99,
            base / r.step_ms_mean
        );
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("pipeline".into())),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "config".into(),
            Json::Obj(vec![
                ("particles".into(), Json::num(1200.0)),
                ("layout".into(), Json::Str("boxed60".into())),
                ("range_method".into(), Json::Str("lut".into())),
                ("reps".into(), Json::num(reps as f64)),
            ]),
        ),
        (
            "divergence".into(),
            Json::Obj(vec![
                ("bitwise_identical".into(), Json::Bool(!diverged)),
                ("max_abs_weight_delta".into(), Json::num(max_delta)),
                (
                    "threads_checked".into(),
                    Json::Arr(args.threads.iter().map(|&t| Json::num(t as f64)).collect()),
                ),
            ]),
        ),
        (
            "threads".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("threads".into(), Json::num(r.threads as f64)),
                            ("correct_ms_mean".into(), Json::num(r.correct_ms_mean)),
                            ("correct_ms_p50".into(), Json::num(r.correct_ms_p50)),
                            ("correct_ms_p99".into(), Json::num(r.correct_ms_p99)),
                            ("step_ms_mean".into(), Json::num(r.step_ms_mean)),
                            ("step_ms_p50".into(), Json::num(r.step_ms_p50)),
                            ("step_ms_p99".into(), Json::num(r.step_ms_p99)),
                            (
                                "speedup_vs_sequential".into(),
                                Json::num(base / r.step_ms_mean),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if diverged {
        std::process::exit(1);
    }
}
