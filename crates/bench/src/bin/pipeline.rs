//! **Pipeline benchmark** — latency of the fused parallel particle
//! pipeline (DESIGN.md §11) across worker-thread counts and particle
//! counts (the Table III N = 1200 configuration plus a 4000-particle
//! stress row; boxed 60-beam layout, compressed-LUT beam fans), plus a
//! hard correctness gate: the fused cast+weight kernel is compared
//! **bitwise** against the pre-fusion reference (the explicit n·k
//! expected-bin matrix, reduced in the filter's exact operation order)
//! and the multi-threaded filter against the sequential one. Any
//! divergence fails the run with exit code 1 — this is the check CI's
//! `bench-gate` job executes.
//!
//! Run with `cargo run -p raceloc-bench --release --bin pipeline --
//! [--quick] [--threads 1,2,4] [--particles 1200,4000]
//! [--out BENCH_pipeline.json]`.

use raceloc_bench::{test_track, track_artifacts};
use raceloc_core::localizer::Localizer;
use raceloc_core::sensor_data::{LaserScan, Odometry};
use raceloc_core::{Pose2, Twist2};
use raceloc_map::Track;
use raceloc_obs::{Json, Stopwatch, Telemetry};
use raceloc_pf::resample::normalize;
use raceloc_pf::{BeamSensorModel, SynPf, SynPfConfig};
use raceloc_range::{MapArtifacts, RangeMethod, RayMarching};
use raceloc_sim::{Lidar, LidarSpec};
use std::sync::Arc;

struct Args {
    quick: bool,
    threads: Vec<usize>,
    particles: Vec<usize>,
    out: String,
}

fn parse_usize_list(list: &str, flag: &str) -> Vec<usize> {
    let parsed: Vec<usize> = list
        .split(',')
        .filter_map(|t| t.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .collect();
    if parsed.is_empty() {
        eprintln!("{flag} needs a comma-separated list like 1,2,4");
        std::process::exit(2);
    }
    parsed
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: vec![1, 2, 4],
        particles: vec![1200, 4000],
        out: "BENCH_pipeline.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = parse_usize_list(&it.next().unwrap_or_default(), "--threads");
            }
            "--particles" => {
                args.particles = parse_usize_list(&it.next().unwrap_or_default(), "--particles");
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (known: --quick --threads --particles --out)"
                );
                std::process::exit(2);
            }
        }
    }
    if !args.threads.contains(&1) {
        // Thread count 1 is the sequential reference every other row is
        // compared (and normalized) against.
        args.threads.insert(0, 1);
    }
    args.threads.sort_unstable();
    args.threads.dedup();
    args.particles.sort_unstable();
    args.particles.dedup();
    args
}

fn scan_at_start(track: &Track) -> LaserScan {
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    lidar.scan(track.start_pose(), &caster, 0.0)
}

/// The pre-fusion sensor update, kept as the bitwise reference: materialize
/// the full n·k expected-bin matrix through the same public
/// [`RangeMethod::beam_bins_into`] fan the kernel uses, then reduce it to
/// posterior weights with exactly the filter's operation order (u64 code
/// accumulation → `qscale / squash` decode → uniform prior × exp-shifted
/// likelihood, normalized). The fused kernel never materializes the matrix
/// and interleaves cast and accumulation per particle chunk — that fusion
/// (and the thread-pool chunking on top of it) is what this gate pins.
fn reference_weights(
    artifacts: &MapArtifacts,
    particles: &[Pose2],
    scan: &LaserScan,
    config: &SynPfConfig,
) -> Vec<f64> {
    let sensor = BeamSensorModel::new(config.beam_model, artifacts.max_range());
    // Same beam policy as the fused kernel: dropped beams (non-finite
    // ranges) are skipped entirely, never scored.
    let beams: Vec<usize> = config
        .layout
        .select(scan)
        .into_iter()
        .filter(|&b| scan.ranges[b].is_finite())
        .collect();
    let bearings: Vec<f64> = beams.iter().map(|&b| scan.angle_of(b)).collect();
    let rows: Vec<u32> = beams
        .iter()
        .map(|&b| sensor.row_offset(scan.ranges[b]))
        .collect();
    let n = particles.len();
    let k = beams.len().max(1);
    let inv_res = sensor.inv_resolution();
    let max_bin = sensor.max_bin();
    let mount = config.lidar_mount;
    let mut matrix = vec![0u32; n * k];
    for (p, row_out) in particles.iter().zip(matrix.chunks_mut(k)) {
        // The lidar mount transform spelled exactly as the kernel spells
        // it (lane cos/sin first); `Pose2::new` keeps headings in
        // (-π, π], where its normalization is a bitwise no-op, so these
        // inputs equal the filter's SoA lanes bit-for-bit.
        let (c, s) = (p.theta.cos(), p.theta.sin());
        let sx = p.x + mount.x * c - mount.y * s;
        let sy = p.y + mount.x * s + mount.y * c;
        let st = p.theta + mount.theta;
        artifacts.beam_bins_into(sx, sy, st, &bearings, inv_res, max_bin, row_out);
    }
    let qscale = sensor.quantization_scale();
    let mut log_w = vec![0.0; n];
    for (lw, bins) in log_w.iter_mut().zip(matrix.chunks(k)) {
        let mut acc: u64 = 0;
        for (&row, &eb) in rows.iter().zip(bins) {
            acc += u64::from(sensor.code_at(row + eb));
        }
        *lw = acc as f64 * qscale / config.squash;
    }
    let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut w = vec![1.0 / n as f64; n];
    for (wi, lw) in w.iter_mut().zip(&log_w) {
        *wi *= (lw - max_lw).exp();
    }
    normalize(&mut w);
    w
}

/// Builds the benchmark filter at a particle count, sharing one artifact
/// bundle (grid + EDT + compressed LUT) across every configuration.
fn bench_filter(
    artifacts: &Arc<MapArtifacts>,
    particles: usize,
    seed: u64,
    threads: usize,
) -> SynPf<Arc<MapArtifacts>> {
    let config = SynPfConfig::builder()
        .particles(particles)
        .threads(threads)
        .seed(seed)
        .build()
        .expect("bench config is valid");
    SynPf::from_artifacts(Arc::clone(artifacts), config)
}

/// Max |Δweight| between the fused kernel at `threads` and the unfused
/// reference, from identical pre-correction particle sets. Resampling is
/// disabled (`ess_frac` 0) so the posterior weights stay observable.
fn fused_divergence(
    artifacts: &Arc<MapArtifacts>,
    track: &Track,
    scan: &LaserScan,
    particles: usize,
    threads: usize,
) -> f64 {
    let config = SynPfConfig::builder()
        .particles(particles)
        .threads(threads)
        .resample_ess_frac(0.0)
        .seed(7)
        .build()
        .expect("gate config is valid");
    let mut pf = SynPf::from_artifacts(Arc::clone(artifacts), config);
    pf.reset(track.start_pose());
    let cloud = pf.particles().to_vec();
    let reference = reference_weights(artifacts, &cloud, scan, pf.config());
    pf.correct(scan);
    pf.weights()
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Full predict/correct sequence state, for cross-thread bitwise checks.
fn full_steps(
    artifacts: &Arc<MapArtifacts>,
    track: &Track,
    scan: &LaserScan,
    particles: usize,
    threads: usize,
) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut pf = bench_filter(artifacts, particles, 3, threads);
    pf.reset(track.start_pose());
    let mut odom_pose = Pose2::IDENTITY;
    for i in 0..5 {
        odom_pose = odom_pose * Pose2::new(0.02, 0.0, 0.004);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.5, 0.0, 0.08),
            i as f64 * 0.025,
        ));
        pf.correct(scan);
    }
    (
        pf.particles().iter().map(|p| p.to_array()).collect(),
        pf.weights().to_vec(),
    )
}

struct ThreadRow {
    threads: usize,
    correct_ms_mean: f64,
    correct_ms_p50: f64,
    correct_ms_p99: f64,
    step_ms_mean: f64,
    step_ms_p50: f64,
    step_ms_p99: f64,
}

struct Run {
    particles: usize,
    bitwise_identical: bool,
    max_abs_weight_delta: f64,
    rows: Vec<ThreadRow>,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times `reps` full SynPF steps (one odometry predict + one scan correct,
/// the Table III unit of work) at a particle count and thread count.
fn measure(
    artifacts: &Arc<MapArtifacts>,
    track: &Track,
    scan: &LaserScan,
    particles: usize,
    threads: usize,
    reps: usize,
) -> ThreadRow {
    let mut pf = bench_filter(artifacts, particles, 3, threads);
    let tel = Telemetry::enabled();
    pf.set_telemetry(tel.clone());
    pf.reset(track.start_pose());
    let mut odom_pose = Pose2::IDENTITY;
    let mut step = |pf: &mut SynPf<Arc<MapArtifacts>>, i: usize| {
        odom_pose = odom_pose * Pose2::new(0.02, 0.0, 0.004);
        pf.predict(&Odometry::new(
            odom_pose,
            Twist2::new(0.5, 0.0, 0.08),
            i as f64 * 0.025,
        ));
        pf.correct(scan);
    };
    for i in 0..(reps / 10).max(3) {
        step(&mut pf, i);
    }
    tel.reset();
    let mut step_ms = Vec::with_capacity(reps);
    for i in 0..reps {
        let t0 = Stopwatch::start();
        step(&mut pf, i);
        step_ms.push(t0.elapsed_seconds() * 1e3);
    }
    let snap = tel.snapshot();
    let (correct_mean, correct_p50, correct_p99) = match snap.histogram("pf.correct") {
        Some(h) => {
            let p = |q: f64| h.quantile_upper_bound(q).map_or(f64::NAN, |s| s * 1e3);
            let mean = snap
                .span("pf.correct")
                .map_or(f64::NAN, |s| s.mean_seconds() * 1e3);
            (mean, p(0.5), p(0.99))
        }
        None => (f64::NAN, f64::NAN, f64::NAN),
    };
    step_ms.sort_by(|a, b| a.total_cmp(b));
    ThreadRow {
        threads,
        correct_ms_mean: correct_mean,
        correct_ms_p50: correct_p50,
        correct_ms_p99: correct_p99,
        step_ms_mean: step_ms.iter().sum::<f64>() / step_ms.len().max(1) as f64,
        step_ms_p50: quantile(&step_ms, 0.5),
        step_ms_p99: quantile(&step_ms, 0.99),
    }
}

fn main() {
    let args = parse_args();
    let reps = if args.quick { 20 } else { 200 };
    println!("Fused particle-pipeline benchmark (boxed 60, compressed LUT)");
    let track = test_track();
    let artifacts = track_artifacts(&track);
    let scan = scan_at_start(&track);

    let mut diverged = false;
    let mut runs = Vec::new();
    for &n in &args.particles {
        // Correctness gate 1: fused kernel vs the unfused n·k matrix
        // reference, at every thread count.
        let mut max_delta = 0.0f64;
        let mut identical = true;
        for &threads in &args.threads {
            let delta = fused_divergence(&artifacts, &track, &scan, n, threads);
            max_delta = max_delta.max(delta);
            if delta != 0.0 {
                identical = false;
                eprintln!("DIVERGENCE: fused weights off by {delta:e} at N={n} threads={threads}");
            }
        }
        // Correctness gate 2: full multi-threaded steps vs the sequential
        // run.
        let sequential = full_steps(&artifacts, &track, &scan, n, 1);
        for &threads in args.threads.iter().filter(|&&t| t > 1) {
            if full_steps(&artifacts, &track, &scan, n, threads) != sequential {
                identical = false;
                eprintln!("DIVERGENCE: full step state differs at N={n} threads={threads}");
            }
        }
        diverged |= !identical;
        println!(
            "N={n}: divergence gate max |Δweight| = {max_delta:e} ({})",
            if identical { "ok" } else { "FAIL" }
        );

        let rows: Vec<ThreadRow> = args
            .threads
            .iter()
            .map(|&t| measure(&artifacts, &track, &scan, n, t, reps))
            .collect();
        let base = rows.first().map_or(f64::NAN, |r| r.step_ms_mean);
        println!(
            "  {:<8} {:>12} {:>11} {:>11} {:>12} {:>11} {:>11} {:>8}",
            "threads",
            "corr mean",
            "corr p50",
            "corr p99",
            "step mean",
            "step p50",
            "step p99",
            "speedup"
        );
        for r in &rows {
            println!(
                "  {:<8} {:>10.3}ms {:>9.3}ms {:>9.3}ms {:>10.3}ms {:>9.3}ms {:>9.3}ms {:>7.2}x",
                r.threads,
                r.correct_ms_mean,
                r.correct_ms_p50,
                r.correct_ms_p99,
                r.step_ms_mean,
                r.step_ms_p50,
                r.step_ms_p99,
                base / r.step_ms_mean
            );
        }
        runs.push(Run {
            particles: n,
            bitwise_identical: identical,
            max_abs_weight_delta: max_delta,
            rows,
        });
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("pipeline".into())),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "config".into(),
            Json::Obj(vec![
                ("layout".into(), Json::Str("boxed60".into())),
                ("range_method".into(), Json::Str("compressed_lut".into())),
                ("reps".into(), Json::num(reps as f64)),
                (
                    "threads_checked".into(),
                    Json::Arr(args.threads.iter().map(|&t| Json::num(t as f64)).collect()),
                ),
            ]),
        ),
        (
            "runs".into(),
            Json::Arr(
                runs.iter()
                    .map(|run| {
                        let base = run.rows.first().map_or(f64::NAN, |r| r.step_ms_mean);
                        Json::Obj(vec![
                            ("particles".into(), Json::num(run.particles as f64)),
                            (
                                "divergence".into(),
                                Json::Obj(vec![
                                    (
                                        "bitwise_identical".into(),
                                        Json::Bool(run.bitwise_identical),
                                    ),
                                    (
                                        "max_abs_weight_delta".into(),
                                        Json::num(run.max_abs_weight_delta),
                                    ),
                                ]),
                            ),
                            (
                                "threads".into(),
                                Json::Arr(
                                    run.rows
                                        .iter()
                                        .map(|r| {
                                            Json::Obj(vec![
                                                ("threads".into(), Json::num(r.threads as f64)),
                                                (
                                                    "correct_ms_mean".into(),
                                                    Json::num(r.correct_ms_mean),
                                                ),
                                                (
                                                    "correct_ms_p50".into(),
                                                    Json::num(r.correct_ms_p50),
                                                ),
                                                (
                                                    "correct_ms_p99".into(),
                                                    Json::num(r.correct_ms_p99),
                                                ),
                                                ("step_ms_mean".into(), Json::num(r.step_ms_mean)),
                                                ("step_ms_p50".into(), Json::num(r.step_ms_p50)),
                                                ("step_ms_p99".into(), Json::num(r.step_ms_p99)),
                                                (
                                                    "speedup_vs_sequential".into(),
                                                    Json::num(base / r.step_ms_mean),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if diverged {
        std::process::exit(1);
    }
}
