#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Shared experiment infrastructure for the paper-reproduction harness.
//!
//! Every binary in this crate regenerates one table or figure of
//! *"Robustness Evaluation of Localization Techniques for Autonomous
//! Racing"* (DATE 2024); see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results.

pub mod deadline;
pub mod faults;
pub mod fleet;

use raceloc_core::localizer::Localizer;
use raceloc_core::{Pose2, RunningStats, Summary};
use raceloc_map::{Track, TrackShape, TrackSpec};
use raceloc_metrics::alignment::ScanAlignmentScorer;
use raceloc_metrics::error::lateral_deviations;
use raceloc_metrics::lap::lap_times;
use raceloc_metrics::latency;
use raceloc_obs::Telemetry;
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{ArtifactParams, MapArtifacts};
use raceloc_sim::{World, WorldConfig};
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig};
use std::sync::Arc;

/// The paper-scale test track used by all closed-loop experiments: a
/// rounded-rectangle corridor circuit comparable to the paper's tennis-hall
/// track (raceline ≈ 35 m, lap times in the 9–11 s range at the default
/// speed scaling).
pub fn test_track() -> Track {
    TrackSpec::new(TrackShape::RandomFourier {
        seed: 33,
        mean_radius: 6.0,
        amplitude: 0.26,
        harmonics: 4,
    })
    .half_width(1.25)
    .resolution(0.05)
    .build()
}

/// Friction coefficient of the nominal, grippy surface (26 N lateral pull
/// in the paper's measurement).
pub const MU_HIGH_QUALITY: f64 = 1.0;
/// Friction with taped tires: scaled by the paper's 19 N / 26 N pull ratio.
pub const MU_LOW_QUALITY: f64 = 19.0 / 26.0;

/// Builds the closed-loop world configuration for a grip level.
///
/// The simulator's own ray casting honors [`env_threads`], which cannot
/// change any result (scans are bit-identical for every thread count,
/// rule R3) — only the wall-clock time of regenerating a table.
pub fn world_config(mu: f64, seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::default();
    cfg.vehicle.mu = mu;
    cfg.seed = seed;
    cfg.threads = env_threads();
    cfg
}

/// Worker-thread count for the experiment harnesses, taken from the
/// `RACELOC_THREADS` environment variable (default 1).
///
/// Every parallel path in the workspace is bit-identical across thread
/// counts (DESIGN.md §11), so this knob only trades wall-clock time; the
/// regenerated tables never change.
pub fn env_threads() -> usize {
    parse_threads(std::env::var("RACELOC_THREADS").ok().as_deref())
}

/// Parses a thread-count override; `None`, empty, zero, or garbage → 1.
fn parse_threads(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// Odometry source for an algorithm's run (DESIGN.md §5): the F1TENTH
/// Cartographer configuration consumes the VESC's Ackermann odometry
/// (`ω = v·tanδ/L`, blind to slip angles), while the TUM particle filter
/// fuses the IMU gyro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OdomSource {
    /// Wheel speed + IMU gyro yaw (SynPF / TUM PF input).
    ImuFused,
    /// Wheel speed + Ackermann steering yaw (stock VESC odometry).
    Ackermann,
}

/// Builds the shared artifact bundle (grid + EDT + lazy LUT) for a track
/// at the paper's range parameters (10 m, 72 θ-bins). Clone the `Arc` to
/// share one build between several localizer instances.
pub fn track_artifacts(track: &Track) -> Arc<MapArtifacts> {
    Arc::new(MapArtifacts::build(&track.grid, ArtifactParams::default()))
}

/// Builds the paper-configuration SynPF (LUT range queries, boxed layout,
/// TUM motion model) for a track, on [`env_threads`] worker threads.
pub fn build_synpf(track: &Track, seed: u64) -> SynPf<Arc<MapArtifacts>> {
    build_synpf_threaded(track, seed, env_threads())
}

/// [`build_synpf`] with an explicit worker-thread count for the fused
/// particle pipeline (results are identical for every value).
pub fn build_synpf_threaded(track: &Track, seed: u64, threads: usize) -> SynPf<Arc<MapArtifacts>> {
    let config = SynPfConfig::builder()
        .seed(seed)
        .threads(threads.max(1))
        .build()
        .expect("paper configuration is valid");
    SynPf::from_artifacts(track_artifacts(track), config)
}

/// Builds the Cartographer pure-localization baseline for a track.
pub fn build_cartographer(track: &Track) -> CartoLocalizer {
    CartoLocalizer::from_artifacts(&track_artifacts(track), CartoLocalizerConfig::default())
}

/// The Table I measurements of one (algorithm × odometry-quality) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Algorithm name.
    pub method: String,
    /// `"HQ"` or `"LQ"`.
    pub odom: String,
    /// Lap-time summary over the completed laps \[s\].
    pub lap_time: Summary,
    /// Lateral deviation of the driven trajectory from the raceline \[cm\].
    pub lateral_error_cm: Summary,
    /// Scan-alignment percentage (0–100).
    pub scan_align_pct: f64,
    /// CPU-load proxy: percent of one core (correction + prediction).
    pub load_pct: f64,
    /// Mean scan-correction latency \[ms\].
    pub correct_ms: f64,
    /// Number of completed laps measured.
    pub laps: usize,
    /// Whether the run ended in a crash.
    pub crashed: bool,
    /// Mean translation error of the pose estimate vs ground truth \[cm\].
    pub est_error_cm: Summary,
}

/// Runs one closed-loop cell: `laps` timed laps (plus a warm-up lap that is
/// discarded) with the given localizer on the given grip level.
pub fn run_cell<L: Localizer + ?Sized>(
    localizer: &mut L,
    method: &str,
    odom_label: &str,
    mu: f64,
    laps: usize,
    seed: u64,
) -> CellResult {
    run_cell_with_odom(
        localizer,
        method,
        odom_label,
        mu,
        laps,
        seed,
        OdomSource::ImuFused,
    )
}

/// [`run_cell`] with an explicit odometry source.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_with_odom<L: Localizer + ?Sized>(
    localizer: &mut L,
    method: &str,
    odom_label: &str,
    mu: f64,
    laps: usize,
    seed: u64,
    odom_source: OdomSource,
) -> CellResult {
    run_cell_instrumented(
        localizer,
        method,
        odom_label,
        mu,
        laps,
        seed,
        odom_source,
        Telemetry::disabled(),
    )
}

/// [`run_cell_with_odom`] with a telemetry handle installed into the world,
/// so the loop's `sim.predict` / `sim.correct` spans land next to whatever
/// the localizer records into the same handle (install it there too via the
/// concrete type's `set_telemetry`). This is how the Table III latency
/// numbers are regenerated from recorded spans.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_instrumented<L: Localizer + ?Sized>(
    localizer: &mut L,
    method: &str,
    odom_label: &str,
    mu: f64,
    laps: usize,
    seed: u64,
    odom_source: OdomSource,
    tel: Telemetry,
) -> CellResult {
    let track = test_track();
    let mut cfg = world_config(mu, seed);
    cfg.odom.use_imu_yaw = odom_source == OdomSource::ImuFused;
    let mut world = World::new(track, cfg);
    world.set_telemetry(tel);
    // Generous wall-clock budget: warm-up + laps at ≈8–12 s per lap.
    let duration = 14.0 * (laps + 2) as f64;
    let log = world.run(localizer, duration);

    let trace: Vec<(f64, Pose2)> = log.samples.iter().map(|s| (s.stamp, s.true_pose)).collect();
    let raceline = &world.track().raceline;
    let all_laps = lap_times(&trace, raceline);
    // Discard the standing-start lap; keep up to `laps` flying laps.
    let timed: Vec<f64> = all_laps.iter().skip(1).take(laps).copied().collect();
    let lap_time = timed.iter().copied().collect::<RunningStats>().summary();

    // Lateral deviation measured per flying lap (matching the per-lap error
    // statistics of Table I): mean deviation within each lap is one sample.
    let first_timed_start: f64 = all_laps.first().copied().unwrap_or(0.0);
    let mut per_lap = RunningStats::new();
    if !timed.is_empty() {
        let mut lap_bounds = vec![first_timed_start];
        let mut acc = first_timed_start;
        for lt in &timed {
            acc += lt;
            lap_bounds.push(acc);
        }
        // Times are lap durations from the trace start; convert to stamps.
        let t0 = trace.first().map(|s| s.0).unwrap_or(0.0);
        for w in lap_bounds.windows(2) {
            let poses: Vec<Pose2> = log
                .samples
                .iter()
                .filter(|s| s.stamp - t0 >= w[0] && s.stamp - t0 < w[1])
                .map(|s| s.true_pose)
                .collect();
            let devs = lateral_deviations(&poses, raceline);
            if !devs.is_empty() {
                per_lap.push(100.0 * devs.iter().sum::<f64>() / devs.len() as f64);
            }
        }
    }

    // Scan alignment over the logged scan subsample (estimated poses).
    // Strict tolerance (one map cell + noise): the paper's alignment scores
    // live in the 60–80% band, not at saturation.
    let scorer = ScanAlignmentScorer::new(&world.track().grid, 0.06, world.config().lidar.mount);
    let scan_align_pct =
        scorer.mean_percentage(log.scans.iter().map(|(_, pose, scan)| (*pose, scan)));

    // Pose-estimate error (truth vs estimate) over the timed window.
    let est_error_cm = log
        .samples
        .iter()
        .map(|s| 100.0 * s.true_pose.dist(s.est_pose))
        .collect::<RunningStats>()
        .summary();

    let correct_ms = log.mean_correct_seconds() * 1e3;
    let predict_mean = if log.predict_calls > 0 {
        log.predict_seconds_total / log.predict_calls as f64
    } else {
        0.0
    };
    let load_pct = latency::combined_load_percent(
        log.mean_correct_seconds(),
        world.config().lidar_hz,
        predict_mean,
        world.config().odom_hz,
    );

    CellResult {
        method: method.to_string(),
        odom: odom_label.to_string(),
        lap_time,
        lateral_error_cm: per_lap.summary(),
        scan_align_pct,
        load_pct,
        correct_ms,
        laps: timed.len(),
        crashed: log.crashed,
        est_error_cm,
    }
}

/// Formats a [`CellResult`] as one row of the Table I layout.
pub fn format_row(r: &CellResult) -> String {
    format!(
        "{:<13} {:<4} {:>8.3} {:>7.3} {:>8.3} {:>7.3} {:>8.2} {:>7.2} {:>9.2} {:>6.2} {:>8.2} {:>5} {}",
        r.method,
        r.odom,
        r.lap_time.mean,
        r.lap_time.std,
        r.lateral_error_cm.mean,
        r.lateral_error_cm.std,
        r.est_error_cm.mean,
        r.est_error_cm.std,
        r.scan_align_pct,
        r.load_pct,
        r.correct_ms,
        r.laps,
        if r.crashed { "CRASH" } else { "" }
    )
}

/// The Table I header matching [`format_row`].
pub fn table_header() -> String {
    format!(
        "{:<13} {:<4} {:>8} {:>7} {:>8} {:>7} {:>8} {:>7} {:>9} {:>6} {:>8} {:>5}",
        "Method",
        "Odom",
        "LapT[s]",
        "σ",
        "Err[cm]",
        "σ",
        "Est[cm]",
        "σ",
        "Align[%]",
        "Load%",
        "Corr[ms]",
        "Laps"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_track_has_paper_scale() {
        let t = test_track();
        let len = t.raceline.total_length();
        assert!((30.0..50.0).contains(&len), "raceline {len} m");
        assert!(t.is_free(t.start_pose().translation()));
    }

    #[test]
    fn grip_constants_preserve_pull_ratio() {
        assert!((MU_LOW_QUALITY / MU_HIGH_QUALITY - 19.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn world_config_sets_grip_and_seed() {
        let cfg = world_config(0.8, 123);
        assert_eq!(cfg.vehicle.mu, 0.8);
        assert_eq!(cfg.seed, 123);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn thread_override_parses_defensively() {
        assert_eq!(parse_threads(None), 1);
        assert_eq!(parse_threads(Some("")), 1);
        assert_eq!(parse_threads(Some("0")), 1);
        assert_eq!(parse_threads(Some("junk")), 1);
        assert_eq!(parse_threads(Some("4")), 4);
        assert_eq!(parse_threads(Some(" 2 ")), 2);
    }

    #[test]
    fn threaded_builder_matches_default_builder_output() {
        let t = test_track();
        let a = build_synpf_threaded(&t, 1, 1);
        let b = build_synpf_threaded(&t, 1, 4);
        assert_eq!(a.particles(), b.particles());
        assert_eq!(b.config().threads, 4);
    }

    #[test]
    fn row_formatting_is_stable() {
        let r = CellResult {
            method: "Test".into(),
            odom: "HQ".into(),
            lap_time: raceloc_core::Summary {
                count: 3,
                mean: 8.5,
                std: 0.1,
                min: 8.4,
                max: 8.6,
            },
            lateral_error_cm: raceloc_core::Summary::default(),
            scan_align_pct: 99.5,
            load_pct: 6.5,
            correct_ms: 1.3,
            laps: 3,
            crashed: false,
            est_error_cm: raceloc_core::Summary::default(),
        };
        let row = format_row(&r);
        assert!(row.contains("Test"));
        assert!(row.contains("8.500"));
        assert!(!row.contains("CRASH"));
        assert_eq!(
            table_header().split_whitespace().count(),
            12,
            "header column count"
        );
    }

    #[test]
    fn builders_construct() {
        let t = test_track();
        let pf = build_synpf(&t, 1);
        assert!(pf.particles().len() > 100);
        let carto = build_cartographer(&t);
        assert!(carto.config().max_points > 0);
    }
}
