//! Fault-matrix infrastructure (DESIGN.md §12): the fault catalog, one
//! (localizer × fault-scenario) closed-loop cell, and the deterministic
//! result row the `fault_matrix` binary serializes into
//! `BENCH_faults.json`.
//!
//! Every cell runs under **oracle control** (the car drives on ground
//! truth) so the trajectory — and therefore the fault exposure — is
//! identical for every localizer; the rows measure pure localization
//! robustness, not controller interaction. Rows contain no wall-clock
//! fields, so a row is bit-identical for every `threads` value (rule R3;
//! `crates/bench/tests/fault_determinism.rs` enforces this).

use crate::{test_track, world_config, MU_HIGH_QUALITY};
use raceloc_core::localizer::DeadReckoning;
use raceloc_core::Health;
use raceloc_faults::{FaultSchedule, MapRegion};
use raceloc_obs::Json;
use raceloc_pf::{HealthPolicy, RecoveryConfig, SynPf, SynPfConfig};
use raceloc_sim::{SimLog, World};
use raceloc_slam::{CartoLocalizer, CartoLocalizerConfig, SlamHealthPolicy};

/// One entry of the fault catalog: a schedule plus how to score recovery.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Stable scenario identifier (used as the JSON row key).
    pub name: String,
    /// The deterministic fault script.
    pub schedule: FaultSchedule,
    /// Correction step from which recovery latency is measured (the fault's
    /// end for windowed faults, its onset for one-shot faults).
    pub measure_from: u64,
    /// Steps within which the health-monitored SynPF must return to
    /// [`Health::Nominal`] (`None`: recovery is reported but not gated).
    pub recovery_budget: Option<u64>,
}

/// The localizers of the fault matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMethod {
    /// Health-monitored SynPF with augmented-MCL recovery + auto re-init.
    SynPf,
    /// Cartographer pure localization with match-score health monitoring.
    Cartographer,
    /// Dead reckoning — the no-correction baseline (health is always
    /// Nominal: it has no detector and no notion of divergence).
    DeadReckoning,
}

impl FaultMethod {
    /// All matrix methods, in report order.
    pub fn all() -> [FaultMethod; 3] {
        [
            FaultMethod::SynPf,
            FaultMethod::Cartographer,
            FaultMethod::DeadReckoning,
        ]
    }

    /// The row label.
    pub fn name(&self) -> &'static str {
        match self {
            FaultMethod::SynPf => "SynPF",
            FaultMethod::Cartographer => "Cartographer",
            FaultMethod::DeadReckoning => "DeadReckoning",
        }
    }
}

/// Sizing of one fault cell.
#[derive(Debug, Clone, Copy)]
pub struct FaultCellConfig {
    /// Worker threads for the simulator and the particle pipeline (cannot
    /// change any row content — rule R3).
    pub threads: usize,
    /// SynPF particle count.
    pub particles: usize,
    /// Simulated run length \[s\] (40 scan corrections per second).
    pub duration_s: f64,
    /// World noise seed.
    pub seed: u64,
}

impl FaultCellConfig {
    /// The full checked-in-matrix configuration: 24 s ≈ 960 corrections.
    pub fn full(threads: usize) -> Self {
        Self {
            threads,
            particles: 1200,
            duration_s: 24.0,
            seed: 42,
        }
    }

    /// The CI smoke configuration: 8 s ≈ 320 corrections.
    pub fn quick(threads: usize) -> Self {
        Self {
            threads,
            particles: 600,
            duration_s: 8.0,
            seed: 42,
        }
    }

    /// Scan corrections this configuration produces (the catalog's clock).
    pub fn total_steps(&self) -> u64 {
        (self.duration_s * 40.0).round() as u64
    }
}

/// Builds the fault catalog for a run of `total_steps` scan corrections:
/// a nominal control plus nine single-fault scenarios, each mapped to a
/// physical failure (DESIGN.md §12). Windows scale with the run length so
/// `--quick` exercises the same catalog on a compressed timeline.
///
/// # Panics
///
/// Panics when `total_steps` is too short to place the windows (< 80).
pub fn fault_catalog(total_steps: u64) -> Vec<FaultScenario> {
    assert!(total_steps >= 80, "need at least 80 corrections");
    let onset = total_steps / 4;
    let span = total_steps / 5;
    let end = onset + span;
    let blackout_len = (total_steps / 16).max(8);
    let mid = total_steps / 2;
    let budget = (total_steps / 4).clamp(40, 160);
    let seed = 0xFA57;

    // Phantom obstacle: a 0.8 m box squarely on the raceline, far enough
    // around the lap that the car passes it mid-window.
    let track = test_track();
    let p = track.raceline.point_at(0.3 * track.raceline.total_length());
    let region = MapRegion {
        x0: p.x - 0.4,
        y0: p.y - 0.4,
        x1: p.x + 0.4,
        y1: p.y + 0.4,
    };

    let build =
        |b: raceloc_faults::FaultScheduleBuilder| b.build().expect("catalog schedules are valid");
    vec![
        FaultScenario {
            name: "nominal".into(),
            schedule: build(FaultSchedule::builder().seed(seed)),
            measure_from: 0,
            recovery_budget: None,
        },
        FaultScenario {
            // Sun glare / dust cloud: the sensor sees nothing for a while.
            name: "lidar_blackout".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .lidar_blackout(onset, onset + blackout_len),
            ),
            measure_from: onset + blackout_len,
            recovery_budget: Some(budget),
        },
        FaultScenario {
            // Rain / reflective surfaces: most beams return nothing.
            name: "beam_dropout".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .beam_dropout(onset, end, 0.75),
            ),
            measure_from: end,
            recovery_budget: None,
        },
        FaultScenario {
            // Miscalibrated sensor swap: constant additive range offset.
            name: "range_bias".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .range_bias(onset, end, 0.30),
            ),
            measure_from: end,
            recovery_budget: None,
        },
        FaultScenario {
            // Wrong beam-divergence compensation: multiplicative error.
            name: "range_scale".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .range_scale(onset, end, 1.06),
            ),
            measure_from: end,
            recovery_budget: None,
        },
        FaultScenario {
            // Wheelspin burst: encoders over-count by 80%.
            name: "odom_slip".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .odom_slip(onset, end, 1.8),
            ),
            measure_from: end,
            recovery_budget: None,
        },
        FaultScenario {
            // Encoder cable failure: speed + steering feedback freeze.
            name: "stuck_encoder".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .stuck_encoder(onset, onset + span / 2),
            ),
            measure_from: onset + span / 2,
            recovery_budget: None,
        },
        FaultScenario {
            // Transport congestion: scans arrive 8 corrections (200 ms)
            // late — past the stale-rejection threshold.
            name: "latency".into(),
            schedule: build(FaultSchedule::builder().seed(seed).latency(
                onset,
                onset + span / 2,
                8,
            )),
            measure_from: onset + span / 2,
            recovery_budget: None,
        },
        FaultScenario {
            // Kidnap-grade collision: the car is suddenly 6 m down-track.
            name: "pose_kidnap".into(),
            schedule: build(FaultSchedule::builder().seed(seed).pose_kidnap(mid, 6.0)),
            measure_from: mid,
            recovery_budget: Some(budget),
        },
        FaultScenario {
            // Unmapped obstacle: scans hit geometry the map does not have.
            name: "map_corruption".into(),
            schedule: build(
                FaultSchedule::builder()
                    .seed(seed)
                    .map_corruption(onset, end, region),
            ),
            measure_from: end,
            recovery_budget: None,
        },
    ]
}

/// One deterministic row of `BENCH_faults.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Localizer label.
    pub method: String,
    /// Scenario name.
    pub scenario: String,
    /// Scan corrections actually run.
    pub steps: usize,
    /// RMSE of the translation error over the whole run \[cm\].
    pub rmse_cm: f64,
    /// Worst translation error \[cm\].
    pub max_err_cm: f64,
    /// Corrections from `measure_from` until health settles at Nominal for
    /// the remainder of the run — 0 when the detector never left Nominal,
    /// `None` when the run ends still non-Nominal. Measured against the
    /// *last* non-Nominal step so a detector that fires a few corrections
    /// after a kidnap cannot report a spurious instant recovery.
    pub recovery_steps: Option<u64>,
    /// Fraction of corrections spent in each health state (sums to 1).
    pub pct_nominal: f64,
    /// See [`FaultRow::pct_nominal`].
    pub pct_degraded: f64,
    /// See [`FaultRow::pct_nominal`].
    pub pct_lost: f64,
    /// See [`FaultRow::pct_nominal`].
    pub pct_recovering: f64,
    /// Whether the ground-truth run aborted in a crash.
    pub crashed: bool,
    /// Whether every pose estimate was finite.
    pub finite: bool,
}

impl FaultRow {
    /// Serializes the row (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("method".into(), Json::Str(self.method.clone())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("steps".into(), Json::num(self.steps as f64)),
            ("rmse_cm".into(), Json::num(self.rmse_cm)),
            ("max_err_cm".into(), Json::num(self.max_err_cm)),
            (
                "recovery_steps".into(),
                self.recovery_steps
                    .map_or(Json::Null, |s| Json::num(s as f64)),
            ),
            ("pct_nominal".into(), Json::num(self.pct_nominal)),
            ("pct_degraded".into(), Json::num(self.pct_degraded)),
            ("pct_lost".into(), Json::num(self.pct_lost)),
            ("pct_recovering".into(), Json::num(self.pct_recovering)),
            ("crashed".into(), Json::Bool(self.crashed)),
            ("finite".into(), Json::Bool(self.finite)),
        ])
    }
}

/// Runs one (method × scenario) cell and reduces it to a [`FaultRow`].
pub fn run_fault_cell(
    method: FaultMethod,
    scenario: &FaultScenario,
    cfg: &FaultCellConfig,
) -> FaultRow {
    let track = test_track();
    let mut wcfg = world_config(MU_HIGH_QUALITY, cfg.seed);
    wcfg.threads = cfg.threads.max(1);
    let mut world = World::new(test_track(), wcfg);
    if !scenario.schedule.is_empty() {
        world.set_fault_schedule(scenario.schedule.clone());
    }
    let log = match method {
        FaultMethod::SynPf => {
            let artifacts = crate::track_artifacts(&track);
            let config = SynPfConfig::builder()
                .particles(cfg.particles)
                .threads(cfg.threads.max(1))
                .seed(7)
                .recovery(RecoveryConfig::default())
                .health(HealthPolicy::default())
                .build()
                .expect("fault-cell SynPF configuration is valid");
            let mut pf = SynPf::from_artifacts(artifacts, config);
            pf.enable_recovery(&track.grid);
            world.run_with_oracle_control(&mut pf, cfg.duration_s)
        }
        FaultMethod::Cartographer => {
            let config = CartoLocalizerConfig {
                health: Some(SlamHealthPolicy::default()),
                ..CartoLocalizerConfig::default()
            };
            let mut carto = CartoLocalizer::from_artifacts(&crate::track_artifacts(&track), config);
            world.run_with_oracle_control(&mut carto, cfg.duration_s)
        }
        FaultMethod::DeadReckoning => {
            let mut dr = DeadReckoning::new();
            world.run_with_oracle_control(&mut dr, cfg.duration_s)
        }
    };
    summarize(method, scenario, &log)
}

/// Reduces one run log to its deterministic row.
fn summarize(method: FaultMethod, scenario: &FaultScenario, log: &SimLog) -> FaultRow {
    let n = log.samples.len();
    let mut sq = 0.0;
    let mut max_err = 0.0f64;
    let mut finite = true;
    let mut counts = [0usize; 4];
    for s in &log.samples {
        if !(s.est_pose.x.is_finite() && s.est_pose.y.is_finite() && s.est_pose.theta.is_finite()) {
            finite = false;
        }
        let e = s.true_pose.dist(s.est_pose);
        sq += e * e;
        max_err = max_err.max(e);
        counts[match s.health {
            Health::Nominal => 0,
            Health::Degraded => 1,
            Health::Lost => 2,
            Health::Recovering => 3,
        }] += 1;
    }
    let denom = n.max(1) as f64;
    let measure_from = scenario.measure_from as usize;
    let last_bad = log
        .samples
        .iter()
        .enumerate()
        .skip(measure_from)
        .filter(|(_, s)| s.health != Health::Nominal)
        .map(|(i, _)| i)
        .next_back();
    let recovery_steps = match last_bad {
        None => Some(0),
        Some(i) if i + 1 < n => Some((i + 1 - measure_from) as u64),
        Some(_) => None,
    };
    FaultRow {
        method: method.name().to_string(),
        scenario: scenario.name.clone(),
        steps: n,
        rmse_cm: 100.0 * (sq / denom).sqrt(),
        max_err_cm: 100.0 * max_err,
        recovery_steps,
        pct_nominal: counts[0] as f64 / denom,
        pct_degraded: counts[1] as f64 / denom,
        pct_lost: counts[2] as f64 / denom,
        pct_recovering: counts[3] as f64 / denom,
        crashed: log.crashed,
        finite,
    }
}

/// The hard gate the `fault-smoke` CI job enforces on one row: non-finite
/// poses fail everywhere; a health-monitored SynPF additionally must
/// recover to Nominal within the scenario's budget (the "stuck in Lost"
/// check of DESIGN.md §12).
pub fn row_violations(row: &FaultRow, scenario: &FaultScenario) -> Vec<String> {
    let mut out = Vec::new();
    if !row.finite {
        out.push(format!(
            "{} × {}: non-finite pose estimate",
            row.method, row.scenario
        ));
    }
    if row.method == FaultMethod::SynPf.name() {
        if let Some(budget) = scenario.recovery_budget {
            match row.recovery_steps {
                Some(steps) if steps <= budget => {}
                Some(steps) => out.push(format!(
                    "{} × {}: recovered in {steps} steps, budget {budget}",
                    row.method, row.scenario
                )),
                None => out.push(format!(
                    "{} × {}: never recovered to Nominal (budget {budget})",
                    row.method, row.scenario
                )),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_fault_space() {
        let catalog = fault_catalog(960);
        assert!(catalog.len() >= 9, "nominal + ≥8 fault scenarios");
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"nominal"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "names must be unique");
        // Gated scenarios carry a budget; every window fits the run.
        for s in &catalog {
            assert!(s.measure_from < 960, "{}: measure_from out of run", s.name);
            for f in s.schedule.faults() {
                assert!(f.window.start < 960, "{}: window beyond run", s.name);
            }
        }
        assert!(catalog
            .iter()
            .any(|s| s.name == "pose_kidnap" && s.recovery_budget.is_some()));
        assert!(catalog
            .iter()
            .any(|s| s.name == "lidar_blackout" && s.recovery_budget.is_some()));
    }

    #[test]
    fn quick_catalog_scales_down() {
        let catalog = fault_catalog(320);
        for s in &catalog {
            for f in s.schedule.faults() {
                assert!(f.window.start < 320, "{}: window beyond quick run", s.name);
            }
        }
    }

    #[test]
    fn dead_reckoning_cell_runs_and_reports() {
        let cfg = FaultCellConfig {
            threads: 1,
            particles: 50,
            duration_s: 2.5,
            seed: 42,
        };
        let catalog = fault_catalog(cfg.total_steps().max(80));
        let nominal = &catalog[0];
        let row = run_fault_cell(FaultMethod::DeadReckoning, nominal, &cfg);
        assert!(row.steps > 50);
        assert!(row.finite);
        assert_eq!(row.pct_nominal, 1.0, "dead reckoning has no detectors");
        assert_eq!(row.recovery_steps, Some(0));
        assert!(row_violations(&row, nominal).is_empty());
    }

    #[test]
    fn violations_catch_non_finite_and_budget() {
        let catalog = fault_catalog(960);
        let kidnap = catalog
            .iter()
            .find(|s| s.name == "pose_kidnap")
            .expect("kidnap scenario");
        let mut row = FaultRow {
            method: "SynPF".into(),
            scenario: "pose_kidnap".into(),
            steps: 960,
            rmse_cm: 10.0,
            max_err_cm: 600.0,
            recovery_steps: None,
            pct_nominal: 0.5,
            pct_degraded: 0.1,
            pct_lost: 0.4,
            pct_recovering: 0.0,
            crashed: false,
            finite: true,
        };
        assert_eq!(row_violations(&row, kidnap).len(), 1, "stuck in Lost");
        row.recovery_steps = Some(10);
        assert!(row_violations(&row, kidnap).is_empty());
        row.finite = false;
        assert_eq!(row_violations(&row, kidnap).len(), 1, "non-finite pose");
        // Non-SynPF rows are never budget-gated.
        row.method = "Cartographer".into();
        row.finite = true;
        row.recovery_steps = None;
        assert!(row_violations(&row, kidnap).is_empty());
    }

    #[test]
    fn row_json_round_trips_through_obs() {
        let row = FaultRow {
            method: "SynPF".into(),
            scenario: "nominal".into(),
            steps: 100,
            rmse_cm: 3.25,
            max_err_cm: 9.5,
            recovery_steps: None,
            pct_nominal: 1.0,
            pct_degraded: 0.0,
            pct_lost: 0.0,
            pct_recovering: 0.0,
            crashed: false,
            finite: true,
        };
        let text = format!("{}", row.to_json());
        let doc = Json::parse(&text).expect("row serializes to valid JSON");
        assert_eq!(doc.get("method").and_then(Json::as_str), Some("SynPF"));
        assert_eq!(doc.get("recovery_steps"), Some(&Json::Null));
        assert_eq!(doc.get("finite"), Some(&Json::Bool(true)));
    }
}
