//! Criterion bench backing experiment E3: one full SynPF sensor update
//! (the paper's headline 1.25 ms number) across particle counts and range
//! methods, plus the telemetry overhead check — an enabled [`Telemetry`]
//! handle must stay within a few percent of the disabled default.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raceloc_bench::test_track;
use raceloc_core::localizer::Localizer;
use raceloc_obs::Telemetry;
use raceloc_pf::{SynPf, SynPfConfig};
use raceloc_range::{RangeLut, RayMarching};
use raceloc_sim::{Lidar, LidarSpec};

fn pf_config(particles: usize) -> SynPfConfig {
    SynPfConfig::builder()
        .particles(particles)
        .build()
        .expect("bench config is valid")
}

fn bench_sensor_update(c: &mut Criterion) {
    let track = test_track();
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    let scan = lidar.scan(track.start_pose(), &caster, 0.0);
    let lut = RangeLut::new(&track.grid, 10.0, 72);

    let mut group = c.benchmark_group("synpf_sensor_update");
    for particles in [500usize, 1200, 2400] {
        group.bench_with_input(BenchmarkId::new("lut", particles), &particles, |b, &n| {
            let mut pf = SynPf::new(lut.clone(), pf_config(n));
            pf.reset(track.start_pose());
            b.iter(|| pf.correct(black_box(&scan)));
        });
    }
    group.bench_function("ray_marching/1200", |b| {
        let mut pf = SynPf::new(RayMarching::new(&track.grid, 10.0), pf_config(1200));
        pf.reset(track.start_pose());
        b.iter(|| pf.correct(black_box(&scan)));
    });
    group.finish();

    // Telemetry overhead (acceptance: enabled spans cost <5% on a sensor
    // update): identical filter and scan, with and without a live handle.
    let mut group = c.benchmark_group("synpf_telemetry_overhead");
    group.bench_function("disabled/1200", |b| {
        let mut pf = SynPf::new(lut.clone(), pf_config(1200));
        pf.reset(track.start_pose());
        b.iter(|| pf.correct(black_box(&scan)));
    });
    group.bench_function("enabled/1200", |b| {
        let mut pf = SynPf::new(lut.clone(), pf_config(1200));
        pf.set_telemetry(Telemetry::enabled());
        pf.reset(track.start_pose());
        b.iter(|| pf.correct(black_box(&scan)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sensor_update
}
criterion_main!(benches);
