//! Criterion bench backing ablation A2: batch-query latency of each range
//! method on the test-track map (the data behind rangelibc's comparison
//! table).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raceloc_bench::test_track;
use raceloc_core::Rng64;
use raceloc_map::CellState;
use raceloc_range::{BresenhamCasting, Cddt, RangeLut, RangeMethod, RayMarching};

fn queries(n: usize) -> Vec<(f64, f64, f64)> {
    let track = test_track();
    let mut rng = Rng64::new(17);
    let (lo, hi) = track.grid.bounds();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = rng.uniform_range(lo.x, hi.x);
        let y = rng.uniform_range(lo.y, hi.y);
        if track.grid.state_at_world(raceloc_core::Point2::new(x, y)) == CellState::Free {
            out.push((
                x,
                y,
                rng.uniform_range(-std::f64::consts::PI, std::f64::consts::PI),
            ));
        }
    }
    out
}

fn bench_ranges(c: &mut Criterion) {
    let track = test_track();
    let qs = queries(512);
    let mut group = c.benchmark_group("range_methods");

    let bres = BresenhamCasting::new(&track.grid, 10.0);
    group.bench_function("bresenham_512", |b| {
        let mut out = vec![0.0; qs.len()];
        b.iter(|| bres.ranges_into(black_box(&qs), &mut out));
    });

    let rm = RayMarching::new(&track.grid, 10.0);
    group.bench_function("ray_marching_512", |b| {
        let mut out = vec![0.0; qs.len()];
        b.iter(|| rm.ranges_into(black_box(&qs), &mut out));
    });

    let cddt = Cddt::new(&track.grid, 10.0, 180);
    group.bench_function("cddt_512", |b| {
        let mut out = vec![0.0; qs.len()];
        b.iter(|| cddt.ranges_into(black_box(&qs), &mut out));
    });

    let lut = RangeLut::new(&track.grid, 10.0, 72);
    group.bench_function("lut_512", |b| {
        let mut out = vec![0.0; qs.len()];
        b.iter(|| lut.ranges_into(black_box(&qs), &mut out));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ranges
}
criterion_main!(benches);
