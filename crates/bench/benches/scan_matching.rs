//! Criterion bench backing the Table I load column: one Cartographer-style
//! scan correction (prior-weighted Gauss–Newton plus the always-on
//! correlative matcher) against the test-track map.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raceloc_bench::{build_cartographer, test_track};
use raceloc_core::localizer::Localizer;
use raceloc_range::RayMarching;
use raceloc_sim::{Lidar, LidarSpec};
use raceloc_slam::{CorrelativeScanMatcher, GaussNewtonRefiner, ProbabilityGrid, SearchWindow};

fn bench_scan_matching(c: &mut Criterion) {
    let track = test_track();
    let caster = RayMarching::new(&track.grid, 10.0);
    let mut lidar = Lidar::new(LidarSpec::default(), 5);
    let scan = lidar.scan(track.start_pose(), &caster, 0.0);

    let mut group = c.benchmark_group("scan_matching");

    group.bench_function("carto_correct", |b| {
        let mut loc = build_cartographer(&track);
        loc.reset(track.start_pose());
        b.iter(|| loc.correct(black_box(&scan)));
    });

    let grid = ProbabilityGrid::from_occupancy_smoothed(&track.grid, 0.15);
    let points = scan.to_points();
    let sensor_pose = track.start_pose();

    group.bench_function("correlative_window", |b| {
        let matcher = CorrelativeScanMatcher::new(0.05, 0.015);
        b.iter(|| {
            matcher.match_scan(
                &grid,
                black_box(&points),
                sensor_pose,
                SearchWindow::tracking(),
            )
        });
    });

    group.bench_function("gauss_newton_refine", |b| {
        let refiner = GaussNewtonRefiner::default();
        b.iter(|| refiner.refine(&grid, black_box(&points), sensor_pose));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scan_matching
}
criterion_main!(benches);
