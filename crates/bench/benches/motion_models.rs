//! Criterion bench backing Fig. 1: particle-set propagation cost of the two
//! motion models (the prediction-step half of the filter's budget).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raceloc_core::{Pose2, Rng64, Twist2};
use raceloc_pf::motion::{propagate, DiffDriveModel, TumMotionModel};

fn bench_motion(c: &mut Criterion) {
    let mut group = c.benchmark_group("motion_propagate_1200");
    let delta = Pose2::new(0.1, 0.005, 0.02);
    let twist = Twist2::new(5.0, 0.0, 0.4);

    group.bench_function("diff_drive", |b| {
        let model = DiffDriveModel::default();
        let mut rng = Rng64::new(1);
        let mut particles = vec![Pose2::IDENTITY; 1200];
        b.iter(|| {
            propagate(
                &model,
                black_box(&mut particles),
                delta,
                twist,
                0.02,
                &mut rng,
            )
        });
    });

    group.bench_function("tum", |b| {
        let model = TumMotionModel::default();
        let mut rng = Rng64::new(1);
        let mut particles = vec![Pose2::IDENTITY; 1200];
        b.iter(|| {
            propagate(
                &model,
                black_box(&mut particles),
                delta,
                twist,
                0.02,
                &mut rng,
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_motion
}
criterion_main!(benches);
