//! Counting wrapper around the system allocator, for tests that assert a
//! code path performs **zero heap allocations** in the steady state.
//!
//! This is a minimal, test-only vendored helper (see `third_party/README.md`
//! for the offline-vendoring policy). It necessarily contains `unsafe`
//! (implementing [`GlobalAlloc`] requires it), which is why it lives outside
//! the `#![forbid(unsafe_code)]` workspace crates: the production crates stay
//! unsafe-free and only test binaries link this allocator in.
//!
//! # Usage
//!
//! ```ignore
//! use alloc_counter::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     // ... warm up ...
//!     let before = ALLOC.allocations();
//!     // ... hot path ...
//!     assert_eq!(ALLOC.allocations(), before);
//! }
//! ```
//!
//! Counters are process-global and monotonically increasing; callers compare
//! before/after deltas. `Relaxed` ordering suffices because tests read the
//! counters from the same thread that performed the allocations (or after
//! joining all worker threads).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that delegates to [`System`] while counting calls.
#[derive(Debug)]
pub struct CountingAlloc {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    reallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter set; intended for a `#[global_allocator]` static.
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Total number of `alloc`/`alloc_zeroed` calls since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total number of `dealloc` calls since process start.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total number of `realloc` calls since process start.
    pub fn reallocations(&self) -> u64 {
        self.reallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all allocation calls.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Allocation events of any kind (alloc + realloc): the quantity tests
    /// assert stays flat across a steady-state step.
    pub fn total_events(&self) -> u64 {
        self.allocations() + self.reallocations()
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only adds relaxed atomic counting and
// never inspects or fabricates pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
