//! A minimal, dependency-free subset of the [proptest](https://docs.rs/proptest)
//! API, vendored so the workspace builds and tests offline.
//!
//! Only the surface the raceloc test suite uses is provided:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] (panic-on-failure),
//! - [`Strategy`] for numeric ranges, tuples, `prop_map`,
//!   `prop_filter`, [`Just`],
//! - [`prop_oneof!`] for choosing among heterogeneous strategies,
//! - `prop::collection::vec`, and [`any`] for primitive integers.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: every test runs a fixed number of deterministic cases seeded from
//! the test name, so failures reproduce across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Runner configuration: the number of generated cases per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic split-mix PRNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator directly.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of test inputs — the (shrink-free) core of proptest's trait.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing on rejection.
    /// `whence` names the predicate in the panic raised if the strategy
    /// rejects too many consecutive draws.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] adapter: rejection sampling with a
/// bounded retry budget.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..256 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 256 consecutive draws: {}",
            self.whence
        );
    }
}

/// A uniform choice among boxed strategies of one value type — the
/// engine behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A strategy drawing uniformly from `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof of no strategies");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Draws from one of several strategies, chosen uniformly per case. All
/// arms must generate the same value type (upstream's weighted arms are
/// not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strategy)),+])
    };
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Scale by 2^53 − 1 so both endpoints are reachable.
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + f * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible element-count specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of a given element strategy and size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            } else {
                self.size.lo
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len)` — a vector with `len` elements drawn from
    /// `strategy`; `len` may be a fixed count, a `Range`, or an inclusive
    /// range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal, as [`prop_assert!`] does.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Bodies may `return Ok(())` early, as with real proptest,
                // where the body is a `Result`-returning closure. `mut` is
                // required whenever the body mutates captured state.
                #[allow(unused_mut)]
                let mut body = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(message) = body() {
                    panic!("property failed: {message}");
                }
            }
        }
    )*};
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let f = Strategy::generate(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = Strategy::generate(&(-5i64..30), &mut rng);
            assert!((-5..30).contains(&i));
            let u = Strategy::generate(&(16..=576usize), &mut rng);
            assert!((16..=576).contains(&u));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let draw = || {
            let mut rng = TestRng::for_test("some_test");
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(2);
        let s = prop::collection::vec((0.0..1.0f64, 0u8..3), 4..10).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::generate(&s, &mut rng);
            assert!((4..10).contains(&n));
        }
    }

    #[test]
    fn oneof_visits_every_arm_and_filter_rejects() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![Just(0u8), 1u8..3, Just(9u8)].prop_filter("no twos", |v| *v != 2);
        let mut seen = [false; 10];
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng) as usize;
            seen[v] = true;
        }
        assert!(seen[0] && seen[1] && seen[9], "{seen:?}");
        assert!(!seen[2], "filter must reject twos");
    }

    #[test]
    fn inclusive_float_range_stays_in_bounds() {
        let mut rng = TestRng::new(4);
        for _ in 0..1000 {
            let f = Strategy::generate(&(0.25..=0.75f64), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_strategies(a in -1.0..1.0f64, (b, c) in (0usize..5, any::<bool>())) {
            prop_assert!(a.abs() <= 1.0);
            prop_assert!(b < 5);
            prop_assert_eq!(c, c);
        }
    }
}
