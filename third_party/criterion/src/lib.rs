//! A minimal, dependency-free subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API, vendored so the workspace's `harness = false` bench
//! targets build and run offline.
//!
//! The statistical machinery of upstream criterion (outlier detection,
//! bootstrap confidence intervals, HTML reports) is replaced by a plain
//! mean-over-samples timer that prints one line per benchmark. The API
//! surface — [`Criterion`], [`BenchmarkId`], `benchmark_group`,
//! `bench_function`, `bench_with_input`, [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — is call-compatible with the
//! subset the raceloc benches use.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! targets) every benchmark body runs exactly once, keeping test runs fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the stub always runs a fixed sample count).
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.to_string(), self.sample_size, self.test_mode, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as it
    /// goes, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples (or one
    /// in `--test` mode). The routine's output is passed through
    /// [`black_box`] so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // One untimed warm-up pass.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: String, sample_size: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("{label:<48} ok (test mode)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total.as_secs_f64() / b.samples.len() as f64;
    let min = b.samples.iter().min().map(Duration::as_secs_f64).unwrap();
    let max = b.samples.iter().max().map(Duration::as_secs_f64).unwrap();
    println!(
        "{label:<48} mean {:>10.3} µs  [min {:>10.3}  max {:>10.3}]",
        mean * 1e6,
        min * 1e6,
        max * 1e6
    );
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_input_benches_run() {
        // Keep the unit test fast regardless of how it was invoked.
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        sample_bench(&mut c);
        c.bench_function("free", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("lut", 1200).to_string(), "lut/1200");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
